"""Workload- and technique-level analysis utilities.

Beyond regenerating the paper's figures, a reproduction should let you
*interrogate* the system: how large are the safe regions a technique
produces, how long do clients actually stay inside them, and how does
the pyramid height trade coverage against bitmap size (the paper's
Proposition 3, stated but never plotted).  These helpers compute those
distributions from a world without modifying it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..engine import World
from ..geometry import Point, Rect
from ..index import Pyramid
from ..saferegion import LazyPyramidBitmap, MWPSRComputer
from ..strategies.base import ProcessingStrategy
from .report import Table


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary of a sample of values."""

    count: int
    mean: float
    minimum: float
    p10: float
    median: float
    p90: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "DistributionSummary":
        if not values:
            raise ValueError("cannot summarize an empty sample")
        ordered = sorted(values)
        n = len(ordered)

        def quantile(fraction: float) -> float:
            return ordered[min(n - 1, int(fraction * n))]

        return cls(count=n, mean=sum(ordered) / n, minimum=ordered[0],
                   p10=quantile(0.10), median=quantile(0.50),
                   p90=quantile(0.90), maximum=ordered[-1])


def _sample_scenarios(world: World, sample_count: int,
                      seed: int) -> List[Tuple[Point, float, Rect]]:
    """Draw (position, heading, cell) triples from the world's traces."""
    rng = random.Random(seed)
    vehicle_ids = world.traces.vehicle_ids()
    scenarios: List[Tuple[Point, float, Rect]] = []
    for _ in range(sample_count):
        trace = world.traces[rng.choice(vehicle_ids)]
        sample = trace[rng.randrange(len(trace))]
        cell = world.grid.cell_rect_of_point(sample.position)
        scenarios.append((sample.position, sample.heading, cell))
    return scenarios


def safe_region_statistics(world: World,
                           computer: Optional[MWPSRComputer] = None,
                           sample_count: int = 200,
                           user_id: Optional[int] = None,
                           seed: int = 5) -> DistributionSummary:
    """Distribution of MWPSR safe-region areas (km^2) over trace samples.

    Positions are drawn from the world's traces (so the distribution
    reflects where subscribers actually are, not uniform space); the
    relevant pending alarm set is evaluated for ``user_id`` (default:
    the sampled vehicle itself).
    """
    if computer is None:
        computer = MWPSRComputer()
    rng = random.Random(seed)
    vehicle_ids = world.traces.vehicle_ids()
    areas: List[float] = []
    for _ in range(sample_count):
        vehicle = rng.choice(vehicle_ids)
        trace = world.traces[vehicle]
        sample = trace[rng.randrange(len(trace))]
        cell = world.grid.cell_rect_of_point(sample.position)
        subscriber = vehicle if user_id is None else user_id
        alarms = world.registry.relevant_intersecting(subscriber, cell)
        result = computer.compute(sample.position, sample.heading, cell,
                                  [a.region for a in alarms
                                   if not a.region.interior_contains_point(
                                       sample.position)])
        areas.append(result.rect.area / 1e6)
    return DistributionSummary.of(areas)


def coverage_size_tradeoff(world: World,
                           heights: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
                           sample_count: int = 60,
                           seed: int = 6) -> Table:
    """Proposition 3 as a table: coverage eta vs bitmap size per height.

    For each pyramid height, averages the coverage and serialized bitmap
    size of the safe region over cells sampled from subscriber
    positions, using the sampled subscriber's relevant alarms.
    """
    scenarios = _sample_scenarios(world, sample_count, seed)
    rng = random.Random(seed + 1)
    vehicle_ids = world.traces.vehicle_ids()
    table = Table("Proposition 3: coverage vs bitmap size",
                  ["height", "avg coverage", "avg bits", "p90 bits"])
    for height in heights:
        coverages: List[float] = []
        bits: List[float] = []
        for position, _, cell in scenarios:
            user = rng.choice(vehicle_ids)
            alarms = world.registry.relevant_intersecting(user, cell)
            pyramid = Pyramid(cell, height=height)
            bitmap = LazyPyramidBitmap(pyramid,
                                       [a.region for a in alarms])
            coverages.append(bitmap.coverage())
            bits.append(float(bitmap.bit_length()))
        summary = DistributionSummary.of(bits)
        table.add_row(height, sum(coverages) / len(coverages),
                      summary.mean, summary.p90)
    return table


def residence_statistics(world: World, strategy: ProcessingStrategy,
                         max_vehicles: Optional[int] = None
                         ) -> DistributionSummary:
    """Distribution of safe-region residence times (seconds).

    Replays traces through ``strategy`` and measures, for every client,
    the gaps between consecutive server contacts — how long each shipped
    safe region (or safe period) actually kept its client silent.
    """
    from ..engine import Metrics
    from ..engine.server import AlarmServer
    from ..protocol.transport import connect
    from ..strategies.base import ClientState

    metrics = Metrics()
    server = AlarmServer(world.registry, world.grid, metrics,
                         sizes=world.sizes)
    connect(server, strategy)
    residences: List[float] = []
    vehicle_ids = world.traces.vehicle_ids()
    if max_vehicles is not None:
        vehicle_ids = vehicle_ids[:max_vehicles]
    for vehicle_id in vehicle_ids:
        trace = world.traces[vehicle_id]
        client = ClientState(vehicle_id)
        last_contact: Optional[float] = None
        for sample in trace:
            before = metrics.uplink_messages
            strategy.on_sample(client, sample)
            if metrics.uplink_messages > before:
                if last_contact is not None:
                    residences.append(sample.time - last_contact)
                last_contact = sample.time
    if not residences:
        # a fully silent run: every region outlived its trace
        residences = [world.duration_s]
    return DistributionSummary.of(residences)


def workload_profile(world: World) -> Table:
    """Per-cell relevant-alarm density profile of a workload.

    For every grid cell, counts the alarms interior-overlapping it (the
    safe-region working set size); summarizes the distribution.  This is
    the quantity the techniques' costs actually scale with.
    """
    counts: List[float] = []
    for col in range(world.grid.columns):
        for row in range(world.grid.rows):
            from ..index import CellId
            cell = world.grid.cell_rect(CellId(col, row))
            alarms = world.registry.tree.search_interior_intersecting(cell)
            counts.append(float(len(alarms)))
    summary = DistributionSummary.of(counts)
    table = Table("Workload profile: alarms per grid cell",
                  ["cells", "mean", "p10", "median", "p90", "max"])
    table.add_row(summary.count, summary.mean, summary.p10, summary.median,
                  summary.p90, summary.maximum)
    return table
