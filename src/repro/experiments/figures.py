"""One harness function per paper figure (the experiment index of DESIGN.md).

Every function reproduces the rows/series of one figure from the paper's
Section 5 and returns a :class:`~repro.experiments.report.Table`; the
benchmark suite runs them and prints the tables.  Absolute magnitudes
differ from the paper (different hardware, different map, scaled
workload — see EXPERIMENTS.md), but each function's docstring states the
qualitative shape that must hold.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine import SimulationResult, run_simulation
from ..mobility import (MotionModel, SteadyMotionModel,
                        UniformMotionModel)
from ..saferegion import MWPSRComputer, PBSRComputer
from ..strategies import (BitmapSafeRegionStrategy, OptimalStrategy,
                          PeriodicStrategy, ProcessingStrategy,
                          RectangularSafeRegionStrategy,
                          SafePeriodStrategy)
from .configs import (DEFAULT_CELL_AREA_KM2, BENCH, WorkloadConfig,
                      build_world, scaled_cell_sizes)
from .report import Table

PUBLIC_SWEEP = (0.01, 0.10, 0.20)


# ----------------------------------------------------------------------
# Strategy factories
# ----------------------------------------------------------------------
def make_mwpsr_strategy(y: float = 1.0, z: int = 32,
                        weighted: bool = True,
                        exhaustive: bool = False
                        ) -> RectangularSafeRegionStrategy:
    """The rectangular strategy in any of its Fig. 4 variants."""
    model: MotionModel
    if weighted:
        model = SteadyMotionModel(y=y, z=z)
        name = "MWPSR(y=%g,z=%d)" % (y, z)
    else:
        model = UniformMotionModel()
        name = "MPSR(non-weighted)"
    computer = MWPSRComputer(model=model, exhaustive=exhaustive)
    return RectangularSafeRegionStrategy(computer, name=name)


def make_pbsr_strategy(height: int = 5) -> BitmapSafeRegionStrategy:
    """The bitmap strategy at a pyramid height (height 1 == GBSR)."""
    name = "GBSR" if height == 1 else "PBSR(h=%d)" % height
    return BitmapSafeRegionStrategy(PBSRComputer(height=height), name=name)


#: Memoized simulation runs.  Strategies are deterministic and fully
#: described by their name, so one (workload, grid, strategy) run serves
#: every figure that needs it — Fig. 5(a) and 5(b) share one height
#: sweep, Fig. 6(a)-(d) share one strategy sweep.
_RESULT_CACHE: Dict[Tuple[WorkloadConfig, float, str], SimulationResult] = {}


def clear_result_cache() -> None:
    """Drop memoized simulation runs (paired with configs.clear_caches)."""
    _RESULT_CACHE.clear()


def _run(config: WorkloadConfig, strategy: ProcessingStrategy,
         cell_area_km2: float = DEFAULT_CELL_AREA_KM2) -> SimulationResult:
    key = (config, cell_area_km2, strategy.name)
    result = _RESULT_CACHE.get(key)
    if result is None:
        world = build_world(config, cell_area_km2)
        result = run_simulation(world, strategy)
        _RESULT_CACHE[key] = result
    return result


# ----------------------------------------------------------------------
# Fig. 1(b): the steady-motion density
# ----------------------------------------------------------------------
def figure1b(y: float = 1.0, zs: Sequence[int] = (2, 4, 8),
             steps: int = 9) -> Table:
    """p(phi) for y=1 and several z.

    Shape: every curve is symmetric, flat for |phi| <= pi/z, decreasing
    beyond, always above zero, and integrates to 1.
    """
    table = Table("Fig 1(b): steady-motion pdf p(phi), y=%g" % y,
                  ["phi/pi"] + ["z=%d" % z for z in zs])
    models = [SteadyMotionModel(y=y, z=z) for z in zs]
    for index in range(-steps, steps + 1):
        phi = math.pi * index / steps
        table.add_row("%.2f" % (index / steps),
                      *["%.4f" % model.pdf(phi) for model in models])
    return table


# ----------------------------------------------------------------------
# Fig. 4(a): messages vs grid cell size, rectangular variants
# ----------------------------------------------------------------------
def figure4a(config: WorkloadConfig = BENCH,
             cell_sizes: Optional[Sequence[float]] = None,
             zs: Sequence[int] = (4, 16, 32)) -> Table:
    """Client-to-server messages vs cell size, non-weighted vs weighted.

    Shape: message counts fall as cells grow; every weighted variant is
    at most the non-weighted count; all variants keep the uplink fraction
    under a few percent of total location fixes.
    """
    if cell_sizes is None:
        cell_sizes = scaled_cell_sizes(config)
    headers = (["cell km^2", "non-weighted"]
               + ["y=1,z=%d" % z for z in zs] + ["fix fraction"])
    table = Table("Fig 4(a): client-to-server messages (rectangular)",
                  headers)
    for size in cell_sizes:
        row: List[float] = [size]
        results = [_run(config, make_mwpsr_strategy(weighted=False),
                        cell_area_km2=size)]
        for z in zs:
            results.append(_run(config, make_mwpsr_strategy(z=z),
                                cell_area_km2=size))
        row.extend(result.metrics.uplink_messages for result in results)
        row.append(max(result.message_fraction for result in results))
        table.add_row(*row)
    return table


# ----------------------------------------------------------------------
# Fig. 4(b): server processing time vs grid cell size
# ----------------------------------------------------------------------
def figure4b(config: WorkloadConfig = BENCH,
             cell_sizes: Optional[Sequence[float]] = None,
             z: int = 32) -> Table:
    """Server time split vs cell size for the weighted approach.

    Shape: alarm-processing time falls with cell size (fewer location
    reports), safe-region time rises (more alarms per cell), the total is
    minimized at an interior cell size.
    """
    if cell_sizes is None:
        cell_sizes = scaled_cell_sizes(config)
    table = Table("Fig 4(b): server processing time, MWPSR y=1 z=%d" % z,
                  ["cell km^2", "alarm proc (s)", "safe region (s)",
                   "total (s)"])
    for size in cell_sizes:
        result = _run(config, make_mwpsr_strategy(z=z), cell_area_km2=size)
        metrics = result.metrics
        table.add_row(size, metrics.alarm_processing_time_s,
                      metrics.saferegion_time_s, metrics.server_time_s)
    return table


# ----------------------------------------------------------------------
# Fig. 5(a)/(b): BSR sweep over pyramid height and public-alarm share
# ----------------------------------------------------------------------
def figure5a(config: WorkloadConfig = BENCH,
             heights: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
             publics: Sequence[float] = PUBLIC_SWEEP) -> Table:
    """Client-to-server messages vs pyramid height.

    Shape: GBSR (h=1) sends by far the most messages; counts drop
    sharply as the pyramid grows; higher public-alarm shares shift every
    curve upward.
    """
    table = Table("Fig 5(a): client-to-server messages (BSR)",
                  ["height"] + ["%d%% public" % round(100 * p)
                                for p in publics])
    for height in heights:
        row = [height]
        for public in publics:
            result = _run(config.with_public_fraction(public),
                          make_pbsr_strategy(height))
            row.append(result.metrics.uplink_messages)
        table.add_row(*row)
    return table


def figure5b(config: WorkloadConfig = BENCH,
             heights: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
             publics: Sequence[float] = PUBLIC_SWEEP) -> Table:
    """Client energy (mWh) vs pyramid height.

    Shape: energy grows with pyramid height (deeper probes per fix) and
    with the public-alarm share; the low-density curve stays nearly flat.
    """
    table = Table("Fig 5(b): client energy mWh (BSR)",
                  ["height"] + ["%d%% public" % round(100 * p)
                                for p in publics])
    for height in heights:
        row: List[float] = [height]
        for public in publics:
            result = _run(config.with_public_fraction(public),
                          make_pbsr_strategy(height))
            row.append(result.client_energy_mwh)
        table.add_row(*row)
    return table


# ----------------------------------------------------------------------
# Fig. 6: safe region vs the other approaches
# ----------------------------------------------------------------------
def _fig6_strategies(world_max_speed: float,
                     pbsr_height: int = 5) -> List[ProcessingStrategy]:
    return [
        make_mwpsr_strategy(z=32),
        make_pbsr_strategy(pbsr_height),
        SafePeriodStrategy(max_speed=world_max_speed),
        OptimalStrategy(),
    ]


def figure6a(config: WorkloadConfig = BENCH,
             publics: Sequence[float] = PUBLIC_SWEEP) -> Table:
    """Client-to-server messages: MWPSR, PBSR(h=5), SP, OPT.

    Shape: OPT sends the fewest messages; SP sends a small multiple
    (roughly 2-3x) of the safe-region approaches; PRD (reported in the
    last column for reference, off-chart in the paper) sends every fix.
    """
    table = Table("Fig 6(a): client-to-server messages by approach",
                  ["% public", "MWPSR", "PBSR", "SP", "OPT",
                   "PRD (off-chart)"])
    for public in publics:
        cfg = config.with_public_fraction(public)
        world = build_world(cfg, DEFAULT_CELL_AREA_KM2)
        row = [round(100 * public)]
        for strategy in _fig6_strategies(world.max_speed()):
            row.append(_run(cfg, strategy).metrics.uplink_messages)
        row.append(_run(cfg, PeriodicStrategy()).metrics.uplink_messages)
        table.add_row(*row)
    return table


def figure6b(config: WorkloadConfig = BENCH,
             publics: Sequence[float] = PUBLIC_SWEEP) -> Table:
    """Downstream bandwidth (Mbps): MWPSR, PBSR(h=5), OPT.

    Shape: the safe-region approaches consume far less downstream
    bandwidth than OPT's alarm pushes; PBSR(h=5) is best or near-best at
    every public-alarm share.  (SP's downlink is excluded, as in the
    paper.)
    """
    table = Table("Fig 6(b): downstream bandwidth (Mbps)",
                  ["% public", "MWPSR", "PBSR", "OPT"])
    for public in publics:
        cfg = config.with_public_fraction(public)
        row: List[float] = [round(100 * public)]
        for strategy in (make_mwpsr_strategy(z=32), make_pbsr_strategy(5),
                         OptimalStrategy()):
            row.append(_run(cfg, strategy).downstream_bandwidth_mbps)
        table.add_row(*row)
    return table


def figure6c(config: WorkloadConfig = BENCH,
             publics: Sequence[float] = PUBLIC_SWEEP) -> Table:
    """Client energy (mWh): MWPSR, PBSR(h=5), OPT.

    Shape: OPT costs significantly more client energy than the
    safe-region approaches, and the gap widens with alarm density.
    """
    table = Table("Fig 6(c): client energy (mWh)",
                  ["% public", "MWPSR", "PBSR", "OPT"])
    for public in publics:
        cfg = config.with_public_fraction(public)
        row: List[float] = [round(100 * public)]
        for strategy in (make_mwpsr_strategy(z=32), make_pbsr_strategy(5),
                         OptimalStrategy()):
            row.append(_run(cfg, strategy).client_energy_mwh)
        table.add_row(*row)
    return table


def figure6d(config: WorkloadConfig = BENCH,
             publics: Sequence[float] = (0.01, 0.10)) -> Table:
    """Server processing time split: PRD, MWPSR, PBSR, SP, OPT.

    Shape: PRD's alarm-processing time towers over everything; the
    safe-region approaches have the lowest totals, with the safe-region
    computation share growing with the public-alarm percentage; SP sits
    between PRD and the safe-region approaches.
    """
    table = Table("Fig 6(d): server processing time (s)",
                  ["% public", "approach", "alarm proc", "safe region",
                   "total"])
    for public in publics:
        cfg = config.with_public_fraction(public)
        world = build_world(cfg, DEFAULT_CELL_AREA_KM2)
        strategies = [PeriodicStrategy()] + _fig6_strategies(
            world.max_speed())
        for strategy in strategies:
            metrics = _run(cfg, strategy).metrics
            table.add_row(round(100 * public), strategy.name,
                          metrics.alarm_processing_time_s,
                          metrics.saferegion_time_s,
                          metrics.server_time_s)
    return table
