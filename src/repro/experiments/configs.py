"""Experiment configurations and world construction.

Three scale presets:

* ``TINY``   — seconds-fast; unit/integration tests.
* ``BENCH``  — the benchmark default.  Smaller than the paper's setup but
  with the *same per-user alarm density per grid cell* (the quantity the
  strategies actually respond to): the paper runs 10,000 public-capable
  alarms over ~1000 km^2 (1 public alarm per km^2 at the 10% default); we
  run 1,000 alarms over 100 km^2 — identical density — with 120 vehicles
  for 10 simulated minutes.
* ``PAPER``  — the paper's full scale (10,000 vehicles, one hour,
  10,000 alarms, ~1000 km^2).  Provided for completeness; a pure-Python
  replay of its ~36M location fixes takes hours.

Worlds are memoized per (config, cell size): the expensive parts — map,
traces, alarm installation and the ground-truth trigger scan — are built
once per config and shared across grid-cell sweeps and strategy runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..alarms import (AlarmRegistry, install_clustered_alarms,
                      install_random_alarms)
from ..engine import World
from ..index import GridOverlay
from ..mobility import MobilityConfig, TraceGenerator
from ..roadnet import NetworkConfig, generate_network

DEFAULT_CELL_AREA_KM2 = 2.5  # the paper's measured optimum (Fig. 4(b))


@dataclass(frozen=True)
class WorkloadConfig:
    """Everything that defines one experiment workload."""

    universe_side_m: float = 10000.0
    lattice_spacing_m: float = 500.0
    vehicle_count: int = 120
    duration_s: float = 600.0
    sample_interval_s: float = 1.0
    alarm_count: int = 1000
    public_fraction: float = 0.10
    private_to_shared_ratio: float = 2.0
    alarm_min_side_m: float = 50.0
    alarm_max_side_m: float = 250.0
    alarm_placement: str = "uniform"   # or "clustered" (POI hotspots)
    map_seed: int = 7
    trace_seed: int = 11
    alarm_seed: int = 23

    def __post_init__(self) -> None:
        if self.alarm_placement not in ("uniform", "clustered"):
            raise ValueError(
                "alarm_placement must be 'uniform' or 'clustered'")

    def with_public_fraction(self, fraction: float) -> "WorkloadConfig":
        """Copy with a different percentage of public alarms (Figs. 5-6)."""
        return replace(self, public_fraction=fraction)


TINY = WorkloadConfig(universe_side_m=4000.0, lattice_spacing_m=400.0,
                      vehicle_count=15, duration_s=240.0, alarm_count=200,
                      public_fraction=0.20, alarm_min_side_m=150.0,
                      alarm_max_side_m=500.0)

BENCH = WorkloadConfig()

PAPER = WorkloadConfig(universe_side_m=31623.0, lattice_spacing_m=800.0,
                       vehicle_count=10000, duration_s=3600.0,
                       alarm_count=10000)


# ----------------------------------------------------------------------
# World construction (memoized)
# ----------------------------------------------------------------------
_BASE_CACHE: Dict[WorkloadConfig, Tuple] = {}
_WORLD_CACHE: Dict[Tuple[WorkloadConfig, float], World] = {}


def _build_base(config: WorkloadConfig) -> Tuple:
    """Map, traces and alarm registry for a config (built once)."""
    cached = _BASE_CACHE.get(config)
    if cached is not None:
        return cached

    network_config = NetworkConfig(universe_side_m=config.universe_side_m,
                                   lattice_spacing_m=config.lattice_spacing_m)
    network = generate_network(network_config, seed=config.map_seed)
    mobility = MobilityConfig(vehicle_count=config.vehicle_count,
                              duration_s=config.duration_s,
                              sample_interval_s=config.sample_interval_s)
    traces = TraceGenerator(network, mobility,
                            seed=config.trace_seed).generate()

    registry = AlarmRegistry()
    universe = network_config.universe
    installer = (install_clustered_alarms
                 if config.alarm_placement == "clustered"
                 else install_random_alarms)
    installer(registry, universe, config.alarm_count,
              user_ids=traces.vehicle_ids(),
              public_fraction=config.public_fraction,
              private_to_shared_ratio=config.private_to_shared_ratio,
              min_side_m=config.alarm_min_side_m,
              max_side_m=config.alarm_max_side_m,
              seed=config.alarm_seed)

    base = (universe, registry, traces)
    _BASE_CACHE[config] = base
    return base


def build_world(config: WorkloadConfig,
                cell_area_km2: float = DEFAULT_CELL_AREA_KM2) -> World:
    """A ready-to-simulate :class:`World` for the config and grid size.

    Worlds for the same config share their registry, traces and ground
    truth across different grid-cell sizes (the ground truth does not
    depend on the grid).
    """
    key = (config, cell_area_km2)
    world = _WORLD_CACHE.get(key)
    if world is not None:
        return world

    universe, registry, traces = _build_base(config)
    # Grid cells cannot exceed the universe.
    max_area = universe.area / 1e6
    grid = GridOverlay(universe, min(cell_area_km2, max_area))
    world = World(universe=universe, grid=grid, registry=registry,
                  traces=traces,
                  ground_truth_supplier=lambda: _ground_truth_for(config))
    _WORLD_CACHE[key] = world
    return world


_GT_CACHE: Dict[WorkloadConfig, Dict] = {}


def _ground_truth_for(config: WorkloadConfig) -> Dict:
    """Grid-independent ground truth, memoized per config."""
    from ..engine import compute_ground_truth

    cached = _GT_CACHE.get(config)
    if cached is None:
        universe, registry, traces = _build_base(config)
        cached = compute_ground_truth(registry, traces)
        _GT_CACHE[config] = cached
    return cached


def clear_caches() -> None:
    """Drop memoized worlds (tests use this to control memory)."""
    _BASE_CACHE.clear()
    _WORLD_CACHE.clear()
    _GT_CACHE.clear()


def scaled_cell_sizes(config: WorkloadConfig) -> Tuple[float, ...]:
    """The paper's Fig. 4 cell-size sweep, clipped to the universe.

    The paper sweeps {0.4, 0.625, 1.11, 2.5, 10} km^2; for universes
    smaller than the paper's the upper sizes are kept as long as they fit.
    """
    universe_km2 = (config.universe_side_m ** 2) / 1e6
    return tuple(size for size in (0.4, 0.625, 1.11, 2.5, 10.0)
                 if size <= universe_km2)
