"""Scalability sweep: server load as the client population grows.

The paper's motivation (Section 1): "with increasing number of users and
installed spatial alarms in the system, the alarm processing server may
become a bottleneck."  The evaluation shows one population; this sweep
varies it, measuring how each approach's server time and message volume
scale — the quantity that decides how many subscribers one server can
carry.

Expected shape: periodic processing scales linearly in the population's
*location fixes* (every fix is server work), while the safe-region
approaches scale in *safe-region exits*, a far smaller and geometry-
bound number — so the gap widens with population, which is the entire
argument for the distributed architecture.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..engine import SimulationResult, run_parallel_simulation, run_simulation
from ..engine.parallel import StrategyFactory
from ..strategies import PeriodicStrategy, SafePeriodStrategy
from .configs import DEFAULT_CELL_AREA_KM2, WorkloadConfig, build_world
from .figures import make_mwpsr_strategy, make_pbsr_strategy
from .report import Table


def scalability_sweep(config: WorkloadConfig,
                      populations: Sequence[int] = (30, 60, 120, 240),
                      cell_area_km2: float = DEFAULT_CELL_AREA_KM2
                      ) -> Dict[int, Dict[str, SimulationResult]]:
    """Run PRD, SP, MWPSR and PBSR at each population size.

    Returns ``{population: {strategy_name: result}}``; worlds are the
    standard memoized ones, so repeated sweeps are cheap.
    """
    results: Dict[int, Dict[str, SimulationResult]] = {}
    for population in populations:
        scaled = replace(config, vehicle_count=population)
        world = build_world(scaled, cell_area_km2)
        per_strategy: Dict[str, SimulationResult] = {}
        for strategy in (PeriodicStrategy(),
                         SafePeriodStrategy(max_speed=world.max_speed()),
                         make_mwpsr_strategy(z=32),
                         make_pbsr_strategy(5)):
            per_strategy[strategy.name] = run_simulation(world, strategy)
        results[population] = per_strategy
    return results


def parallel_speedup_sweep(config: WorkloadConfig,
                           worker_counts: Sequence[int] = (1, 2, 4),
                           strategy_factory: Optional[StrategyFactory] = None,
                           cell_area_km2: float = DEFAULT_CELL_AREA_KM2
                           ) -> Dict[int, SimulationResult]:
    """One sharded run of the same world per worker count.

    The counterpart of :func:`scalability_sweep` for the *engine's* own
    scalability: same workload, same strategy, replayed through the
    sharded engine at each worker count.  The differential guarantee
    makes every run's metrics identical; only ``wall_time_s`` moves,
    which is what the speedup table reports.  Defaults to the periodic
    strategy — uniformly heavy per sample, so replay cost dominates and
    the measured scaling reflects the engine, not strategy silences.
    """
    world = build_world(config, cell_area_km2)
    world.ground_truth()  # score once up front, outside every timed run
    factory = strategy_factory if strategy_factory else PeriodicStrategy
    return {workers: run_parallel_simulation(world, factory, workers=workers)
            for workers in worker_counts}


def parallel_speedup_table(results: Dict[int, SimulationResult]) -> Table:
    """Render a worker sweep as wall time and speedup over one worker."""
    worker_counts = sorted(results)
    baseline = results[worker_counts[0]].wall_time_s
    table = Table("Parallel engine: wall time vs worker count",
                  ["workers", "wall s", "speedup", "uplink msgs",
                   "triggers"])
    for workers in worker_counts:
        result = results[workers]
        speedup = (baseline / result.wall_time_s
                   if result.wall_time_s > 0 else 0.0)
        table.add_row(workers, round(result.wall_time_s, 2),
                      round(speedup, 2), result.metrics.uplink_messages,
                      len(result.metrics.triggers))
    return table


def scalability_table(results: Dict[int, Dict[str, SimulationResult]]
                      ) -> Table:
    """Render a sweep as server-time and message columns per approach."""
    populations = sorted(results)
    names: List[str] = list(results[populations[0]])
    headers = (["clients"]
               + ["%s msgs" % name for name in names]
               + ["%s srv-ms" % name for name in names])
    table = Table("Scalability: server cost vs client population", headers)
    for population in populations:
        row: List[object] = [population]
        for name in names:
            row.append(results[population][name].metrics.uplink_messages)
        for name in names:
            row.append(round(
                1000 * results[population][name].metrics.server_time_s, 1))
        table.add_row(*row)
    return table
