"""Scalability sweep: server load as the client population grows.

The paper's motivation (Section 1): "with increasing number of users and
installed spatial alarms in the system, the alarm processing server may
become a bottleneck."  The evaluation shows one population; this sweep
varies it, measuring how each approach's server time and message volume
scale — the quantity that decides how many subscribers one server can
carry.

Expected shape: periodic processing scales linearly in the population's
*location fixes* (every fix is server work), while the safe-region
approaches scale in *safe-region exits*, a far smaller and geometry-
bound number — so the gap widens with population, which is the entire
argument for the distributed architecture.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from ..engine import SimulationResult, run_simulation
from ..strategies import PeriodicStrategy, SafePeriodStrategy
from .configs import DEFAULT_CELL_AREA_KM2, WorkloadConfig, build_world
from .figures import make_mwpsr_strategy, make_pbsr_strategy
from .report import Table


def scalability_sweep(config: WorkloadConfig,
                      populations: Sequence[int] = (30, 60, 120, 240),
                      cell_area_km2: float = DEFAULT_CELL_AREA_KM2
                      ) -> Dict[int, Dict[str, SimulationResult]]:
    """Run PRD, SP, MWPSR and PBSR at each population size.

    Returns ``{population: {strategy_name: result}}``; worlds are the
    standard memoized ones, so repeated sweeps are cheap.
    """
    results: Dict[int, Dict[str, SimulationResult]] = {}
    for population in populations:
        scaled = replace(config, vehicle_count=population)
        world = build_world(scaled, cell_area_km2)
        per_strategy: Dict[str, SimulationResult] = {}
        for strategy in (PeriodicStrategy(),
                         SafePeriodStrategy(max_speed=world.max_speed()),
                         make_mwpsr_strategy(z=32),
                         make_pbsr_strategy(5)):
            per_strategy[strategy.name] = run_simulation(world, strategy)
        results[population] = per_strategy
    return results


def scalability_table(results: Dict[int, Dict[str, SimulationResult]]
                      ) -> Table:
    """Render a sweep as server-time and message columns per approach."""
    populations = sorted(results)
    names: List[str] = list(results[populations[0]])
    headers = (["clients"]
               + ["%s msgs" % name for name in names]
               + ["%s srv-ms" % name for name in names])
    table = Table("Scalability: server cost vs client population", headers)
    for population in populations:
        row: List[object] = [population]
        for name in names:
            row.append(results[population][name].metrics.uplink_messages)
        for name in names:
            row.append(round(
                1000 * results[population][name].metrics.server_time_s, 1))
        table.add_row(*row)
    return table
