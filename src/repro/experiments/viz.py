"""ASCII rendering of cells, alarms and safe regions.

Debugging spatial algorithms without pictures is miserable; this module
renders a grid cell as a character raster — alarms, the subscriber, and
whatever safe region a technique produced — entirely dependency-free.

Legend::

    @   the subscriber
    #   alarm region
    .   safe region (the client may roam here silently)
    +   safe region overlapping an alarm  <- a bug if you ever see it
    (space) inside the cell but outside the safe region

Used by the examples and handy in a REPL::

    >>> print(render_cell(cell, alarms, position, region.rect))
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..geometry import Point, Rect
from ..saferegion.base import SafeRegion

SUBSCRIBER = "@"
ALARM = "#"
SAFE = "."
CONFLICT = "+"
EMPTY = " "


def render_cell(cell: Rect, alarms: Sequence[Rect],
                position: Optional[Point] = None,
                safe_region: Union[Rect, SafeRegion, None] = None,
                width: int = 60, height: Optional[int] = None) -> str:
    """Render ``cell`` as a ``width x height`` character raster.

    Each character samples the geometry at its center: alarms win over
    empty space, the safe region draws as dots, a safe-region/alarm
    overlap renders as ``+`` (which a correct technique never produces),
    and the subscriber's cell is ``@`` on top of everything.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    if height is None:
        aspect = cell.height / cell.width
        # terminal cells are ~2x taller than wide; compensate
        height = max(2, round(width * aspect / 2.0))

    def sample_point(col: int, row: int) -> Point:
        return Point(cell.min_x + cell.width * (col + 0.5) / width,
                     cell.min_y + cell.height * (row + 0.5) / height)

    def region_contains(p: Point) -> bool:
        if safe_region is None:
            return False
        if isinstance(safe_region, Rect):
            return safe_region.contains_point(p)
        return safe_region.probe(p)[0]

    rows: List[str] = []
    for row in range(height - 1, -1, -1):  # top row first
        characters: List[str] = []
        for col in range(width):
            p = sample_point(col, row)
            in_alarm = any(a.contains_point(p) for a in alarms)
            in_region = region_contains(p)
            if in_alarm and in_region:
                characters.append(CONFLICT)
            elif in_alarm:
                characters.append(ALARM)
            elif in_region:
                characters.append(SAFE)
            else:
                characters.append(EMPTY)
        rows.append("".join(characters))

    if position is not None and cell.contains_point(position):
        col = min(width - 1,
                  int((position.x - cell.min_x) / cell.width * width))
        row = min(height - 1,
                  int((position.y - cell.min_y) / cell.height * height))
        line_index = height - 1 - row
        line = rows[line_index]
        rows[line_index] = line[:col] + SUBSCRIBER + line[col + 1:]

    border = "+" + "-" * width + "+"
    return "\n".join([border] + ["|%s|" % line for line in rows] + [border])


def render_legend() -> str:
    """The character legend, for printing under a rendering."""
    return ("legend: %s subscriber   %s alarm   %s safe region   "
            "%s overlap (bug!)" % (SUBSCRIBER, ALARM, SAFE, CONFLICT))
