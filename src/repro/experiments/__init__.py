"""Experiment harness: configs, per-figure reproductions, reporting."""

from .analysis import (DistributionSummary, coverage_size_tradeoff,
                       residence_statistics, safe_region_statistics,
                       workload_profile)
from .configs import (BENCH, DEFAULT_CELL_AREA_KM2, PAPER, TINY,
                      WorkloadConfig, build_world, clear_caches,
                      scaled_cell_sizes)
from .figures import (figure1b, figure4a, figure4b, figure5a, figure5b,
                      figure6a, figure6b, figure6c, figure6d,
                      make_mwpsr_strategy, make_pbsr_strategy)
from .report import Table, profile_report
from .scalability import (parallel_speedup_sweep, parallel_speedup_table,
                          scalability_sweep, scalability_table)
from .viz import render_cell, render_legend

__all__ = [
    "BENCH",
    "DistributionSummary",
    "coverage_size_tradeoff",
    "residence_statistics",
    "safe_region_statistics",
    "workload_profile",
    "render_cell",
    "render_legend",
    "parallel_speedup_sweep",
    "parallel_speedup_table",
    "profile_report",
    "scalability_sweep",
    "scalability_table",
    "DEFAULT_CELL_AREA_KM2",
    "PAPER",
    "TINY",
    "Table",
    "WorkloadConfig",
    "build_world",
    "clear_caches",
    "figure1b",
    "figure4a",
    "figure4b",
    "figure5a",
    "figure5b",
    "figure6a",
    "figure6b",
    "figure6c",
    "figure6d",
    "make_mwpsr_strategy",
    "make_pbsr_strategy",
    "scaled_cell_sizes",
]
