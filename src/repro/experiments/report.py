"""Plain-text tables for experiment output.

Benchmarks print the same rows/series the paper's figures report; this
module is the tiny formatting layer they share.  No plotting dependency:
the tables are the artifact, and EXPERIMENTS.md snapshots them.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import SimulationResult


class Table:
    """A titled table with aligned plain-text rendering."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError("row width %d != header width %d"
                             % (len(values), len(self.headers)))
        self.rows.append([_format(value) for value in values])

    def column(self, name: str) -> List[str]:
        """All values of the named column, in row order."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def __str__(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, value in enumerate(row):
                widths[index] = max(widths[index], len(value))
        lines = [self.title,
                 "  ".join(header.ljust(width)
                           for header, width in zip(self.headers, widths))]
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append("  ".join(value.ljust(width)
                                   for value, width in zip(row, widths)))
        return "\n".join(lines)


def profile_report(result: "SimulationResult", indent: int = 2) -> str:
    """JSON per-phase profile of a (possibly sharded) simulation run.

    The payload carries the run's identity (strategy, worker count), the
    end-to-end replay wall time, and the per-phase breakdown recorded by
    the run's :class:`~repro.engine.profiling.PhaseProfiler` — for a
    sharded run the phases are the merged totals over all workers, so
    ``phases_wall_s`` can legitimately exceed ``wall_time_s`` (that
    surplus *is* the parallelism).  Stable key order makes the report
    diffable across runs.
    """
    phases = result.profile or {}
    payload = {
        "strategy": result.strategy_name,
        "workers": result.workers,
        "clients": result.client_count,
        "total_samples": result.total_samples,
        "wall_time_s": result.wall_time_s,
        "phases_wall_s": sum(stat["wall_s"] for stat in phases.values()),
        "phases": phases,
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def _format(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "%.0f" % value
        if abs(value) >= 1:
            return "%.2f" % value
        return "%.4f" % value
    return str(value)
