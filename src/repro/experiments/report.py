"""Plain-text tables for experiment output.

Benchmarks print the same rows/series the paper's figures report; this
module is the tiny formatting layer they share.  No plotting dependency:
the tables are the artifact, and EXPERIMENTS.md snapshots them.
"""

from __future__ import annotations

from typing import Any, List, Sequence


class Table:
    """A titled table with aligned plain-text rendering."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError("row width %d != header width %d"
                             % (len(values), len(self.headers)))
        self.rows.append([_format(value) for value in values])

    def column(self, name: str) -> List[str]:
        """All values of the named column, in row order."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def __str__(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, value in enumerate(row):
                widths[index] = max(widths[index], len(value))
        lines = [self.title,
                 "  ".join(header.ljust(width)
                           for header, width in zip(self.headers, widths))]
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append("  ".join(value.ljust(width)
                                   for value, width in zip(row, widths)))
        return "\n".join(lines)


def _format(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "%.0f" % value
        if abs(value) >= 1:
            return "%.2f" % value
        return "%.4f" % value
    return str(value)
