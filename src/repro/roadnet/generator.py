"""Synthetic road-network generator.

Substitute for the paper's USGS map of the Atlanta metropolitan region
(~1000 km^2).  The generator produces a jittered lattice with a road-class
hierarchy — periodic highways and arterials with local streets in between
— and randomly removes a fraction of local segments so the topology is
irregular like a real street map rather than a perfect grid.  The result
is seeded and fully deterministic.

Why this preserves the paper's behaviour: the evaluation depends on
vehicles moving with road-constrained, piecewise-straight motion at
class-dependent speeds over a region of the stated expanse.  Absolute
message counts shift with the map, but the relative ordering of the
processing strategies — the paper's actual claims — does not.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..geometry import Point, Rect
from .graph import RoadClass, RoadNetwork


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the synthetic map.

    The defaults yield roughly the paper's setting: a square universe of
    about 1000 km^2 with a few highway corridors, an arterial grid at
    ~3 km spacing, and a dense local street fabric.
    """

    universe_side_m: float = 31623.0   # sqrt(1000 km^2)
    lattice_spacing_m: float = 800.0
    highway_every: int = 13            # every 13th lattice line is a highway
    arterial_every: int = 4            # every 4th remaining line is arterial
    jitter_fraction: float = 0.22      # node jitter as fraction of spacing
    local_drop_fraction: float = 0.18  # local edges randomly removed

    def __post_init__(self) -> None:
        if self.universe_side_m <= 0 or self.lattice_spacing_m <= 0:
            raise ValueError("dimensions must be positive")
        if self.universe_side_m < 2 * self.lattice_spacing_m:
            raise ValueError("universe too small for the lattice spacing")
        if not (0 <= self.jitter_fraction < 0.5):
            raise ValueError("jitter_fraction must be in [0, 0.5)")
        if not (0 <= self.local_drop_fraction < 1):
            raise ValueError("local_drop_fraction must be in [0, 1)")

    @property
    def universe(self) -> Rect:
        return Rect(0.0, 0.0, self.universe_side_m, self.universe_side_m)


def _line_class(index: int, config: NetworkConfig) -> RoadClass:
    """Road class of the ``index``-th lattice line."""
    if index % config.highway_every == 0:
        return RoadClass.HIGHWAY
    if index % config.arterial_every == 0:
        return RoadClass.ARTERIAL
    return RoadClass.LOCAL


def generate_network(config: Optional[NetworkConfig] = None,
                     seed: int = 7) -> RoadNetwork:
    """Generate a connected synthetic road network.

    The returned network is the largest connected component of the
    jittered, thinned lattice, with node ids renumbered densely.
    """
    if config is None:
        config = NetworkConfig()
    rng = random.Random(seed)
    lines = int(config.universe_side_m / config.lattice_spacing_m) + 1
    spacing = config.universe_side_m / (lines - 1)
    jitter = config.jitter_fraction * spacing

    draft = RoadNetwork()
    node_ids: List[List[int]] = []
    for row in range(lines):
        row_ids: List[int] = []
        for col in range(lines):
            x = col * spacing
            y = row * spacing
            # Interior nodes jitter; boundary nodes stay put so the map
            # keeps its full expanse.
            if 0 < col < lines - 1:
                x += rng.uniform(-jitter, jitter)
            if 0 < row < lines - 1:
                y += rng.uniform(-jitter, jitter)
            row_ids.append(draft.add_node(Point(x, y)))
        node_ids.append(row_ids)

    for row in range(lines):
        horizontal_class = _line_class(row, config)
        for col in range(lines):
            vertical_class = _line_class(col, config)
            if col + 1 < lines:
                road = horizontal_class
                if road is RoadClass.LOCAL and (
                        rng.random() < config.local_drop_fraction):
                    road = None
                if road is not None:
                    draft.add_edge(node_ids[row][col], node_ids[row][col + 1],
                                   road)
            if row + 1 < lines:
                road = vertical_class
                if road is RoadClass.LOCAL and (
                        rng.random() < config.local_drop_fraction):
                    road = None
                if road is not None:
                    draft.add_edge(node_ids[row][col], node_ids[row + 1][col],
                                   road)

    return _largest_component_copy(draft)


def _largest_component_copy(network: RoadNetwork) -> RoadNetwork:
    """Copy of the largest connected component with dense node ids."""
    component = network.largest_component()
    remap: Dict[int, int] = {}
    compact = RoadNetwork()
    for old_id in component:
        remap[old_id] = compact.add_node(network.position(old_id))
    for edge in network.edges():
        if edge.node_a in remap and edge.node_b in remap:
            compact.add_edge(remap[edge.node_a], remap[edge.node_b],
                             edge.road_class)
    return compact
