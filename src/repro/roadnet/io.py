"""Road-network persistence.

The paper builds its trace on USGS map data; anyone reproducing with a
*real* map needs a way in.  This module defines a minimal node/edge text
format — easily produced from shapefile or OSM exports with a dozen
lines of preprocessing — and round-trips the library's
:class:`~repro.roadnet.RoadNetwork` through it.  Gzip-aware like the
other dataset formats.

Format::

    #repro-roadnet v1
    N <node_id> <x> <y>
    ...
    E <node_a> <node_b> <road_class>
    ...

Node ids must be dense and ascending (the writer guarantees it); edges
reference previously declared nodes.
"""

from __future__ import annotations

import gzip
import io
import os
from typing import TextIO, Union

from ..geometry import Point
from .graph import RoadClass, RoadNetwork

_HEADER = "#repro-roadnet v1"

PathLike = Union[str, "os.PathLike[str]"]


def _open_text(path: PathLike, mode: str) -> TextIO:
    if str(path).endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, mode + "b"),
                                encoding="ascii")
    return open(path, mode, encoding="ascii")


def save_network(network: RoadNetwork, path: PathLike) -> None:
    """Write ``network`` to ``path``."""
    with _open_text(path, "w") as stream:
        stream.write(_HEADER + "\n")
        for node in network.nodes():
            position = network.position(node)
            stream.write("N %d %r %r\n" % (node, position.x, position.y))
        for edge in network.edges():
            stream.write("E %d %d %s\n" % (edge.node_a, edge.node_b,
                                           edge.road_class.value))


def load_network(path: PathLike) -> RoadNetwork:
    """Read a network written by :func:`save_network`.

    Raises ``ValueError`` on format violations: wrong header, non-dense
    node ids, edges referencing unknown nodes or road classes.
    """
    network = RoadNetwork()
    with _open_text(path, "r") as stream:
        header = stream.readline().rstrip("\n")
        if header != _HEADER:
            raise ValueError("not a repro road-network file: %r"
                             % header[:40])
        for line_number, line in enumerate(stream, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            kind = fields[0]
            if kind == "N":
                if len(fields) != 4:
                    raise ValueError("line %d: malformed node" % line_number)
                node_id = int(fields[1])
                assigned = network.add_node(Point(float(fields[2]),
                                                  float(fields[3])))
                if assigned != node_id:
                    raise ValueError(
                        "line %d: node ids must be dense and ascending "
                        "(expected %d, got %d)"
                        % (line_number, assigned, node_id))
            elif kind == "E":
                if len(fields) != 4:
                    raise ValueError("line %d: malformed edge" % line_number)
                node_a = int(fields[1])
                node_b = int(fields[2])
                if not (0 <= node_a < network.node_count
                        and 0 <= node_b < network.node_count):
                    raise ValueError("line %d: edge references unknown node"
                                     % line_number)
                try:
                    road_class = RoadClass(fields[3])
                except ValueError as error:
                    raise ValueError("line %d: unknown road class %r"
                                     % (line_number, fields[3])) from error
                network.add_edge(node_a, node_b, road_class)
            else:
                raise ValueError("line %d: unknown record type %r"
                                 % (line_number, kind))
    return network
