"""Road network substrate: graph model and synthetic map generator."""

from .generator import NetworkConfig, generate_network
from .graph import Edge, RoadClass, RoadNetwork
from .io import load_network, save_network

__all__ = [
    "Edge",
    "NetworkConfig",
    "RoadClass",
    "RoadNetwork",
    "generate_network",
    "load_network",
    "save_network",
]
