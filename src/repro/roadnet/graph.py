"""Road-network graph model.

The evaluation traces of the paper come from vehicles moving on a real
road network (USGS map of Atlanta, ~1000 km^2).  We model the network as
an undirected graph with metric node coordinates and per-edge road
classes that carry realistic speed limits.  The graph is deliberately
self-contained (no networkx dependency): the mobility simulator only
needs adjacency, edge geometry and shortest paths.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..geometry import Point, Rect, fzero


class RoadClass(Enum):
    """Road categories with their free-flow speeds (meters/second)."""

    HIGHWAY = "highway"
    ARTERIAL = "arterial"
    LOCAL = "local"

    @property
    def speed_limit(self) -> float:
        return _SPEED_LIMITS[self]


_SPEED_LIMITS = {
    RoadClass.HIGHWAY: 29.1,   # ~65 mph
    RoadClass.ARTERIAL: 17.9,  # ~40 mph
    RoadClass.LOCAL: 11.2,     # ~25 mph
}


@dataclass(frozen=True)
class Edge:
    """An undirected road segment between two nodes."""

    node_a: int
    node_b: int
    road_class: RoadClass
    length: float

    @property
    def travel_time(self) -> float:
        """Free-flow traversal time in seconds."""
        return self.length / self.road_class.speed_limit

    def other(self, node: int) -> int:
        """The endpoint opposite to ``node``."""
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise ValueError("node %d is not an endpoint of %r" % (node, self))


class RoadNetwork:
    """An undirected road graph with metric coordinates."""

    def __init__(self) -> None:
        self._positions: List[Point] = []
        self._adjacency: List[List[Edge]] = []
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, position: Point) -> int:
        """Add a node and return its id (ids are dense, starting at 0)."""
        self._positions.append(position)
        self._adjacency.append([])
        return len(self._positions) - 1

    def add_edge(self, node_a: int, node_b: int,
                 road_class: RoadClass) -> Edge:
        """Add an undirected edge; length is the Euclidean node distance."""
        if node_a == node_b:
            raise ValueError("self loops are not roads")
        length = self._positions[node_a].distance_to(self._positions[node_b])
        if fzero(length):
            raise ValueError("zero-length edge between distinct nodes")
        edge = Edge(node_a, node_b, road_class, length)
        self._adjacency[node_a].append(edge)
        self._adjacency[node_b].append(edge)
        self._edge_count += 1
        return edge

    # ------------------------------------------------------------------
    # Topology access
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._positions)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def position(self, node: int) -> Point:
        return self._positions[node]

    def edges_at(self, node: int) -> Sequence[Edge]:
        return self._adjacency[node]

    def degree(self, node: int) -> int:
        return len(self._adjacency[node])

    def nodes(self) -> Iterator[int]:
        return iter(range(len(self._positions)))

    def edges(self) -> Iterator[Edge]:
        """Each undirected edge exactly once."""
        for node in range(len(self._positions)):
            for edge in self._adjacency[node]:
                if edge.node_a == node:
                    yield edge

    def bounds(self) -> Rect:
        """Bounding rectangle of all node positions."""
        if not self._positions:
            raise ValueError("empty network has no bounds")
        return Rect(min(p.x for p in self._positions),
                    min(p.y for p in self._positions),
                    max(p.x for p in self._positions),
                    max(p.y for p in self._positions))

    def total_length_km(self) -> float:
        """Total road length in kilometers."""
        return sum(edge.length for edge in self.edges()) / 1000.0

    # ------------------------------------------------------------------
    # Algorithms
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True when every node is reachable from node 0."""
        if self.node_count == 0:
            return True
        return len(self._reachable_from(0)) == self.node_count

    def largest_component(self) -> List[int]:
        """Node ids of the largest connected component."""
        remaining = set(range(self.node_count))
        best: List[int] = []
        while remaining:
            seed = next(iter(remaining))
            component = self._reachable_from(seed)
            remaining -= component
            if len(component) > len(best):
                best = sorted(component)
        return best

    def _reachable_from(self, seed: int) -> set:
        seen = {seed}
        frontier = [seed]
        while frontier:
            node = frontier.pop()
            for edge in self._adjacency[node]:
                neighbor = edge.other(node)
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    def shortest_path(self, source: int,
                      target: int) -> Optional[List[Edge]]:
        """Fastest path (by free-flow travel time) as a list of edges.

        A* with the straight-line-over-highway-speed heuristic, which is
        admissible because no edge is faster than the highway limit.
        Returns ``None`` when ``target`` is unreachable.
        """
        if source == target:
            return []
        target_pos = self._positions[target]
        max_speed = _SPEED_LIMITS[RoadClass.HIGHWAY]

        def heuristic(node: int) -> float:
            return self._positions[node].distance_to(target_pos) / max_speed

        best_cost: Dict[int, float] = {source: 0.0}
        came_from: Dict[int, Edge] = {}
        counter = 0
        frontier: List[Tuple[float, int, int]] = [
            (heuristic(source), counter, source)]
        closed: Set[int] = set()
        while frontier:
            _, _, node = heapq.heappop(frontier)
            if node == target:
                return self._reconstruct(came_from, source, target)
            if node in closed:
                continue
            closed.add(node)
            node_cost = best_cost[node]
            for edge in self._adjacency[node]:
                neighbor = edge.other(node)
                if neighbor in closed:
                    continue
                cost = node_cost + edge.travel_time
                if cost < best_cost.get(neighbor, math.inf):
                    best_cost[neighbor] = cost
                    came_from[neighbor] = edge
                    counter += 1
                    heapq.heappush(frontier,
                                   (cost + heuristic(neighbor), counter,
                                    neighbor))
        return None

    def _reconstruct(self, came_from: Dict[int, Edge], source: int,
                     target: int) -> List[Edge]:
        path: List[Edge] = []
        node = target
        while node != source:
            edge = came_from[node]
            path.append(edge)
            node = edge.other(node)
        path.reverse()
        return path

    def path_length(self, path: Sequence[Edge]) -> float:
        """Total length of a path in meters."""
        return sum(edge.length for edge in path)
