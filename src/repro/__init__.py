"""repro — safe region-based distributed processing of spatial alarms.

A from-scratch reproduction of Bamba, Liu, Iyengar and Yu, "Distributed
Processing of Spatial Alarms: A Safe Region-based Approach" (ICDCS 2009):
the MWPSR / GBSR / PBSR safe-region techniques, the periodic, safe-period
and optimal baselines, and every substrate they run on — an R*-tree alarm
index, grid and pyramid decompositions, a synthetic road network with a
vehicle mobility simulator, and a trace-driven client-server simulation
with message, bandwidth, energy and server-load accounting.

Quickstart::

    from repro import (AlarmRegistry, AlarmScope, GridOverlay,
                       MWPSRComputer, Point, Rect)

    registry = AlarmRegistry()
    registry.install(Rect(500, 500, 700, 700), AlarmScope.PRIVATE,
                     owner_id=1)
    grid = GridOverlay(Rect(0, 0, 2000, 2000), cell_area_km2=4.0)
    me = Point(1000.0, 1000.0)
    cell = grid.cell_rect_of_point(me)
    alarms = registry.relevant_intersecting(1, cell)
    region = MWPSRComputer().compute(me, heading=0.0, cell=cell,
                                     obstacles=[a.region for a in alarms])
    print(region.rect)  # monitor yourself against this; report on exit

See ``examples/`` for full scenarios and ``benchmarks/`` for the
reproduction of every figure in the paper's evaluation.
"""

from .alarms import (AlarmRegistry, AlarmScope, SpatialAlarm,
                     install_random_alarms)
from .engine import (AccuracyReport, AlarmServer, EnergyModel, MessageSizes,
                     Metrics, SimulationResult, TriggerEvent, World,
                     compute_ground_truth, run_simulation, verify_accuracy)
from .geometry import Point, Rect, RectilinearRegion
from .index import GridOverlay, Pyramid, PyramidCell, RStarTree
from .mobility import (MobilityConfig, SteadyMotionModel, Trace,
                       TraceGenerator, TraceSample, TraceSet,
                       UniformMotionModel)
from .roadnet import NetworkConfig, RoadClass, RoadNetwork, generate_network
from .saferegion import (BitmapSafeRegion, GBSRComputer, LazyPyramidBitmap,
                         MWPSRComputer, PBSRComputer, PyramidBitmap,
                         RectangularSafeRegion, build_pyramid_bitmap,
                         decode_bitstring)
from .strategies import (BitmapSafeRegionStrategy, OptimalStrategy,
                         PeriodicStrategy, RectangularSafeRegionStrategy,
                         SafePeriodStrategy)

__version__ = "1.0.0"

__all__ = [
    "AccuracyReport",
    "AlarmRegistry",
    "AlarmScope",
    "AlarmServer",
    "BitmapSafeRegion",
    "BitmapSafeRegionStrategy",
    "EnergyModel",
    "GBSRComputer",
    "GridOverlay",
    "LazyPyramidBitmap",
    "MessageSizes",
    "Metrics",
    "MobilityConfig",
    "MWPSRComputer",
    "NetworkConfig",
    "OptimalStrategy",
    "PBSRComputer",
    "PeriodicStrategy",
    "Point",
    "Pyramid",
    "PyramidBitmap",
    "PyramidCell",
    "RStarTree",
    "Rect",
    "RectangularSafeRegion",
    "RectangularSafeRegionStrategy",
    "RectilinearRegion",
    "RoadClass",
    "RoadNetwork",
    "SafePeriodStrategy",
    "SimulationResult",
    "SpatialAlarm",
    "SteadyMotionModel",
    "Trace",
    "TraceGenerator",
    "TraceSample",
    "TraceSet",
    "TriggerEvent",
    "UniformMotionModel",
    "World",
    "build_pyramid_bitmap",
    "compute_ground_truth",
    "decode_bitstring",
    "generate_network",
    "install_random_alarms",
    "run_simulation",
    "verify_accuracy",
]
