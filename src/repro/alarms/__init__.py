"""Spatial alarm model: alarms, scopes, server-side registry."""

from .alarm import AlarmScope, SpatialAlarm
from .cellcache import CellAlarmCache
from .io import load_alarms, save_alarms
from .registry import (AlarmRegistry, install_clustered_alarms,
                       install_random_alarms)

__all__ = [
    "AlarmRegistry",
    "CellAlarmCache",
    "AlarmScope",
    "SpatialAlarm",
    "install_clustered_alarms",
    "install_random_alarms",
    "load_alarms",
    "save_alarms",
]
