"""Per-grid-cell alarm cache for the server's safe-region hot path.

Every safe-region computation starts by collecting the alarms that
interior-overlap the subscriber's grid cell.  The registry answers that
with an R*-tree range query; but the grid is fixed and cells repeat
across subscribers, so the server can precompute (or memoize) each
cell's alarm id list once and serve subsequent requests with a set
lookup plus per-user relevance filtering.

The cache is *consistent by construction*: it registers itself with the
registry's mutation hooks, so installs, removals and relocations
invalidate exactly the cells whose lists they change.  The ablation
benchmark measures the saving; correctness tests assert cache answers
always equal fresh tree queries, including across mutations.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, List, Optional

from ..geometry import Rect
from ..index import CellId, GridOverlay
from .alarm import SpatialAlarm
from .registry import AlarmRegistry


class CellAlarmCache:
    """Memoized per-cell alarm lists over a fixed grid.

    Plug into the server path by calling :meth:`relevant_pending` where
    :meth:`AlarmRegistry.relevant_intersecting` would be called with a
    grid cell's rectangle.
    """

    def __init__(self, registry: AlarmRegistry, grid: GridOverlay) -> None:
        self.registry = registry
        self.grid = grid
        self._cell_ids: Dict[CellId, List[int]] = {}
        self.hits = 0
        self.misses = 0
        registry.add_listener(self._on_mutation)

    # ------------------------------------------------------------------
    def relevant_pending(self, user_id: int, cell: CellId,
                         exclude_ids: Optional[AbstractSet[int]] = None
                         ) -> List[SpatialAlarm]:
        """Pending relevant alarms interior-overlapping ``cell``.

        Same contract as ``registry.relevant_intersecting(user,
        grid.cell_rect(cell), exclude_ids)``, served from the cache.
        """
        ids = self._cell_ids.get(cell)
        if ids is None:
            self.misses += 1
            rect = self.grid.cell_rect(cell)
            ids = sorted(self.registry.tree.search_interior_intersecting(
                rect))
            self._cell_ids[cell] = ids
        else:
            self.hits += 1
        registry = self.registry
        excluded = exclude_ids or ()
        return [registry.get(alarm_id) for alarm_id in ids
                if alarm_id not in excluded
                and registry.get(alarm_id).is_relevant_to(user_id)]

    # ------------------------------------------------------------------
    def _on_mutation(self, alarm_id: int, old_region: Optional[Rect],
                     new_region: Optional[Rect]) -> None:
        """Registry hook: drop the cells an alarm change touches."""
        for region in (old_region, new_region):
            if region is None:
                continue
            for cell in self.grid.cells_intersecting(region):
                self._cell_ids.pop(cell, None)

    def invalidate_all(self) -> None:
        self._cell_ids.clear()

    def detach(self) -> None:
        """Unsubscribe from the registry (end-of-run cleanup).

        A detached cache no longer sees mutations and must not be used
        afterwards; the server detaches its cache when a simulation run
        finishes so long-lived registries don't accumulate listeners.
        """
        self.registry.remove_listener(self._on_mutation)

    @property
    def cached_cells(self) -> int:
        return len(self._cell_ids)
