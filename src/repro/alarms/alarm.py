"""Spatial alarms (paper Section 1).

A spatial alarm is defined by three elements: an *alarm target* (the
future location of interest, here the rectangular region around it), an
*owner* (the publisher) and the *subscribers*.  Alarms are categorized by
publish-subscribe scope:

* **private** — installed and used exclusively by the publisher;
* **shared**  — installed by the publisher with an explicit list of
  authorized subscribers (the publisher is typically one of them);
* **public**  — subscribed to by all mobile users (the paper's
  assumption, which we adopt).

Alarms fire with one-shot semantics: a given alarm triggers at most once
per subscriber, when that subscriber first enters the alarm region
("they require one shot evaluation", Section 6).  The one-shot state is
tracked by the simulation engine, not the alarm object, which stays
immutable.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Optional

from ..geometry import Rect


class AlarmScope(Enum):
    """Publish-subscribe scope of a spatial alarm."""

    PRIVATE = "private"
    SHARED = "shared"
    PUBLIC = "public"


@dataclass(frozen=True)
class SpatialAlarm:
    """An installed spatial alarm.

    ``region`` is the spatial trigger area around the alarm target.  For
    alarms on *moving* targets the registry re-indexes the alarm whenever
    the target moves; the alarm object itself is replaced (immutable
    value semantics keep the R*-tree entries trivially consistent).
    """

    alarm_id: int
    region: Rect
    scope: AlarmScope
    owner_id: int
    subscribers: FrozenSet[int] = frozenset()
    moving_target: bool = False
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scope is AlarmScope.SHARED and not self.subscribers:
            raise ValueError(
                "a shared alarm needs an explicit subscriber list")
        if self.scope is AlarmScope.PRIVATE and self.subscribers:
            raise ValueError("a private alarm has no subscriber list")

    def is_relevant_to(self, user_id: int) -> bool:
        """True when the alarm can fire for ``user_id``.

        Public alarms are relevant to every user; shared alarms to their
        subscriber list and owner; private alarms only to their owner.
        """
        if self.scope is AlarmScope.PUBLIC:
            return True
        if self.scope is AlarmScope.SHARED:
            return user_id == self.owner_id or user_id in self.subscribers
        return user_id == self.owner_id

    def subscriber_set(self, all_users: FrozenSet[int]) -> FrozenSet[int]:
        """Concrete set of users this alarm can fire for."""
        if self.scope is AlarmScope.PUBLIC:
            return all_users
        if self.scope is AlarmScope.SHARED:
            return self.subscribers | {self.owner_id}
        return frozenset({self.owner_id})

    def with_region(self, region: Rect) -> "SpatialAlarm":
        """Copy of this alarm relocated to ``region`` (moving targets)."""
        return SpatialAlarm(alarm_id=self.alarm_id, region=region,
                            scope=self.scope, owner_id=self.owner_id,
                            subscribers=self.subscribers,
                            moving_target=self.moving_target,
                            label=self.label)
