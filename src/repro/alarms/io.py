"""Alarm workload persistence.

One JSON object per line, one line per alarm, with a versioned header —
the same philosophy as :mod:`repro.mobility.io`: a workload generated
(or curated) once replays identically everywhere.  Gzip-compressed when
the path ends in ``.gz``.
"""

from __future__ import annotations

import gzip
import io
import json
import os
from typing import TextIO, Union

from ..geometry import Rect
from .alarm import AlarmScope
from .registry import AlarmRegistry

_HEADER = {"format": "repro-alarms", "version": 1}

PathLike = Union[str, "os.PathLike[str]"]


def _open_text(path: PathLike, mode: str) -> TextIO:
    if str(path).endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, mode + "b"),
                                encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_alarms(registry: AlarmRegistry, path: PathLike) -> None:
    """Write every installed alarm to ``path`` (JSON lines)."""
    with _open_text(path, "w") as stream:
        stream.write(json.dumps(_HEADER) + "\n")
        for alarm in registry.all_alarms():
            record = {
                "region": [alarm.region.min_x, alarm.region.min_y,
                           alarm.region.max_x, alarm.region.max_y],
                "scope": alarm.scope.value,
                "owner_id": alarm.owner_id,
            }
            if alarm.subscribers:
                record["subscribers"] = sorted(alarm.subscribers)
            if alarm.moving_target:
                record["moving_target"] = True
            if alarm.label is not None:
                record["label"] = alarm.label
            stream.write(json.dumps(record) + "\n")


def load_alarms(path: PathLike,
                registry: AlarmRegistry = None) -> AlarmRegistry:
    """Install alarms from ``path`` into ``registry`` (a new one if None).

    Alarm ids are reassigned by the target registry; everything else —
    regions, scopes, owners, subscriber lists, labels — round-trips
    exactly.
    """
    if registry is None:
        registry = AlarmRegistry()
    with _open_text(path, "r") as stream:
        header_line = stream.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as error:
            raise ValueError("not a repro alarm file") from error
        if (header.get("format") != _HEADER["format"]
                or header.get("version") != _HEADER["version"]):
            raise ValueError("unsupported alarm file header: %r" % header)
        for line_number, line in enumerate(stream, start=2):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            try:
                region = Rect(*record["region"])
                scope = AlarmScope(record["scope"])
                owner = record["owner_id"]
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError("line %d: malformed alarm record"
                                 % line_number) from error
            registry.install(region, scope, owner,
                             subscribers=record.get("subscribers", ()),
                             moving_target=record.get("moving_target",
                                                      False),
                             label=record.get("label"))
    return registry
