"""Alarm installation, indexing and relevance resolution.

The registry is the server-side alarm store: installed alarms indexed in
an R*-tree (paper Section 5.1: "position parameters are evaluated against
installed spatial alarms indexed in an R*-tree").  All spatial queries go
through the tree so its node-access counters feed the server cost model.
"""

from __future__ import annotations

import random
from typing import (AbstractSet, Callable, Dict, Iterable, List,
                    Optional, Sequence)

from ..geometry import Point, Rect
from ..index import RStarTree
from .alarm import AlarmScope, SpatialAlarm


class AlarmRegistry:
    """Server-side store of installed spatial alarms."""

    def __init__(self, max_tree_entries: int = 16) -> None:
        self._tree = RStarTree(max_entries=max_tree_entries)
        self._alarms: Dict[int, SpatialAlarm] = {}
        self._next_id = 0
        # mutation listeners: callback(alarm_id, old_region, new_region);
        # old_region is None on install, new_region is None on removal.
        self._listeners: List[Callable[[int, Optional[Rect],
                                        Optional[Rect]], None]] = []

    def add_listener(self, callback: Callable[[int, Optional[Rect],
                                               Optional[Rect]],
                                              None]) -> None:
        """Subscribe to alarm mutations (caches, invalidation logic)."""
        self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[int, Optional[Rect],
                                                  Optional[Rect]],
                                                 None]) -> None:
        """Unsubscribe a mutation listener (no-op when absent)."""
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass

    def _notify(self, alarm_id: int, old_region: Optional[Rect],
                new_region: Optional[Rect]) -> None:
        for callback in self._listeners:
            callback(alarm_id, old_region, new_region)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self, region: Rect, scope: AlarmScope, owner_id: int,
                subscribers: Iterable[int] = (),
                moving_target: bool = False,
                label: Optional[str] = None) -> SpatialAlarm:
        """Install a new alarm and return it (ids are assigned densely)."""
        alarm = SpatialAlarm(alarm_id=self._next_id, region=region,
                             scope=scope, owner_id=owner_id,
                             subscribers=frozenset(subscribers),
                             moving_target=moving_target, label=label)
        self._next_id += 1
        self._alarms[alarm.alarm_id] = alarm
        self._tree.insert(alarm.alarm_id, region)
        self._notify(alarm.alarm_id, None, region)
        return alarm

    def remove(self, alarm_id: int) -> bool:
        """Uninstall an alarm; True when it existed."""
        alarm = self._alarms.pop(alarm_id, None)
        if alarm is None:
            return False
        removed = self._tree.delete(alarm_id, alarm.region)
        assert removed, "registry and tree out of sync"
        self._notify(alarm_id, alarm.region, None)
        return True

    def relocate(self, alarm_id: int, region: Rect) -> SpatialAlarm:
        """Move an alarm's region (moving alarm target).

        Re-indexes the alarm; returns the updated alarm object.
        """
        alarm = self._alarms[alarm_id]
        self._tree.delete(alarm_id, alarm.region)
        updated = alarm.with_region(region)
        self._alarms[alarm_id] = updated
        self._tree.insert(alarm_id, region)
        self._notify(alarm_id, alarm.region, region)
        return updated

    def rebuild_index(self) -> None:
        """Repack the alarm index with bulk (STR) loading.

        Incremental installs degrade index clustering over time; a
        server can rebuild during quiet periods.  Query results are
        unchanged — only the tree layout (and its node-access costs)
        improves.  Operation counters reset with the new tree.
        """
        items = [(alarm.alarm_id, alarm.region)
                 for alarm in self.all_alarms()]
        self._tree = RStarTree.bulk_load(items,
                                         max_entries=self._tree.max_entries)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._alarms)

    def get(self, alarm_id: int) -> SpatialAlarm:
        return self._alarms[alarm_id]

    def all_alarms(self) -> List[SpatialAlarm]:
        return [self._alarms[alarm_id] for alarm_id in sorted(self._alarms)]

    @property
    def tree(self) -> RStarTree:
        """The underlying index (exposed for cost accounting and tests)."""
        return self._tree

    def _relevance(self, user_id: int,
                   exclude_ids: Optional[AbstractSet[int]] = None
                   ) -> Callable[[int], bool]:
        """Predicate: alarm is relevant to the user and not excluded.

        ``exclude_ids`` carries already-fired alarms (one-shot semantics:
        a fired alarm stops constraining that subscriber).
        """
        alarms = self._alarms
        if exclude_ids:
            return lambda alarm_id: (alarm_id not in exclude_ids
                                     and alarms[alarm_id].is_relevant_to(
                                         user_id))
        return lambda alarm_id: alarms[alarm_id].is_relevant_to(user_id)

    def relevant_intersecting(self, user_id: int, rect: Rect,
                              exclude_ids: Optional[AbstractSet[int]] = None
                              ) -> List[SpatialAlarm]:
        """Alarms relevant to ``user_id`` whose region overlaps ``rect``.

        Uses the *open* overlap test: alarms merely touching the query
        rectangle's boundary impose no constraint inside it.  This is the
        working set for safe-region computation over a grid cell.
        """
        ids = self._tree.search_interior_intersecting(
            rect, predicate=self._relevance(user_id, exclude_ids))
        return [self._alarms[alarm_id] for alarm_id in sorted(ids)]

    def triggered_at(self, user_id: int, position: Point,
                     exclude_ids: Optional[AbstractSet[int]] = None
                     ) -> List[SpatialAlarm]:
        """Alarms relevant to ``user_id`` triggered at ``position``.

        This is the core position-update evaluation: "which alarms fire
        here?".  Triggering means *interior* containment — the alarm
        fires when the subscriber enters the region, not when it merely
        touches the boundary.
        """
        ids = self._tree.search_containing(
            position, predicate=self._relevance(user_id, exclude_ids),
            interior=True)
        return [self._alarms[alarm_id] for alarm_id in sorted(ids)]

    def nearest_relevant_distance(self, user_id: int, position: Point,
                                  exclude_ids: Optional[
                                      AbstractSet[int]] = None) -> float:
        """Distance to the nearest relevant alarm region (inf when none).

        The safe-period baseline divides this by the maximum velocity to
        bound how soon the subscriber could possibly reach any alarm.
        """
        return self._tree.nearest_distance(
            position, predicate=self._relevance(user_id, exclude_ids))


def install_clustered_alarms(registry: AlarmRegistry, universe: Rect,
                             count: int, user_ids: Sequence[int],
                             hotspot_count: int = 12,
                             hotspot_sigma_m: float = 800.0,
                             background_fraction: float = 0.2,
                             public_fraction: float = 0.10,
                             private_to_shared_ratio: float = 2.0,
                             min_side_m: float = 50.0,
                             max_side_m: float = 250.0,
                             seed: int = 23) -> List[SpatialAlarm]:
    """Install an alarm workload clustered around points of interest.

    Real alarm targets (stores, venues, transit stops) cluster in
    hotspots rather than spreading uniformly; this generator draws
    ``hotspot_count`` POI centers uniformly, then places each alarm's
    target as a Gaussian offset (``hotspot_sigma_m``) from a random
    hotspot, with ``background_fraction`` of alarms still uniform.
    Clustering stresses the safe-region techniques where it hurts: cells
    on hotspots hold many alarms (small safe regions, deep pyramids)
    while the countryside stays free.  Scope mixing matches
    :func:`install_random_alarms`.
    """
    if hotspot_count < 1:
        raise ValueError("need at least one hotspot")
    if not (0.0 <= background_fraction <= 1.0):
        raise ValueError("background_fraction must be in [0, 1]")
    rng = random.Random(seed)
    hotspots = [Point(rng.uniform(universe.min_x, universe.max_x),
                      rng.uniform(universe.min_y, universe.max_y))
                for _ in range(hotspot_count)]

    def draw_center() -> Point:
        if rng.random() < background_fraction:
            return Point(rng.uniform(universe.min_x, universe.max_x),
                         rng.uniform(universe.min_y, universe.max_y))
        hotspot = rng.choice(hotspots)
        x = min(max(rng.gauss(hotspot.x, hotspot_sigma_m), universe.min_x),
                universe.max_x)
        y = min(max(rng.gauss(hotspot.y, hotspot_sigma_m), universe.min_y),
                universe.max_y)
        return Point(x, y)

    return _install_alarms(registry, universe, count, user_ids, draw_center,
                           rng, public_fraction, private_to_shared_ratio,
                           min_side_m, max_side_m)


def install_random_alarms(registry: AlarmRegistry, universe: Rect,
                          count: int, user_ids: Sequence[int],
                          public_fraction: float = 0.10,
                          private_to_shared_ratio: float = 2.0,
                          min_side_m: float = 200.0,
                          max_side_m: float = 1000.0,
                          max_shared_subscribers: int = 5,
                          seed: int = 23) -> List[SpatialAlarm]:
    """Install the paper's default alarm workload.

    ``count`` alarms on targets distributed uniformly over ``universe``;
    ``public_fraction`` of them public, the remainder split private:shared
    at ``private_to_shared_ratio`` (the paper's default is 10% public and
    2:1 private:shared).  Owners and shared-subscriber lists are drawn
    uniformly from ``user_ids``.  Alarm regions are axis-aligned squares
    with side uniform in ``[min_side_m, max_side_m]``, clipped to the
    universe.
    """
    rng = random.Random(seed)

    def draw_center() -> Point:
        return Point(rng.uniform(universe.min_x, universe.max_x),
                     rng.uniform(universe.min_y, universe.max_y))

    return _install_alarms(registry, universe, count, user_ids, draw_center,
                           rng, public_fraction, private_to_shared_ratio,
                           min_side_m, max_side_m, max_shared_subscribers)


def _install_alarms(registry: AlarmRegistry, universe: Rect, count: int,
                    user_ids: Sequence[int],
                    draw_center: Callable[[], Point], rng: random.Random,
                    public_fraction: float, private_to_shared_ratio: float,
                    min_side_m: float, max_side_m: float,
                    max_shared_subscribers: int = 5) -> List[SpatialAlarm]:
    """Shared workload machinery: sizes, scopes, owners, subscribers."""
    if not user_ids:
        raise ValueError("alarm workload needs a user population")
    if not (0.0 <= public_fraction <= 1.0):
        raise ValueError("public_fraction must be in [0, 1]")
    if private_to_shared_ratio < 0:
        raise ValueError("private_to_shared_ratio must be non-negative")
    installed: List[SpatialAlarm] = []
    private_share = (private_to_shared_ratio
                     / (1.0 + private_to_shared_ratio))
    for _ in range(count):
        side = rng.uniform(min_side_m, max_side_m)
        region = Rect.from_center(draw_center(), side, side)
        clipped = region.intersection(universe)
        assert clipped is not None  # centers are drawn inside the universe
        owner = rng.choice(user_ids)
        draw = rng.random()
        if draw < public_fraction:
            alarm = registry.install(clipped, AlarmScope.PUBLIC, owner)
        elif rng.random() < private_share:
            alarm = registry.install(clipped, AlarmScope.PRIVATE, owner)
        else:
            pool = [uid for uid in user_ids if uid != owner]
            if pool:
                size = min(len(pool),
                           rng.randint(1, max_shared_subscribers))
                subscribers = rng.sample(pool, size)
            else:
                subscribers = [owner]
            alarm = registry.install(clipped, AlarmScope.SHARED, owner,
                                     subscribers=subscribers)
        installed.append(alarm)
    return installed
