"""The asyncio alarm-serving daemon (``repro serve``).

One :class:`AlarmDaemon` serves one :class:`~repro.engine.server.AlarmServer`
plus one :class:`~repro.protocol.handlers.ServerPolicy` over a real byte
stream — TCP or a Unix domain socket.  Per connection it runs two
tasks:

* a **reader** feeding decoded REQUEST frames into a bounded
  :class:`asyncio.Queue` — when the queue is full the reader blocks,
  which stops reading the socket, which fills the kernel buffers,
  which stalls the sender: backpressure end to end, with a
  ``net_backpressure`` event per stall;
* a **drain worker** pulling requests in batches (up to ``batch_max``
  per wakeup), driving the stateless
  :func:`~repro.protocol.handlers.handle_request` pipeline through the
  same :class:`~repro.protocol.transport.InProcessTransport` accounting
  path the serial engine uses, and writing one REPLY frame per request
  in a single coalesced write.

Charging through the in-process transport is the point: the framed
path adds *zero* accounting code of its own, so its message and byte
totals are the in-process totals by construction — the conformance
suite then pins them against the wire goldens.

All mutable serving state (connection tasks, queues, counters) lives
on daemon and connection scope — never at module level — so the module
satisfies lintkit RL004 in letter and intent; the only host-clock reads
are ``perf_counter`` deltas for the batch latency probe (RL006's
sanctioned form).
"""

from __future__ import annotations

import asyncio
import os
import queue
import stat
import threading
import time
from typing import Dict, List, Optional, Set, Tuple

from ..protocol.framing import (PROTOCOL_VERSION, Frame, FrameDecoder,
                                FrameKind, FramingError, decode_hello,
                                encode_error, encode_frame, encode_reply,
                                encode_stats, reply_summary)
from ..protocol.handlers import ServerPolicy
from ..protocol.messages import Request, downlink_kind
from ..protocol.spec import DIR_CLIENT_TO_SERVER, STATE_AWAIT_HELLO
from ..protocol.transport import InProcessTransport
from ..protocol.wire import WireCodec
from ..sanitize import LOOP_WATCHDOG_INTERVAL_S, Sanitizer
from ..telemetry.facade import Telemetry
from ..telemetry.spans import (SERVER_SPAN_IDS, SPAN_DECODE, SPAN_HANDLE,
                               SPAN_QUEUE_WAIT, SPAN_REPLY_ENCODE,
                               STATUS_OK)
from ..engine.server import AlarmServer

#: Socket read size; large enough to complete many frames per wakeup.
_READ_CHUNK = 1 << 16

#: Queue sentinel telling a drain worker its connection is done.
_SENTINEL = None

#: One queued uplink: (envelope simulation time, decoded request,
#: trace id, client span id, enqueue ``perf_counter`` reading).  The
#: trace pair is 0/0 for untraced uplinks; the perf reading feeds the
#: ``queue_wait`` span when the drain worker picks the request up.
_QueuedRequest = Tuple[float, Request, int, int, float]

#: DaemonThread startup handshake: (running loop, bound TCP port,
#: startup error) — exactly one of loop/error is non-None.
_Handshake = Tuple[Optional[asyncio.AbstractEventLoop], Optional[int],
                   Optional[BaseException]]


class AlarmDaemon:
    """Asyncio server multiplexing framed client connections.

    ``batch_max`` bounds how many queued uplinks one drain wakeup
    processes before writing; ``queue_limit`` bounds the per-connection
    uplink queue (the backpressure knob).  ``verify_wire`` and
    ``sanitizer`` extend the wire-fidelity contract to the framed path:
    every charged size is checked against the bytes actually framed.
    """

    def __init__(self, server: AlarmServer, policy: ServerPolicy,
                 codec: Optional[WireCodec] = None, *,
                 verify_wire: bool = False, batch_max: int = 64,
                 queue_limit: int = 256,
                 sanitizer: Optional[Sanitizer] = None) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be positive")
        if queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        self._accounting = InProcessTransport(server, policy, codec,
                                              verify_wire)
        self.server = server
        self.codec = self._accounting.codec
        self.batch_max = batch_max
        self.queue_limit = queue_limit
        # None consults REPRO_SANITIZE, so a sanitized test run (or
        # `repro serve` under the env flag) gets the loop watchdog
        # without every construction site threading the flag through.
        self._sanitizer = sanitizer if sanitizer is not None \
            else Sanitizer.resolve(None)
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._watchdog: Optional["asyncio.Task[None]"] = None
        self._next_conn_id = 0
        # Live per-connection uplink queues, keyed by connection id —
        # the STATS snapshot reads open-connection and queue-depth
        # gauges straight from here (loop-thread only, like all daemon
        # state).
        self._conn_queues: Dict[
            int, "asyncio.Queue[Optional[_QueuedRequest]]"] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start_unix(self, path: str) -> None:
        """Bind and listen on a Unix domain socket at ``path``."""
        self._prepare()
        if os.path.exists(path) and stat.S_ISSOCK(os.stat(path).st_mode):
            os.unlink(path)  # stale socket from a dead daemon
        self._asyncio_server = await asyncio.start_unix_server(
            self._handle_connection, path=path)

    async def start_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> int:
        """Bind and listen on TCP; returns the bound port."""
        self._prepare()
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, host=host, port=port)
        sockets = self._asyncio_server.sockets
        assert sockets, "asyncio server bound no socket"
        bound_port: int = sockets[0].getsockname()[1]
        return bound_port

    def _prepare(self) -> None:
        if self._asyncio_server is not None:
            raise RuntimeError("daemon is already serving")
        self._stop_event = asyncio.Event()
        if self._sanitizer.enabled and self._watchdog is None:
            self._watchdog = asyncio.create_task(
                self._stall_watchdog())

    def request_stop(self) -> None:
        """Ask the daemon to stop (loop-thread only; idempotent).

        Also reachable over the wire: a SHUTDOWN frame on any
        connection is the operator channel ``repro bench-net
        --shutdown`` uses.
        """
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_stop`; then close every connection."""
        if self._asyncio_server is None or self._stop_event is None:
            raise RuntimeError("daemon was not started")
        try:
            await self._stop_event.wait()
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Stop listening and cancel live connections (idempotent)."""
        server = self._asyncio_server
        if server is None:
            await self._close_watchdog()
            return
        self._asyncio_server = None
        server.close()
        await server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
        await self._close_watchdog()
        if self._sanitizer.enabled:
            self._sanitizer.check_task_leaks(self._pending_task_names())
            self._sanitizer.check_loop_health()
            self._sanitizer.check_span_balance()

    async def _stall_watchdog(self) -> None:
        """Sample event-loop responsiveness while serving.

        Each wakeup measures how late a periodic ``asyncio.sleep``
        fired; the worst delay is reported to the sanitizer, whose
        ``check_loop_health`` fails the run at close if any callback
        held the loop past the stall threshold — the runtime shadow of
        the PA005 no-blocking-calls contract.  Only spawned when the
        sanitizer is on; cancelled (and awaited) by :meth:`aclose`.
        """
        interval = LOOP_WATCHDOG_INTERVAL_S
        while True:
            before = time.perf_counter()
            await asyncio.sleep(interval)
            lag = time.perf_counter() - before - interval
            self._sanitizer.note_loop_lag(lag)

    async def _close_watchdog(self) -> None:
        if self._watchdog is None:
            return
        self._watchdog.cancel()
        try:
            await self._watchdog
        except asyncio.CancelledError:
            pass
        self._watchdog = None

    def _pending_task_names(self) -> List[str]:
        """Coroutine names of unfinished daemon-owned tasks.

        Run after :meth:`aclose` has cancelled and gathered everything
        it tracks: any task whose coroutine lives in this module and is
        still pending escaped the ``_conn_tasks``/watchdog registries —
        the runtime shadow of the PA007 task-lifecycle contract.
        """
        current = asyncio.current_task()
        names: List[str] = []
        for task in asyncio.all_tasks():
            if task is current or task.done():
                continue
            code = getattr(task.get_coro(), "cr_code", None)
            if code is not None and code.co_filename == __file__:
                names.append(code.co_name)
        return names

    # ------------------------------------------------------------------
    # Per-connection reader
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        telemetry = self.server.telemetry
        if telemetry.enabled:
            telemetry.net_conn_open(conn_id)
        queue: "asyncio.Queue[Optional[_QueuedRequest]]" = asyncio.Queue(
            maxsize=self.queue_limit)
        self._conn_queues[conn_id] = queue
        decoder = FrameDecoder()
        requests = 0
        clean = True
        error: Optional[str] = None
        session_state = STATE_AWAIT_HELLO
        # Spawned last: every statement between this spawn and the
        # try/finally that reaps the worker would be a window where an
        # exception leaks the task (the PA009 contract).
        worker = asyncio.create_task(
            self._drain_queue(conn_id, queue, writer))
        try:
            greeted = False
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    decoder.finish()  # raises if the peer died mid-frame
                    break
                for frame in decoder.feed(chunk):
                    if frame.kind is FrameKind.HELLO:
                        if greeted:
                            raise FramingError(
                                "duplicate HELLO handshake")
                        decode_hello(frame.payload)
                        greeted = True
                        if self._sanitizer.enabled:
                            session_state = \
                                self._sanitizer.check_session_transition(
                                    session_state, "HELLO",
                                    DIR_CLIENT_TO_SERVER)
                    elif frame.kind is FrameKind.REQUEST:
                        if not greeted:
                            raise FramingError(
                                "REQUEST before the HELLO handshake")
                        if self._sanitizer.enabled:
                            session_state = \
                                self._sanitizer.check_session_transition(
                                    session_state, "REQUEST",
                                    DIR_CLIENT_TO_SERVER)
                        traced = (telemetry.enabled
                                  and frame.trace_id != 0)
                        decode_started = (time.perf_counter() if traced
                                          else 0.0)
                        request = self._decode_request(frame)
                        if traced:
                            self._emit_server_span(
                                telemetry, frame.time_s, frame.trace_id,
                                frame.span_id, SPAN_DECODE,
                                decode_started)
                        requests += 1
                        item: _QueuedRequest = (
                            frame.time_s, request, frame.trace_id,
                            frame.span_id, time.perf_counter())
                        try:
                            # Fast path: space available, no await.
                            queue.put_nowait(item)
                        except asyncio.QueueFull:
                            if telemetry.enabled:
                                telemetry.net_backpressure(
                                    frame.time_s, conn_id, queue.qsize())
                            await queue.put(item)
                    elif frame.kind is FrameKind.STATS:
                        if not greeted:
                            raise FramingError(
                                "STATS before the HELLO handshake")
                        if self._sanitizer.enabled:
                            session_state = \
                                self._sanitizer.check_session_transition(
                                    session_state, "STATS",
                                    DIR_CLIENT_TO_SERVER)
                        # Answered directly from the reader: one
                        # writer.write call is atomic with respect to
                        # the drain worker's coalesced writes, so the
                        # snapshot frame never interleaves mid-frame.
                        writer.write(encode_frame(
                            FrameKind.STATS,
                            encode_stats(self.stats_snapshot()),
                            frame.time_s, frame.trace_id,
                            frame.span_id))
                        await writer.drain()
                    elif frame.kind is FrameKind.SHUTDOWN:
                        if self._sanitizer.enabled:
                            session_state = \
                                self._sanitizer.check_session_transition(
                                    session_state, "SHUTDOWN",
                                    DIR_CLIENT_TO_SERVER)
                        self.request_stop()
                    else:
                        raise FramingError(
                            "unexpected %s frame from a client"
                            % frame.kind.name)
        except FramingError as exc:
            clean = False
            error = str(exc)
        except (ConnectionError, OSError):
            clean = False
        except asyncio.CancelledError:
            # Daemon shutdown with this connection still open.  The
            # cancellation is absorbed (not re-raised): asyncio.streams
            # logs a callback error for a connection task that ends
            # cancelled, and the only canceller is our own aclose(),
            # which is already awaiting this task's orderly exit.
            clean = False
        finally:
            await self._finish_connection(conn_id, queue, worker, writer,
                                          clean, requests, error)
            if task is not None:
                self._conn_tasks.discard(task)

    def _decode_request(self, frame: Frame) -> Request:
        try:
            request = self.codec.decode_request(frame.payload)
        except Exception as exc:
            raise FramingError("undecodable REQUEST payload: %s"
                               % exc) from exc
        if self._sanitizer.enabled:
            self._sanitizer.check_frame(
                "uplink", len(frame.payload),
                self.codec.size_of_request(request))
        return request

    async def _finish_connection(
            self, conn_id: int,
            queue: "asyncio.Queue[Optional[_QueuedRequest]]",
            worker: "asyncio.Task[None]", writer: asyncio.StreamWriter,
            clean: bool, requests: int,
            error: Optional[str]) -> None:
        if error is not None:
            try:
                writer.write(encode_frame(FrameKind.ERROR,
                                          encode_error(error)))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        # Prefer a graceful stop (the worker finishes queued work);
        # cancel only if the queue is full, where a put would block.
        try:
            queue.put_nowait(_SENTINEL)
        except asyncio.QueueFull:
            worker.cancel()
        try:
            await worker
        except asyncio.CancelledError:
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._conn_queues.pop(conn_id, None)
        telemetry = self.server.telemetry
        if telemetry.enabled:
            telemetry.net_conn_close(conn_id, clean, requests)

    # ------------------------------------------------------------------
    # Per-connection drain worker
    # ------------------------------------------------------------------
    async def _drain_queue(
            self, conn_id: int,
            queue: "asyncio.Queue[Optional[_QueuedRequest]]",
            writer: asyncio.StreamWriter) -> None:
        broken = False
        while True:
            item = await queue.get()
            if item is _SENTINEL:
                return
            batch: List[_QueuedRequest] = [item]
            stop = False
            while len(batch) < self.batch_max:
                try:
                    extra = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _SENTINEL:
                    stop = True
                    break
                batch.append(extra)
            if not broken:
                broken = not await self._serve_batch(conn_id, batch,
                                                     writer)
            if stop:
                return

    async def _serve_batch(self, conn_id: int,
                           batch: List[_QueuedRequest],
                           writer: asyncio.StreamWriter) -> bool:
        """Handle one drained batch; returns ``False`` on a dead peer."""
        telemetry = self.server.telemetry
        started = time.perf_counter() if telemetry.enabled else 0.0
        parts: List[bytes] = []
        for time_s, request, trace_id, span_id, enqueued in batch:
            traced = telemetry.enabled and trace_id != 0
            if traced:
                # queue_wait: enqueue (reader) → this drain wakeup.
                self._emit_server_span(telemetry, time_s, trace_id,
                                       span_id, SPAN_QUEUE_WAIT,
                                       enqueued)
            handle_started = time.perf_counter() if traced else 0.0
            reply = self._accounting.request(request, time_s)
            if traced:
                self._emit_server_span(telemetry, time_s, trace_id,
                                       span_id, SPAN_HANDLE,
                                       handle_started)
            encode_started = time.perf_counter() if traced else 0.0
            payload = encode_reply(self.codec, reply, request.user_id,
                                   time_s)
            if self._sanitizer.enabled:
                charged = sum(
                    self.codec.size_of_response(message)
                    for message in reply
                    if downlink_kind(message) is not None)
                self._sanitizer.check_frame(
                    "reply", reply_summary(payload)[2], charged)
            # The REPLY envelope echoes the request's trace pair so
            # the client can correlate replies with its root spans.
            parts.append(encode_frame(FrameKind.REPLY, payload, time_s,
                                      trace_id, span_id))
            if traced:
                self._emit_server_span(telemetry, time_s, trace_id,
                                       span_id, SPAN_REPLY_ENCODE,
                                       encode_started)
        try:
            writer.write(b"".join(parts))
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        if telemetry.enabled:
            telemetry.net_batch(batch[0][0], conn_id, len(batch),
                                (time.perf_counter() - started) * 1e6)
        return True

    def _emit_server_span(self, telemetry: Telemetry, time_s: float,
                          trace_id: int, parent_id: int, name: str,
                          started: float) -> None:
        """Emit one completed server-stage span, retrospectively.

        Server spans are opened and closed adjacently (the stage has
        already finished; ``started`` is its begin ``perf_counter``
        reading) so no span is ever held across an ``await`` — the
        ledger stays balanced even if the connection dies between
        stages.  The span id is the stage's fixed id from
        :data:`~repro.telemetry.spans.SERVER_SPAN_IDS`; the parent is
        the client's root span id carried in the frame envelope.
        """
        span_id = SERVER_SPAN_IDS[name]
        # Sanitizer bookkeeping runs before the telemetry pair so the
        # open and close events are emitted back to back with nothing
        # exception-capable between them (the PA009 contract).
        if self._sanitizer.enabled:
            self._sanitizer.note_span_open(trace_id, span_id)
            self._sanitizer.note_span_close(trace_id, span_id)
        telemetry.span_open(time_s, trace_id, span_id, parent_id, name)
        telemetry.span_close(time_s, trace_id, span_id, STATUS_OK,
                             (time.perf_counter() - started) * 1e6)

    # ------------------------------------------------------------------
    # Operator STATS channel
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> Dict[str, object]:
        """The live introspection snapshot a STATS frame is answered
        with.

        Deterministic given the serving state: engine counters, the
        telemetry registry dump (empty when telemetry is off), live
        gauges read straight from the connection registry (the
        scraping connection counts itself in ``connections_open``),
        and the serving configuration.  Encoded canonically by
        :func:`~repro.protocol.framing.encode_stats`, so two scrapes
        of an idle daemon are byte-identical.
        """
        telemetry = self.server.telemetry
        queues = {str(conn_id): q.qsize()
                  for conn_id, q in sorted(self._conn_queues.items())}
        return {
            "metrics": self.server.metrics.counters(),
            "registry": (telemetry.registry.to_dict()
                         if telemetry.enabled else {}),
            "live": {
                "connections_open": len(self._conn_queues),
                "queue_depth": queues,
                "queue_depth_total": sum(queues.values()),
            },
            "serving": {
                "batch_max": self.batch_max,
                "queue_limit": self.queue_limit,
                "protocol_version": PROTOCOL_VERSION,
            },
        }


class DaemonThread:
    """Host one :class:`AlarmDaemon` in a background event-loop thread.

    The network engine and the test suite run daemon and client in one
    process — server state, metrics and telemetry stay inspectable —
    while the bytes still cross a real socket.  Context-manager use
    guarantees the loop thread is joined::

        with DaemonThread(daemon, path=sock) as hosted:
            transport = SocketTransport.connect_unix(hosted.path)
            ...
    """

    def __init__(self, daemon: AlarmDaemon, *, path: Optional[str] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.daemon = daemon
        self.path = path
        self.host = host
        self.port: Optional[int] = None
        self._requested_port = port
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Startup handshake: the loop thread publishes (loop, port,
        # error) exactly once; start() consumes it and performs every
        # attribute write itself, so no instance state is mutated from
        # two threads (PA006's hand-off-through-a-queue discipline).
        self._handshake: "queue.Queue[_Handshake]" = \
            queue.Queue(maxsize=1)

    def start(self) -> "DaemonThread":
        if self._thread is not None:
            raise RuntimeError("daemon thread already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-alarm-daemon", daemon=True)
        self._thread.start()
        try:
            loop, port, error = self._handshake.get(timeout=30.0)
        except queue.Empty:
            raise RuntimeError(
                "daemon thread failed to start in time") from None
        if error is not None:
            raise RuntimeError("daemon failed to start: %s" % error)
        self._loop = loop
        self.port = port
        return self

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        port: Optional[int] = None
        try:
            if self.path is not None:
                await self.daemon.start_unix(self.path)
            else:
                port = await self.daemon.start_tcp(
                    self.host, self._requested_port)
        except BaseException as exc:  # surfaced to start()
            self._handshake.put_nowait((None, None, exc))
            return
        self._handshake.put_nowait((loop, port, None))
        await self.daemon.serve_until_stopped()

    def stop(self) -> None:
        """Stop the daemon and join the loop thread (idempotent)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self.daemon.request_stop)
            except RuntimeError:
                pass  # loop already shut down between the checks
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "DaemonThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
