"""``repro bench-net``: a pipelined load generator for the daemon.

The benchmark replays a mobility trace set against a running
:class:`~repro.net.daemon.AlarmDaemon` as raw location reports — every
fix becomes one REQUEST frame, the periodic strategy's workload, which
is the densest uplink stream any strategy produces.  Unlike the
engines it does not stop-and-wait: each of ``connections`` concurrent
connections keeps up to ``window`` requests in flight, so the daemon's
batching actually batches and socket round-trips amortize.

Replies are checked for frame integrity and summarized
(:func:`~repro.protocol.framing.reply_summary`) without full protocol
decoding — the benchmark measures serving, not client-side decode.
Per-request latency is measured FIFO: the daemon preserves
per-connection order (one bounded queue, one drain worker), so the
oldest in-flight send matches the next reply.

This module is importable engine code (RL007: no printing here);
``repro bench-net`` renders :meth:`BenchResult.to_dict` as JSON.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..mobility.trace import Trace, TraceSet
from ..protocol.framing import (Frame, FrameDecoder, FrameKind,
                                decode_error, encode_frame, encode_hello,
                                reply_summary)
from ..protocol.messages import LocationReport
from ..protocol.transport import TransportError
from ..protocol.wire import WireCodec
from ..telemetry.manifest import RunManifest

#: Socket read size, matching the daemon's.
_READ_CHUNK = 1 << 16


@dataclass
class BenchResult:
    """What one benchmark run measured."""

    connections: int
    reports: int
    replies: int
    notifications: int
    wall_s: float
    latency_p50_us: float
    latency_p90_us: float
    latency_p99_us: float
    latency_max_us: float
    bytes_sent: int
    bytes_received: int

    @property
    def reports_per_s(self) -> float:
        return self.reports / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self, manifest: Optional[RunManifest] = None
                ) -> Dict[str, object]:
        """JSON-ready summary (the ``repro bench-net`` output).

        With ``manifest`` the run's provenance (config hash, git sha,
        seeds) is embedded under ``run_manifest``, the same record the
        trace-writing benchmarks carry, so a committed baseline like
        ``BENCH_net.json`` states what produced it.
        """
        payload: Dict[str, object] = {
            "connections": self.connections,
            "reports": self.reports,
            "replies": self.replies,
            "notifications": self.notifications,
            "wall_s": round(self.wall_s, 6),
            "reports_per_s": round(self.reports_per_s, 1),
            "latency_p50_us": round(self.latency_p50_us, 1),
            "latency_p90_us": round(self.latency_p90_us, 1),
            "latency_p99_us": round(self.latency_p99_us, 1),
            "latency_max_us": round(self.latency_max_us, 1),
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }
        if manifest is not None:
            payload["run_manifest"] = manifest.to_dict()
        return payload


class _ConnTally:
    """Mutable per-connection counters (merged after the gather)."""

    __slots__ = ("reports", "replies", "notifications", "bytes_sent",
                 "bytes_received", "latencies_us")

    def __init__(self) -> None:
        self.reports = 0
        self.replies = 0
        self.notifications = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.latencies_us: List[float] = []


def _percentile(sorted_us: List[float], q: float) -> float:
    if not sorted_us:
        return 0.0
    index = int(round(q * (len(sorted_us) - 1)))
    return sorted_us[index]


async def _open(path: Optional[str], host: str, port: int
                ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    if path is not None:
        return await asyncio.open_unix_connection(path)
    return await asyncio.open_connection(host, port)


async def _next_reply(reader: asyncio.StreamReader,
                      decoder: FrameDecoder, pending: Deque[Frame],
                      tally: _ConnTally) -> Frame:
    """Read until the next REPLY frame; ERROR and EOF raise."""
    while True:
        while pending:
            frame = pending.popleft()
            if frame.kind is FrameKind.REPLY:
                return frame
            if frame.kind is FrameKind.ERROR:
                raise TransportError(
                    "server error: %s" % decode_error(frame.payload))
            raise TransportError(
                "unexpected %s frame from the server" % frame.kind.name)
        chunk = await reader.read(_READ_CHUNK)
        if not chunk:
            raise TransportError(
                "server closed the connection during the benchmark")
        tally.bytes_received += len(chunk)
        pending.extend(decoder.feed(chunk))


async def _reap(reader: asyncio.StreamReader, decoder: FrameDecoder,
                pending: Deque[Frame], sent_at: Deque[float],
                tally: _ConnTally) -> None:
    """Collect one outstanding reply and account it."""
    frame = await _next_reply(reader, decoder, pending, tally)
    tally.latencies_us.append(
        (time.perf_counter() - sent_at.popleft()) * 1e6)
    messages, notifications, _charged = reply_summary(frame.payload)
    del messages
    tally.replies += 1
    tally.notifications += notifications


def _encode_stream(codec: WireCodec, vehicles: List[Trace],
                   repeat: int, time_offset: float) -> List[bytes]:
    """Pre-encode one connection's REQUEST frames, in send order.

    Encoding outside the timed window is deliberate: a load generator
    measures the *serving* path, and pre-built payloads keep the
    client's per-report work (and its share of the CPU) out of the
    measurement.  Sequence numbers count up per user across repeats;
    each repeat shifts timestamps by ``time_offset`` so every user's
    clock stays monotone.
    """
    frames: List[bytes] = []
    sequences: Dict[int, int] = {}
    for round_index in range(repeat):
        shift = round_index * time_offset
        for trace in vehicles:
            user_id = trace.vehicle_id
            for sample in trace:
                sequence = sequences.get(user_id, 0)
                sequences[user_id] = sequence + 1
                report = LocationReport(user_id, sequence,
                                        sample.position,
                                        sample.heading, sample.speed)
                frames.append(
                    encode_frame(FrameKind.REQUEST,
                                 codec.encode_request(report),
                                 sample.time + shift))
    return frames


async def _drive_connection(path: Optional[str], host: str, port: int,
                            frames: List[bytes], window: int,
                            tally: _ConnTally) -> None:
    reader, writer = await _open(path, host, port)
    decoder = FrameDecoder()
    pending: Deque[Frame] = deque()
    sent_at: Deque[float] = deque()
    try:
        hello = encode_frame(FrameKind.HELLO, encode_hello())
        writer.write(hello)
        tally.bytes_sent += len(hello)
        for frame in frames:
            if len(sent_at) >= window:
                await _reap(reader, decoder, pending, sent_at, tally)
                await writer.drain()
            writer.write(frame)
            sent_at.append(time.perf_counter())
            tally.bytes_sent += len(frame)
            tally.reports += 1
        while sent_at:
            await _reap(reader, decoder, pending, sent_at, tally)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _send_shutdown(path: Optional[str], host: str,
                         port: int) -> None:
    reader, writer = await _open(path, host, port)
    del reader
    try:
        writer.write(encode_frame(FrameKind.HELLO, encode_hello())
                     + encode_frame(FrameKind.SHUTDOWN, b""))
        await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def run_bench(traces: TraceSet, *, path: Optional[str] = None,
              host: str = "127.0.0.1", port: int = 0,
              codec: Optional[WireCodec] = None, connections: int = 4,
              window: int = 64, repeat: int = 1,
              shutdown: bool = False) -> BenchResult:
    """Replay ``traces`` against a running daemon; measure throughput.

    ``path`` selects a Unix-domain socket (else TCP ``host:port``).
    Vehicles are partitioned round-robin across ``connections``;
    ``repeat`` replays the set that many times with monotone per-user
    timestamps (each round shifted by the trace duration plus a
    second).  ``shutdown`` sends the daemon a SHUTDOWN frame on a
    fresh connection once the benchmark completes.
    """
    if connections < 1:
        raise ValueError("connections must be positive")
    if window < 1:
        raise ValueError("window must be positive")
    if repeat < 1:
        raise ValueError("repeat must be positive")
    codec = codec if codec is not None else WireCodec()
    vehicles = [traces[vehicle_id] for vehicle_id in traces.vehicle_ids()]
    connections = min(connections, len(vehicles)) or 1
    shards: List[List[Trace]] = [
        vehicles[index::connections] for index in range(connections)]
    time_offset = traces.duration() + 1.0
    tallies = [_ConnTally() for _ in range(connections)]
    streams = [_encode_stream(codec, shard, repeat, time_offset)
               for shard in shards]

    async def _main() -> float:
        started = time.perf_counter()
        await asyncio.gather(*(
            _drive_connection(path, host, port, frames, window, tally)
            for frames, tally in zip(streams, tallies)))
        wall = time.perf_counter() - started
        if shutdown:
            await _send_shutdown(path, host, port)
        return wall

    wall_s = asyncio.run(_main())
    latencies = sorted(value for tally in tallies
                       for value in tally.latencies_us)
    return BenchResult(
        connections=connections,
        reports=sum(tally.reports for tally in tallies),
        replies=sum(tally.replies for tally in tallies),
        notifications=sum(tally.notifications for tally in tallies),
        wall_s=wall_s,
        latency_p50_us=_percentile(latencies, 0.50),
        latency_p90_us=_percentile(latencies, 0.90),
        latency_p99_us=_percentile(latencies, 0.99),
        latency_max_us=latencies[-1] if latencies else 0.0,
        bytes_sent=sum(tally.bytes_sent for tally in tallies),
        bytes_received=sum(tally.bytes_received for tally in tallies))
