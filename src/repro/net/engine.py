"""The network simulation engine: serial replay over a real socket.

:func:`run_network_simulation` is the serial engine
(:func:`~repro.engine.simulation.run_simulation`) with its transport
replaced by a Unix-domain socket: the server half runs in an
:class:`~repro.net.daemon.AlarmDaemon` on a background event-loop
thread, the client half drives a :class:`~repro.net.sockets.SocketTransport`
through the unchanged ``replay_vehicle_major`` loop.  Same world, same
strategy objects, same stop-and-wait semantics — every protocol byte
just happens to cross a kernel socket buffer.

The result is scored like any serial run, and the transport
conformance suite pins its counters equal to the in-process goldens:
the framed path must charge *exactly* what the in-process path
charges, message for message and byte for byte.

Metrics bookkeeping: the daemon charges all traffic against the
server's ``Metrics``; the client session accumulates its local
containment counters in a second ``Metrics``.  The two sets of fields
are disjoint, so :meth:`~repro.engine.metrics.Metrics.merged` (the
parallel engine's exact-sum merge) recombines them losslessly.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Optional

from ..engine.groundtruth import verify_accuracy
from ..engine.metrics import Metrics
from ..engine.server import AlarmServer
from ..engine.simulation import SimulationResult, World, replay_vehicle_major
from ..protocol.transport import ClientSession
from ..protocol.wire import WireCodec
from ..sanitize import Sanitizer
from ..strategies.base import ProcessingStrategy
from ..telemetry.facade import DISABLED, Telemetry
from .daemon import AlarmDaemon, DaemonThread
from .sockets import SocketTransport, bitmap_geometry_of, pyramid_resolver


def run_network_simulation(world: World, strategy: ProcessingStrategy,
                           *, telemetry: Optional[Telemetry] = None,
                           sanitize: Optional[bool] = None,
                           batch_max: int = 64,
                           queue_limit: int = 256,
                           timeout_s: float = 60.0) -> SimulationResult:
    """Replay ``world`` through ``strategy`` over a Unix-domain socket.

    Flags mirror the serial engine where they are meaningful;
    ``batch_max``/``queue_limit`` are the daemon's knobs, ``timeout_s``
    bounds every client read so a wedged daemon surfaces as
    :class:`~repro.protocol.transport.TransportError`, never a hang.
    """
    telemetry = telemetry if telemetry is not None else DISABLED
    sanitizer = Sanitizer.resolve(sanitize)
    if sanitizer.enabled:
        sanitizer.snapshot_geometry(world.registry)
    server_metrics = Metrics()
    server = AlarmServer(world.registry, world.grid, server_metrics,
                         sizes=world.sizes, telemetry=telemetry)
    codec = WireCodec.from_sizes(world.sizes)
    daemon = AlarmDaemon(server, strategy.server_policy(), codec,
                         verify_wire=sanitizer.enabled,
                         batch_max=batch_max, queue_limit=queue_limit,
                         sanitizer=sanitizer)
    geometry = bitmap_geometry_of(strategy)
    pyramid_for = (pyramid_resolver(world.grid, geometry)
                   if geometry is not None else None)
    client_metrics = Metrics()
    if telemetry.enabled:
        telemetry.shard_started(len(world.traces))
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-net-") as tmp:
        path = os.path.join(tmp, "alarm.sock")
        with DaemonThread(daemon, path=path):
            transport = SocketTransport.connect_unix(
                path, codec, pyramid_for=pyramid_for,
                telemetry=telemetry, timeout_s=timeout_s,
                sanitizer=sanitizer)
            try:
                session = ClientSession(transport, client_metrics,
                                        world.grid, telemetry)
                strategy.attach(session)
                replay_vehicle_major(strategy, world.traces, sanitizer)
            finally:
                transport.close()
                server.close()
    wall_time = time.perf_counter() - started
    if sanitizer.enabled:
        sanitizer.verify_geometry(world.registry)
    if telemetry.enabled:
        telemetry.shard_finished(len(world.traces), wall_time)

    metrics = Metrics.merged([server_metrics, client_metrics])
    if sanitizer.enabled:
        sanitizer.check_merge([server_metrics, client_metrics], metrics)
    accuracy = verify_accuracy(world.ground_truth(), metrics)
    return SimulationResult(strategy_name=strategy.name, metrics=metrics,
                            accuracy=accuracy,
                            duration_s=world.duration_s,
                            client_count=len(world.traces),
                            total_samples=world.traces.total_samples,
                            wall_time_s=wall_time,
                            energy_model=world.energy)
