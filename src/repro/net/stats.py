"""Live daemon introspection: the STATS scrape client and renderers.

``repro stats`` and ``repro top`` talk to a running
:class:`~repro.net.daemon.AlarmDaemon` over its operator STATS channel:
one HELLO, one STATS request frame, one STATS reply frame carrying the
daemon's canonical JSON snapshot (see
:meth:`~repro.net.daemon.AlarmDaemon.stats_snapshot`).  Everything in
this module is either that one-exchange scrape (:func:`scrape_stats`)
or a pure snapshot-to-string renderer — importable engine code, so no
printing here (RL007) and no host wall clock (RL006; the scrape RTT is
a ``perf_counter`` delta).

The Prometheus renderer reuses
:func:`~repro.telemetry.export.render_registry_prom`, so a live scrape
and a recorded trace of the same registry render byte-identically —
the exporter conformance test pins this.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..protocol.framing import (FrameDecoder, FrameKind, FramingError,
                                decode_error, decode_stats, encode_frame,
                                encode_hello)
from ..protocol.transport import TransportError
from ..telemetry.export import render_registry_prom
from ..telemetry.metrics import Histogram, MetricsRegistry

#: Socket read size, matching the daemon's.
_READ_CHUNK = 1 << 16


@dataclass
class StatsSnapshot:
    """One scraped daemon snapshot plus the scrape's own round trip."""

    raw: Dict[str, object]
    scrape_rtt_us: float

    def _section(self, name: str) -> Dict[str, object]:
        section = self.raw.get(name)
        return dict(section) if isinstance(section, dict) else {}

    def metrics(self) -> Dict[str, object]:
        """The engine's ``Metrics.counters()`` totals at scrape time."""
        return self._section("metrics")

    def live(self) -> Dict[str, object]:
        """Live gauges: open connections and per-connection queue depth."""
        return self._section("live")

    def serving(self) -> Dict[str, object]:
        """Serving configuration: batch/queue knobs, protocol version."""
        return self._section("serving")

    def registry(self) -> MetricsRegistry:
        """The daemon's telemetry registry, rebuilt from the snapshot.

        Empty when the daemon runs without telemetry — the live and
        metrics sections are always populated regardless.
        """
        payload = self.raw.get("registry")
        if not isinstance(payload, dict) or not payload:
            return MetricsRegistry()
        return MetricsRegistry.from_dict(payload)


def scrape_stats(*, path: Optional[str] = None, host: str = "127.0.0.1",
                 port: int = 0, timeout_s: float = 10.0) -> StatsSnapshot:
    """One STATS exchange with a running daemon.

    ``path`` selects a Unix-domain socket (else TCP ``host:port``).
    Every failure — refused connection, timeout, ERROR frame, an
    undecodable snapshot — surfaces as
    :class:`~repro.protocol.transport.TransportError`, never a hang.
    """
    if path is not None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        target: object = path
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        target = (host, port)
    try:
        try:
            # Inside the try/finally: even settimeout must not be able
            # to leak the socket (PA009's contract).
            sock.settimeout(timeout_s)
            sock.connect(target)  # type: ignore[arg-type]
            sock.sendall(encode_frame(FrameKind.HELLO, encode_hello())
                         + encode_frame(FrameKind.STATS, b""))
        except OSError as exc:
            raise TransportError("stats scrape failed: %s" % exc) from exc
        started = time.perf_counter()
        decoder = FrameDecoder()
        while True:
            try:
                chunk = sock.recv(_READ_CHUNK)
            except socket.timeout as exc:
                raise TransportError(
                    "timed out waiting for a STATS frame") from exc
            except OSError as exc:
                raise TransportError(
                    "stats scrape failed: %s" % exc) from exc
            if not chunk:
                raise TransportError(
                    "server closed the connection before answering STATS")
            try:
                frames = decoder.feed(chunk)
            except FramingError as exc:
                raise TransportError(
                    "corrupt frame from the server: %s" % exc) from exc
            for frame in frames:
                if frame.kind is FrameKind.STATS:
                    rtt_us = (time.perf_counter() - started) * 1e6
                    try:
                        # A clean scrape ends the stream here: a
                        # buffered partial frame means the server
                        # wrote garbage after the snapshot.
                        decoder.finish()
                        snapshot = decode_stats(frame.payload)
                    except FramingError as exc:
                        raise TransportError(
                            "undecodable STATS snapshot: %s"
                            % exc) from exc
                    return StatsSnapshot(raw=snapshot,
                                         scrape_rtt_us=rtt_us)
                if frame.kind is FrameKind.ERROR:
                    raise TransportError(
                        "server error: %s" % decode_error(frame.payload))
                raise TransportError(
                    "unexpected %s frame from the server"
                    % frame.kind.name)
    finally:
        sock.close()


# ----------------------------------------------------------------------
# Snapshot renderers (repro stats)
# ----------------------------------------------------------------------
def render_stats_text(snapshot: StatsSnapshot) -> str:
    """The human one-shot scrape: live gauges, counters, registry."""
    lines: List[str] = []
    lines.append("daemon stats  (scrape rtt %.0f us)"
                 % snapshot.scrape_rtt_us)
    lines.append("=" * 60)
    live = snapshot.live()
    serving = snapshot.serving()
    lines.append("connections open:   %s" % live.get("connections_open", 0))
    lines.append("queue depth total:  %s" % live.get("queue_depth_total", 0))
    depths = live.get("queue_depth")
    if isinstance(depths, dict) and depths:
        lines.append("queue depth by connection:")
        for conn_id in sorted(depths, key=int):
            lines.append("  conn %-6s %6s" % (conn_id, depths[conn_id]))
    lines.append("serving:            batch_max=%s queue_limit=%s "
                 "protocol=v%s"
                 % (serving.get("batch_max", "?"),
                    serving.get("queue_limit", "?"),
                    serving.get("protocol_version", "?")))
    metrics = snapshot.metrics()
    if metrics:
        lines.append("")
        lines.append("engine counters")
        lines.append("-" * 60)
        for name in sorted(metrics):
            lines.append("  %-28s %12s" % (name, metrics[name]))
    registry = snapshot.registry()
    names = registry.names()
    if names:
        lines.append("")
        lines.append("telemetry registry")
        lines.append("-" * 60)
        for name in names:
            instrument = registry.get(name)
            if isinstance(instrument, Histogram):
                lines.append(
                    "  %-28s count=%d p50=%.0f p99=%.0f max=%s"
                    % (name, instrument.count,
                       histogram_percentile(instrument, 0.50),
                       histogram_percentile(instrument, 0.99),
                       instrument.max))
            else:
                lines.append("  %-28s %12s"
                             % (name, getattr(instrument, "value", "?")))
    return "\n".join(lines)


def render_stats_json(snapshot: StatsSnapshot) -> str:
    """Machine-readable scrape: the raw snapshot plus scrape RTT."""
    payload = dict(snapshot.raw)
    payload["scrape_rtt_us"] = round(snapshot.scrape_rtt_us, 1)
    return json.dumps(payload, indent=2, sort_keys=True)


def render_stats_prom(snapshot: StatsSnapshot) -> str:
    """Prometheus exposition of a live scrape.

    Registry instruments render through the shared
    :func:`~repro.telemetry.export.render_registry_prom` (byte-equal to
    the trace exporter's rendering of the same registry); the live
    gauges follow with a ``repro_live_`` prefix.
    """
    lines = render_registry_prom(snapshot.registry())
    live = snapshot.live()
    for key in ("connections_open", "queue_depth_total"):
        metric = "repro_live_" + key
        lines.append("# TYPE %s gauge" % metric)
        lines.append("%s %s" % (metric, live.get(key, 0)))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# repro top
# ----------------------------------------------------------------------
def histogram_percentile(histogram: Histogram, q: float) -> float:
    """Estimate the ``q``-quantile from a histogram's bucket counts.

    Linear interpolation within the bucket the quantile falls in (the
    first bucket interpolates from 0); a quantile landing in the
    overflow bucket reports the observed maximum.  Exact percentiles
    need the raw samples — this is the scrape-side estimate ``repro
    top`` displays.
    """
    if histogram.count <= 0:
        return 0.0
    rank = q * histogram.count
    cumulative = 0.0
    lower = 0.0
    for bound, count in zip(histogram.buckets, histogram.bucket_counts):
        if count and cumulative + count >= rank:
            fraction = (rank - cumulative) / count
            return lower + (bound - lower) * fraction
        cumulative += count
        lower = bound
    return float(histogram.max if histogram.max is not None else lower)


def _rate(current: Mapping[str, object], previous: Mapping[str, object],
          key: str, interval_s: float) -> float:
    if interval_s <= 0:
        return 0.0
    now = current.get(key, 0)
    before = previous.get(key, 0)
    if not isinstance(now, (int, float)) \
            or not isinstance(before, (int, float)):
        return 0.0
    return max(0.0, (now - before) / interval_s)


def render_top(snapshot: StatsSnapshot,
               previous: Optional[StatsSnapshot] = None,
               interval_s: float = 1.0) -> str:
    """One ``repro top`` screen: live gauges, rates and latency.

    Rates are deltas against the ``previous`` scrape over
    ``interval_s`` (zero on the first screen).  Pure rendering — the
    polling loop, the sleep and the screen clearing live in the CLI.
    """
    live = snapshot.live()
    metrics = snapshot.metrics()
    prev_metrics = previous.metrics() if previous is not None else {}
    lines: List[str] = []
    lines.append("repro top — scrape rtt %6.0f us" % snapshot.scrape_rtt_us)
    lines.append("=" * 60)
    lines.append("connections %-6s queue depth %-6s (limit %s x batch %s)"
                 % (live.get("connections_open", 0),
                    live.get("queue_depth_total", 0),
                    snapshot.serving().get("queue_limit", "?"),
                    snapshot.serving().get("batch_max", "?")))
    lines.append("uplinks   %10s  (%8.1f/s)"
                 % (metrics.get("uplink_messages", 0),
                    _rate(metrics, prev_metrics, "uplink_messages",
                          interval_s)))
    lines.append("downlinks %10s  (%8.1f/s)"
                 % (metrics.get("downlink_messages", 0),
                    _rate(metrics, prev_metrics, "downlink_messages",
                          interval_s)))
    lines.append("alarms    %10s  (%8.1f/s)"
                 % (metrics.get("trigger_notifications", 0),
                    _rate(metrics, prev_metrics, "trigger_notifications",
                          interval_s)))
    registry = snapshot.registry()
    for name in ("net_rtt_us", "net_batch_handle_us"):
        instrument = registry.get(name)
        if isinstance(instrument, Histogram) and instrument.count:
            lines.append("%-20s p50 %8.0f us   p99 %8.0f us   (n=%d)"
                         % (name,
                            histogram_percentile(instrument, 0.50),
                            histogram_percentile(instrument, 0.99),
                            instrument.count))
    stalls = registry.get("net_backpressure_stalls")
    value = getattr(stalls, "value", 0)
    if value:
        lines.append("backpressure stalls %s" % value)
    return "\n".join(lines)
