"""Client side of the framed socket protocol.

:class:`SocketTransport` is a blocking-socket
:class:`~repro.protocol.transport.Transport`: a
:class:`~repro.protocol.state.ClientSession` drives it exactly as it
drives the in-process transports, while every exchange actually
crosses a TCP or Unix-domain stream as frames (see
:mod:`repro.protocol.framing`).

Division of accounting labour: the **daemon** charges all traffic
(through its in-process transport), so this client charges nothing —
with client and daemon in one test process the shared ``Metrics``
would otherwise double-count.  The client's only instruments are the
optional ``net_rtt_us`` histogram and the sanitizer's framed-uplink
check.

Bitmap strategies need one extra ingredient: a bitmap downlink carries
the cell reference and the payload bits, but decoding the bits into a
:class:`~repro.saferegion.bitmap.PyramidBitmap` requires the pyramid
*geometry* (fan-out and height), which both ends know statically from
the strategy.  :func:`bitmap_geometry_of` extracts it from a strategy
and :func:`pyramid_resolver` turns it into the ``pyramid_for``
callback :func:`~repro.protocol.framing.decode_reply` wants.
"""

from __future__ import annotations

import socket
import time
from collections import deque
from typing import Callable, Deque, List, NamedTuple, Optional

from ..index import CellId, GridOverlay, Pyramid
from ..protocol.framing import (Frame, FrameDecoder, FrameKind, FramingError,
                                decode_error, decode_reply, encode_frame,
                                encode_hello)
from ..protocol.messages import Request, Response, ServerReply
from ..protocol.transport import Transport, TransportError
from ..protocol.wire import WireCodec, unpack_cell_ref
from ..sanitize import Sanitizer
from ..telemetry.facade import DISABLED, Telemetry
from ..telemetry.spans import (ROOT_SPAN_ID, SPAN_CLIENT_REQUEST,
                               STATUS_ERROR, STATUS_OK, make_trace_id)

#: Socket read size, matching the daemon's.
_READ_CHUNK = 1 << 16


class PyramidGeometry(NamedTuple):
    """Static pyramid shape a bitmap strategy and its clients share."""

    fan_cols: int
    fan_rows: int
    height: int


def bitmap_geometry_of(strategy: object) -> Optional[PyramidGeometry]:
    """The pyramid geometry a strategy's bitmap downlinks assume.

    Returns ``None`` for strategies that never ship bitmaps.  Both
    bitmap computers expose their shape: PBSR as ``fan``/``height``,
    GBSR as a flat ``resolution``.
    """
    computer = getattr(strategy, "computer", None)
    if computer is None:
        return None
    fan = getattr(computer, "fan", None)
    height = getattr(computer, "height", None)
    if fan is not None and height is not None:
        return PyramidGeometry(fan, fan, height)
    resolution = getattr(computer, "resolution", None)
    if resolution is not None:
        return PyramidGeometry(resolution, resolution, 1)
    return None


def pyramid_resolver(grid: GridOverlay,
                     geometry: PyramidGeometry
                     ) -> Callable[[int], Pyramid]:
    """``pyramid_for`` callback mapping a wire cell ref to its pyramid."""

    def resolve(cell_ref: int) -> Pyramid:
        col, row = unpack_cell_ref(cell_ref)
        return Pyramid(grid.cell_rect(CellId(col, row)),
                       fan_cols=geometry.fan_cols,
                       fan_rows=geometry.fan_rows,
                       height=geometry.height)

    return resolve


class SocketTransport(Transport):
    """Blocking framed-socket client transport (stop-and-wait).

    ``request`` frames one uplink, then reads until the matching REPLY
    frame arrives; PUSH frames interleaved before it are decoded and
    collected in :attr:`pushes` (order preserved).  Any ERROR frame,
    EOF, or timeout surfaces as
    :class:`~repro.protocol.transport.TransportError` — never a hang.

    With telemetry enabled, every request is traced: the transport
    assigns a trace id (``client_id`` salts the ids so concurrently
    tracing transports never collide in one trace file), opens a
    ``client_request`` root span, stamps the REQUEST frame's envelope
    with the ``(trace, span)`` pair for the daemon to continue, and
    closes the span on *every* exit path — ``"ok"`` on a decoded
    reply, ``"error"`` on a send failure, timeout, EOF, ERROR frame or
    undecodable reply.  An enabled ``sanitizer`` mirrors the ledger
    and :meth:`close` asserts it balanced.
    """

    def __init__(self, sock: socket.socket,
                 codec: Optional[WireCodec] = None, *,
                 pyramid_for: Optional[Callable[[int], Pyramid]] = None,
                 telemetry: Optional[Telemetry] = None,
                 timeout_s: float = 30.0, client_id: int = 0,
                 sanitizer: Optional[Sanitizer] = None) -> None:
        self.codec = codec if codec is not None else WireCodec()
        self.pyramid_for = pyramid_for
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self.pushes: List[Response] = []
        self._sock: Optional[socket.socket] = sock
        self._decoder = FrameDecoder()
        self._pending: Deque[Frame] = deque()
        self._client_id = client_id
        self._trace_count = 0
        self._sanitizer = (sanitizer if sanitizer is not None
                           else Sanitizer.resolve(False))
        sock.settimeout(timeout_s)
        sock.sendall(encode_frame(FrameKind.HELLO, encode_hello()))

    # ------------------------------------------------------------------
    @classmethod
    def connect_unix(cls, path: str, codec: Optional[WireCodec] = None,
                     **kwargs: object) -> "SocketTransport":
        """Connect to a daemon listening on a Unix domain socket."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
        except OSError:
            sock.close()
            raise
        return cls(sock, codec, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def connect_tcp(cls, host: str, port: int,
                    codec: Optional[WireCodec] = None,
                    **kwargs: object) -> "SocketTransport":
        """Connect to a daemon listening on TCP ``host:port``."""
        sock = socket.create_connection((host, port))
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            sock.close()
            raise
        return cls(sock, codec, **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Transport interface
    # ------------------------------------------------------------------
    def request(self, request: Request, time_s: float) -> ServerReply:
        sock = self._require_socket()
        payload = self.codec.encode_request(request)
        telemetry = self.telemetry
        traced = telemetry.enabled
        trace_id = span_id = 0
        started = 0.0
        if traced:
            self._trace_count += 1
            trace_id = make_trace_id(self._client_id, self._trace_count)
            span_id = ROOT_SPAN_ID
            started = time.perf_counter()
            # The sanitizer note runs first: once telemetry has opened
            # the span, nothing exception-capable may run before the
            # try block whose every exit closes it (PA009's contract).
            if self._sanitizer.enabled:
                self._sanitizer.note_span_open(trace_id, span_id)
            telemetry.span_open(time_s, trace_id, span_id, 0,
                                SPAN_CLIENT_REQUEST)
        try:
            try:
                sock.sendall(encode_frame(FrameKind.REQUEST, payload,
                                          time_s, trace_id, span_id))
            except OSError as exc:
                raise TransportError("send failed: %s" % exc) from exc
            frame = self._read_frame(FrameKind.REPLY)
            try:
                reply = decode_reply(self.codec, frame.payload,
                                     pyramid_for=self.pyramid_for)
            except FramingError as exc:
                raise TransportError("undecodable REPLY: %s"
                                     % exc) from exc
        except BaseException:
            # Every failure path — send error, timeout, EOF, ERROR
            # frame, undecodable reply — closes the span: an exchange
            # that died still happened, and a leaked span would hide
            # exactly the worst-latency (failed) requests.
            if traced:
                self._finish_span(time_s, trace_id, STATUS_ERROR,
                                  started)
            raise
        if traced:
            telemetry.net_rtt((time.perf_counter() - started) * 1e6)
            self._finish_span(time_s, trace_id, STATUS_OK, started)
        return reply

    def _finish_span(self, time_s: float, trace_id: int, status: str,
                     started: float) -> None:
        if self._sanitizer.enabled:
            self._sanitizer.note_span_close(trace_id, ROOT_SPAN_ID)
        self.telemetry.span_close(
            time_s, trace_id, ROOT_SPAN_ID, status,
            (time.perf_counter() - started) * 1e6)

    def push(self, user_id: int, message: Response,
             time_s: float) -> None:
        raise TransportError(
            "socket clients receive pushes; they cannot send them")

    # ------------------------------------------------------------------
    def _require_socket(self) -> socket.socket:
        if self._sock is None:
            raise TransportError("transport is closed")
        return self._sock

    def _read_frame(self, wanted: FrameKind) -> Frame:
        """Read until a ``wanted`` frame arrives, absorbing PUSHes."""
        sock = self._require_socket()
        while True:
            while self._pending:
                frame = self._pending.popleft()
                if frame.kind is wanted:
                    return frame
                if frame.kind is FrameKind.PUSH:
                    try:
                        reply = decode_reply(self.codec, frame.payload,
                                             pyramid_for=self.pyramid_for)
                    except FramingError as exc:
                        raise TransportError(
                            "undecodable PUSH: %s" % exc) from exc
                    self.pushes.extend(reply)
                elif frame.kind is FrameKind.ERROR:
                    raise TransportError(
                        "server error: %s" % decode_error(frame.payload))
                else:
                    raise TransportError(
                        "unexpected %s frame from the server"
                        % frame.kind.name)
            try:
                chunk = sock.recv(_READ_CHUNK)
            except socket.timeout as exc:
                raise TransportError(
                    "timed out waiting for a %s frame"
                    % wanted.name) from exc
            except OSError as exc:
                raise TransportError("receive failed: %s" % exc) from exc
            if not chunk:
                mid_frame = self._decoder.buffered > 0
                raise TransportError(
                    "server closed the connection mid-frame" if mid_frame
                    else "server closed the connection")
            try:
                self._pending.extend(self._decoder.feed(chunk))
            except FramingError as exc:
                raise TransportError(
                    "corrupt frame from the server: %s" % exc) from exc

    # ------------------------------------------------------------------
    def send_shutdown(self) -> None:
        """Ask the daemon to stop serving (operator channel)."""
        sock = self._require_socket()
        try:
            sock.sendall(encode_frame(FrameKind.SHUTDOWN, b""))
        except OSError as exc:
            raise TransportError("send failed: %s" % exc) from exc

    def close(self) -> None:
        """Close the socket (idempotent); check the span ledger."""
        sock = self._sock
        if sock is None:
            return
        self._sock = None
        try:
            sock.close()
        except OSError:
            pass
        if self._sanitizer.enabled:
            self._sanitizer.check_span_balance()

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
