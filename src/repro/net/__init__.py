"""Real network serving: the asyncio daemon and its socket clients.

The protocol split (:mod:`repro.protocol`) left transports pluggable;
this package plugs in an actual byte stream.  Four pieces:

* :class:`AlarmDaemon` — an asyncio server (TCP or Unix domain socket)
  that frames uplink reports off connections, drives the stateless
  :func:`~repro.protocol.handlers.handle_request` pipeline with uplink
  batching and bounded-queue backpressure, and writes framed replies.
  :class:`DaemonThread` hosts one in a background thread for tests and
  the in-process network engine.
* :class:`SocketTransport` — a blocking-socket client implementing the
  same :class:`~repro.protocol.transport.Transport` interface as the
  in-process transports, so a :class:`~repro.protocol.transport.ClientSession`
  cannot tell it is talking over a real socket.
* :func:`run_network_simulation` — the serial replay loop with the
  client and server halves on opposite ends of a Unix socket; the
  conformance suite pins its counters byte-identical to the goldens.
* :func:`run_bench` — the ``repro bench-net`` load generator: pipelined
  mobility-trace replay over N concurrent connections.
* :func:`scrape_stats` — the ``repro stats`` / ``repro top`` operator
  channel client: one STATS frame in, the daemon's live snapshot out,
  with pure renderers for text, JSON, Prometheus and the polling
  dashboard.

Byte accounting is unchanged by design: the daemon charges through the
same :class:`~repro.protocol.transport.InProcessTransport` accounting
path the serial engine uses, and the frame envelope (headers, batch
tags, in-band notifications) is never charged — see
``docs/NETWORKING.md``.
"""

from .bench import BenchResult, run_bench
from .daemon import AlarmDaemon, DaemonThread
from .engine import run_network_simulation
from .sockets import (PyramidGeometry, SocketTransport, bitmap_geometry_of,
                      pyramid_resolver)
from .stats import (StatsSnapshot, histogram_percentile, render_stats_json,
                    render_stats_prom, render_stats_text, render_top,
                    scrape_stats)

__all__ = [
    "AlarmDaemon",
    "BenchResult",
    "DaemonThread",
    "PyramidGeometry",
    "SocketTransport",
    "StatsSnapshot",
    "bitmap_geometry_of",
    "histogram_percentile",
    "pyramid_resolver",
    "render_stats_json",
    "render_stats_prom",
    "render_stats_text",
    "render_top",
    "run_bench",
    "run_network_simulation",
    "scrape_stats",
]
