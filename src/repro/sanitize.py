"""Runtime invariant sanitizer: cheap checks a simulation can carry.

The static analyzers (:mod:`repro.lintkit`, :mod:`repro.analysis`)
prove what they can see; the sanitizer guards the residue at runtime.
Enabled via ``repro simulate --sanitize`` or ``REPRO_SANITIZE=1``, it
installs four invariant checks at simulation start:

* **frozen geometry** — the alarm registry's regions are snapshotted
  at run start and compared at run end; any mutation (however it
  dodged RL001) raises;
* **monotone simulation clock** — each client's samples must carry
  non-decreasing timestamps (the silence-period contract assumes it);
* **wire fidelity** — the default transport is replaced by the
  verifying in-process transport, which encodes every message and
  asserts ``size_bits == 8 * len(encode(...))``;
* **merge associativity** — the parallel engine's merged metrics are
  recomputed under a different fold order and compared, spot-checking
  the :meth:`~repro.engine.metrics.Metrics.merged` contract.

A sanitized :class:`~repro.net.daemon.AlarmDaemon` carries two more,
mirroring the static concurrency checkers at runtime:

* **event-loop stall monitor** (PA005's shadow) — a watchdog task
  measures how late periodic sleeps wake; a delay past
  :data:`LOOP_STALL_THRESHOLD_S` fails the run at ``aclose()``;
* **task-leak check** (PA007's shadow) — after ``aclose()`` cancels
  and gathers every tracked task, any daemon-owned task still pending
  is a spawn that escaped the registry, and raises;
* **span-balance ledger** (the tracing layer's mirror) — every span
  the transports and the daemon open is noted, every close must match
  an open, and ``check_span_balance`` at transport/daemon close raises
  on any span opened but never closed (the leak class the fault
  injection suite pins);
* **session automaton walk** (PA008's shadow) — every accepted frame
  advances the connection's session state through
  :meth:`~Sanitizer.check_session_transition`, which asserts the
  ``(state, kind, direction)`` step is a declared row of
  :data:`repro.protocol.spec.SESSION_TRANSITIONS`; a dispatch arm the
  static checker mis-modelled (or a spec edit that breaks the daemon)
  fails loudly while serving.

Off by default and free when off: the engines hold the shared
:data:`DISABLED` singleton and guard every site with one
``sanitizer.enabled`` attribute test — the same pattern (and the same
benchmark ceiling) as the disabled telemetry facade.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # typing only: keeps this module import-light
    from numpy.typing import NDArray

    import numpy as np

    from .alarms import AlarmRegistry
    from .engine.metrics import Metrics
    from .protocol.messages import Response
    from .protocol.wire import WireCodec

    FloatArray = NDArray[np.float64]

#: Environment variable consulted when no explicit flag is passed;
#: any value other than empty or ``"0"`` enables the sanitizer.
SANITIZE_ENV = "REPRO_SANITIZE"

#: One alarm's geometry, flattened for snapshot comparison.
_GeometryRow = Tuple[int, float, float, float, float]

#: A watchdog sleep waking this much late (seconds) means some
#: callback or coroutine step blocked the event loop — the runtime
#: shadow of the PA005 static contract.  Generous on purpose: CI boxes
#: jitter, but a blocking socket read or ``time.sleep`` blows well
#: past half a second.
LOOP_STALL_THRESHOLD_S = 0.5

#: How often the daemon's watchdog samples loop responsiveness.
LOOP_WATCHDOG_INTERVAL_S = 0.05


class SanitizerError(AssertionError):
    """A runtime invariant the sanitizer guards was violated."""


class Sanitizer:
    """Invariant checker attached to one simulation run.

    Construct one per run (clock state is per-run); obtain the
    appropriate instance with :meth:`resolve`, which returns the
    zero-overhead :data:`DISABLED` singleton when the flag (or the
    environment) says off.
    """

    __slots__ = ("_clocks", "_geometry", "_worst_lag", "_open_spans")

    enabled = True

    def __init__(self) -> None:
        self._clocks: Dict[int, float] = {}
        self._geometry: Optional[Tuple[_GeometryRow, ...]] = None
        self._worst_lag = 0.0
        self._open_spans: Set[Tuple[int, int]] = set()

    @staticmethod
    def resolve(flag: Optional[bool] = None) -> "Sanitizer":
        """The sanitizer a run should carry.

        ``True``/``False`` are explicit; ``None`` consults
        :data:`SANITIZE_ENV` once.  Disabled runs share
        :data:`DISABLED` — no allocation, no state.
        """
        if flag is None:
            flag = os.environ.get(SANITIZE_ENV, "") not in ("", "0")
        return Sanitizer() if flag else DISABLED

    # -- checks --------------------------------------------------------
    def check_clock(self, user_id: int, time_s: float) -> None:
        """Assert per-client sample timestamps never go backwards."""
        last = self._clocks.get(user_id)
        if last is not None and time_s < last:
            raise SanitizerError(
                "simulation clock of client %d went backwards: "
                "%.6f after %.6f" % (user_id, time_s, last))
        self._clocks[user_id] = time_s

    def check_clock_batch(self, user_id: int,
                          times: "FloatArray") -> None:
        """Vectorized :meth:`check_clock` over one client's whole batch.

        Checks the batch head against the stored clock and every
        adjacent pair inside the batch in one array comparison, then
        stores the tail — the exact invariant the per-sample loop
        enforces, at O(1) Python cost per batch.
        """
        if len(times) == 0:
            return
        last = self._clocks.get(user_id)
        if last is not None and float(times[0]) < last:
            raise SanitizerError(
                "simulation clock of client %d went backwards: "
                "%.6f after %.6f" % (user_id, float(times[0]), last))
        backwards = times[1:] < times[:-1]
        if bool(backwards.any()):
            index = int(backwards.argmax()) + 1
            raise SanitizerError(
                "simulation clock of client %d went backwards: "
                "%.6f after %.6f" % (user_id, float(times[index]),
                                     float(times[index - 1])))
        self._clocks[user_id] = float(times[-1])

    def _rows(self, registry: "AlarmRegistry"
              ) -> Tuple[_GeometryRow, ...]:
        return tuple(sorted(
            (alarm.alarm_id, alarm.region.min_x, alarm.region.min_y,
             alarm.region.max_x, alarm.region.max_y)
            for alarm in registry.all_alarms()))

    def snapshot_geometry(self, registry: "AlarmRegistry") -> None:
        """Record the registry's alarm regions at run start."""
        self._geometry = self._rows(registry)

    def verify_geometry(self, registry: "AlarmRegistry") -> None:
        """Assert the registry's regions are unchanged since snapshot.

        Legitimate churn (the dynamic/tracking engines) goes through
        the registry's install/remove/relocate API — those runs do not
        carry the static-geometry check, so a difference here means an
        in-place mutation of a frozen geometry value.
        """
        if self._geometry is None:
            return
        current = self._rows(registry)
        if current != self._geometry:
            raise SanitizerError(
                "alarm geometry changed during the run: %d region(s) "
                "differ from the start-of-run snapshot"
                % sum(1 for before, after
                      in zip(self._geometry, current) if before != after))

    def check_wire(self, codec: "WireCodec",
                   message: "Response") -> None:
        """Assert a message's accounted size matches its encoding."""
        size = codec.size_of_response(message)
        encoded = codec.encode_response(message)
        if size != len(encoded):
            raise SanitizerError(
                "wire accounting drift: size_of_response says %d bytes "
                "(%d bits) but encode_response produced %d bytes"
                % (size, 8 * size, len(encoded)))

    def check_frame(self, direction: str, payload_bytes: int,
                    charged_bytes: int) -> None:
        """Assert a socket frame carries exactly the bytes charged.

        The framed network path extends the wire-fidelity contract one
        layer out: an uplink frame's payload is the codec encoding the
        transport charged, and a reply frame's sized entries sum to the
        downlink bytes charged for that exchange.  The envelope (frame
        headers, batch tags, in-band notifications) is free by design
        and excluded from ``payload_bytes`` by the caller.
        """
        if payload_bytes != charged_bytes:
            raise SanitizerError(
                "framed %s accounting drift: frame carries %d charged "
                "byte(s) but the transport charged %d"
                % (direction, payload_bytes, charged_bytes))

    def note_loop_lag(self, lag_s: float) -> None:
        """Record one watchdog wakeup delay (worst value is kept)."""
        if lag_s > self._worst_lag:
            self._worst_lag = lag_s

    def check_loop_health(self) -> None:
        """Assert no callback stalled the event loop past threshold.

        The daemon's watchdog task measures how late periodic
        ``asyncio.sleep`` wakeups arrive; a wakeup delayed past
        :data:`LOOP_STALL_THRESHOLD_S` means some callback held the
        loop that long — the runtime counterpart of the PA005
        blocking-call-in-async contract.
        """
        if self._worst_lag > LOOP_STALL_THRESHOLD_S:
            raise SanitizerError(
                "event loop stalled for %.3fs (threshold %.3fs): a "
                "callback or coroutine blocked the loop instead of "
                "awaiting or deferring to an executor"
                % (self._worst_lag, LOOP_STALL_THRESHOLD_S))

    def check_task_leaks(self, pending: Sequence[str]) -> None:
        """Assert the daemon is not abandoning live tasks at close.

        ``pending`` names the daemon-owned tasks still unfinished
        after ``aclose()`` cancelled and gathered everything it
        tracks — the runtime counterpart of the PA007 task-lifecycle
        contract (a non-empty list means a spawn escaped the
        registry).
        """
        if pending:
            raise SanitizerError(
                "task leak at daemon close: %d daemon task(s) still "
                "pending: %s" % (len(pending),
                                 ", ".join(sorted(pending))))

    def note_span_open(self, trace_id: int, span_id: int) -> None:
        """Record one span opening (duplicate opens raise)."""
        key = (trace_id, span_id)
        if key in self._open_spans:
            raise SanitizerError(
                "span (trace %d, span %d) opened twice without closing"
                % (trace_id, span_id))
        self._open_spans.add(key)

    def note_span_close(self, trace_id: int, span_id: int) -> None:
        """Record one span closing (a close without an open raises)."""
        key = (trace_id, span_id)
        if key not in self._open_spans:
            raise SanitizerError(
                "span (trace %d, span %d) closed but was never opened"
                % (trace_id, span_id))
        self._open_spans.discard(key)

    def check_span_balance(self) -> None:
        """Assert every noted span was closed (run at endpoint close).

        The runtime mirror of ``repro trace validate``'s span
        well-formedness check: a span opened around a request that then
        failed — a dropped frame, a timeout, a dead peer — must still
        close (with an error status), or the trace's span ledger is
        unbalanced and latency accounting silently loses the worst
        (failed) exchanges.
        """
        if self._open_spans:
            leaked = ", ".join(
                "(trace %d, span %d)" % key
                for key in sorted(self._open_spans)[:5])
            raise SanitizerError(
                "span leak: %d span(s) opened but never closed: %s"
                % (len(self._open_spans), leaked))

    def check_session_transition(self, state: str, kind_name: str,
                                 direction: str) -> str:
        """Assert one session step is spec-legal; return the new state.

        The runtime mirror of PA008: the daemon threads its
        per-connection state through this method as it accepts frames,
        so a step outside
        :data:`repro.protocol.spec.SESSION_TRANSITIONS` raises at the
        moment it happens instead of surfacing as a downstream protocol
        error.  The disabled singleton returns ``state`` unchanged.
        """
        from .protocol.spec import session_next_state

        next_state = session_next_state(state, kind_name, direction)
        if next_state is None:
            raise SanitizerError(
                "session automaton violation: %s frame (%s) is not a "
                "declared transition in state %s"
                % (kind_name, direction, state))
        return next_state

    def check_merge(self, parts: Sequence["Metrics"],
                    merged: "Metrics") -> None:
        """Spot-check the metrics merge: fold order must not matter."""
        if len(parts) < 2:
            return
        from .engine.metrics import Metrics

        refolded = Metrics.merged(list(reversed(list(parts))))
        if refolded.counters() != merged.counters():
            raise SanitizerError(
                "metrics merge is not associative: reversed fold "
                "disagrees with shard-order fold")
        if (sorted((e.time, e.user_id, e.alarm_id)
                   for e in refolded.triggers)
                != sorted((e.time, e.user_id, e.alarm_id)
                          for e in merged.triggers)):
            raise SanitizerError(
                "metrics merge lost or duplicated trigger events "
                "under a reversed fold order")


class _DisabledSanitizer(Sanitizer):
    """Shared no-op sanitizer: one attribute check per guarded site."""

    __slots__ = ()

    enabled = False

    def check_clock(self, user_id: int, time_s: float) -> None:
        return

    def check_clock_batch(self, user_id: int,
                          times: "FloatArray") -> None:
        return

    def snapshot_geometry(self, registry: "AlarmRegistry") -> None:
        return

    def verify_geometry(self, registry: "AlarmRegistry") -> None:
        return

    def check_wire(self, codec: "WireCodec",
                   message: "Response") -> None:
        return

    def check_frame(self, direction: str, payload_bytes: int,
                    charged_bytes: int) -> None:
        return

    def note_loop_lag(self, lag_s: float) -> None:
        return

    def check_loop_health(self) -> None:
        return

    def check_task_leaks(self, pending: Sequence[str]) -> None:
        return

    def note_span_open(self, trace_id: int, span_id: int) -> None:
        return

    def note_span_close(self, trace_id: int, span_id: int) -> None:
        return

    def check_span_balance(self) -> None:
        return

    def check_session_transition(self, state: str, kind_name: str,
                                 direction: str) -> str:
        return state

    def check_merge(self, parts: Sequence["Metrics"],
                    merged: "Metrics") -> None:
        return


#: The shared disabled sanitizer (the only instance untraced runs see).
DISABLED = _DisabledSanitizer()
