"""Command-line interface.

Runs the reproduction from a shell without writing Python::

    python -m repro list
    python -m repro world --workload tiny
    python -m repro simulate --strategy mwpsr --workload tiny
    python -m repro figure 5a --workload bench

``figure`` regenerates one of the paper's tables/figures (the same
harnesses the benchmark suite drives); ``simulate`` runs a single
strategy over a workload preset and prints the headline metrics.
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import sys
import time
from dataclasses import asdict
from typing import Callable, Dict, List, Optional

from .engine import PhaseProfiler, run_parallel_simulation, run_simulation
from .engine.metrics import Metrics
from .engine.server import AlarmServer
from .net import (AlarmDaemon, render_stats_json, render_stats_prom,
                  render_stats_text, render_top, run_bench, scrape_stats)
from .protocol.wire import WireCodec
from .sanitize import Sanitizer
from .experiments import (BENCH, PAPER, TINY, Table, WorkloadConfig,
                          build_world, coverage_size_tradeoff, figure1b,
                          figure4a, figure4b, figure5a, figure5b, figure6a,
                          figure6b, figure6c, figure6d, make_mwpsr_strategy,
                          make_pbsr_strategy, profile_report,
                          residence_statistics, safe_region_statistics,
                          workload_profile)
from .analysis.cli import add_analyze_arguments, run_analyze_command
from .lintkit.cli import add_lint_arguments, run_lint_command
from .protocol.transport import (InProcessTransport, LossyTransport,
                                 TransportFactory)
from .strategies import (OptimalStrategy, PeriodicStrategy,
                         ProcessingStrategy, SafePeriodStrategy)
from .telemetry import (EVENT_TYPES, JsonlSink, RunManifest, Telemetry,
                        filter_events, read_trace, reconcile,
                        render_event_line, render_json, render_prom,
                        render_text, validate_trace)

WORKLOADS: Dict[str, WorkloadConfig] = {
    "tiny": TINY,
    "bench": BENCH,
    "paper": PAPER,
}

FIGURES: Dict[str, Callable[..., Table]] = {
    "1b": figure1b,
    "4a": figure4a,
    "4b": figure4b,
    "5a": figure5a,
    "5b": figure5b,
    "6a": figure6a,
    "6b": figure6b,
    "6c": figure6c,
    "6d": figure6d,
}

STRATEGY_HELP = ("periodic | sp | mwpsr | mwpsr-nw | gbsr | "
                 "pbsr[:height] | opt")


def _resolve_workload(args: argparse.Namespace) -> WorkloadConfig:
    config = WORKLOADS[args.workload]
    if getattr(args, "public", None) is not None:
        config = config.with_public_fraction(args.public)
    if getattr(args, "placement", None):
        from dataclasses import replace
        config = replace(config, alarm_placement=args.placement)
    return config


def _resolve_strategy(spec: str, max_speed: float) -> ProcessingStrategy:
    name, _, parameter = spec.partition(":")
    name = name.lower()
    if name == "periodic":
        return PeriodicStrategy()
    if name == "sp":
        return SafePeriodStrategy(max_speed=max_speed)
    if name == "mwpsr":
        return make_mwpsr_strategy(z=int(parameter) if parameter else 32)
    if name == "mwpsr-nw":
        return make_mwpsr_strategy(weighted=False)
    if name == "gbsr":
        return make_pbsr_strategy(1)
    if name == "pbsr":
        return make_pbsr_strategy(int(parameter) if parameter else 5)
    if name == "opt":
        return OptimalStrategy()
    raise SystemExit("unknown strategy %r (choose from: %s)"
                     % (spec, STRATEGY_HELP))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    print("workloads:  " + ", ".join(sorted(WORKLOADS)))
    print("figures:    " + ", ".join(sorted(FIGURES)))
    print("strategies: " + STRATEGY_HELP)
    return 0


def _cmd_world(args: argparse.Namespace) -> int:
    config = _resolve_workload(args)
    world = build_world(config, args.cell)
    print("universe:        %.0f x %.0f m (%.0f km^2)"
          % (world.universe.width, world.universe.height,
             world.universe.area / 1e6))
    print("grid:            %d x %d cells of %.2f km^2"
          % (world.grid.columns, world.grid.rows,
             world.grid.actual_cell_area_km2))
    print("vehicles:        %d, %.0f s at %.1f Hz (%d location fixes)"
          % (len(world.traces), world.duration_s,
             1.0 / world.traces.sample_interval,
             world.traces.total_samples))
    print("alarms:          %d (%s placement, %.0f%% public)"
          % (len(world.registry), config.alarm_placement,
             100 * config.public_fraction))
    print("expected alarms: %d triggers in the ground truth"
          % len(world.ground_truth()))
    return 0


def _resolve_transport(args: argparse.Namespace
                       ) -> Optional[TransportFactory]:
    """The transport factory the simulate flags ask for (None: default)."""
    lossy = args.uplink_drop > 0.0 or args.downlink_drop > 0.0
    if lossy:
        return functools.partial(LossyTransport,
                                 verify_wire=args.verify_wire,
                                 uplink_drop=args.uplink_drop,
                                 downlink_drop=args.downlink_drop,
                                 seed=args.net_seed)
    if args.verify_wire:
        return functools.partial(InProcessTransport, verify_wire=True)
    return None


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = _resolve_workload(args)
    world = build_world(config, args.cell)
    if args.workers < 1:
        raise SystemExit("--workers must be a positive integer")
    transport_factory = _resolve_transport(args)
    telemetry: Optional[Telemetry] = None
    if args.trace:
        manifest = RunManifest.collect(
            strategy=args.strategy, config=asdict(config),
            workers=args.workers, sizes=world.sizes.to_dict(),
            energy=world.energy.to_dict(), cell_area_km2=args.cell)
        telemetry = Telemetry.capture(sink=JsonlSink(args.trace),
                                      manifest=manifest)
        telemetry.write_manifest()
    try:
        if args.workers > 1:
            # The sharded engine constructs one strategy per worker
            # process, so it takes a picklable factory rather than an
            # instance.
            factory = functools.partial(_resolve_strategy, args.strategy,
                                        world.max_speed())
            result = run_parallel_simulation(
                world, factory, workers=args.workers,
                use_cell_cache=args.cell_cache,
                use_region_cache=args.region_cache,
                profile=args.profile, telemetry=telemetry,
                transport_factory=transport_factory,
                sanitize=True if args.sanitize else None,
                use_batch=args.batch)
        else:
            strategy = _resolve_strategy(args.strategy, world.max_speed())
            profiler = PhaseProfiler() if args.profile else None
            result = run_simulation(world, strategy,
                                    use_cell_cache=args.cell_cache,
                                    use_region_cache=args.region_cache,
                                    profiler=profiler, telemetry=telemetry,
                                    transport_factory=transport_factory,
                                    sanitize=True if args.sanitize else None,
                                    use_batch=args.batch)
        if telemetry is not None:
            telemetry.write_summary(result.metrics.counters(),
                                    triggers=len(result.metrics.triggers),
                                    wall_time_s=result.wall_time_s,
                                    workers=result.workers)
    finally:
        if telemetry is not None:
            telemetry.close()
    metrics = result.metrics
    print("strategy:             %s" % result.strategy_name)
    if result.workers > 1:
        print("workers:              %d shards, %.2f s wall"
              % (result.workers, result.wall_time_s))
    print("uplink messages:      %d (%.2f%% of %d fixes)"
          % (metrics.uplink_messages, 100 * result.message_fraction,
             result.total_samples))
    print("downlink:             %d messages, %d bytes (%.5f Mbps)"
          % (metrics.downlink_messages, metrics.downlink_bytes,
             result.downstream_bandwidth_mbps))
    print("client energy:        %.4f mWh (%d containment ops)"
          % (result.client_energy_mwh, metrics.containment_ops))
    print("server time:          %.1f ms alarm processing, %.1f ms "
          "safe-region computation"
          % (1000 * metrics.alarm_processing_time_s,
             1000 * metrics.saferegion_time_s))
    if args.region_cache:
        print("region cache:         %d hits / %d misses "
              "(%d safe-region computations)"
              % (metrics.saferegion_cache_hits,
                 metrics.saferegion_cache_misses,
                 metrics.safe_region_computations))
    if metrics.uplink_drops or metrics.downlink_drops:
        print("transport drops:      %d uplink, %d downlink (retried)"
              % (metrics.uplink_drops, metrics.downlink_drops))
    print("triggers:             %d delivered / %d expected "
          "(missed %d, spurious %d, late %d)"
          % (result.accuracy.delivered, result.accuracy.expected,
             result.accuracy.missed, result.accuracy.spurious,
             result.accuracy.late))
    if args.profile:
        print(profile_report(result))
    if args.trace:
        print("trace:                %s" % args.trace)
    return 0 if result.accuracy.perfect else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a workload's alarm server over a real socket.

    Runs until a client sends a SHUTDOWN frame (``repro bench-net
    --shutdown``) or the process receives SIGINT.  With ``--trace`` the
    daemon records the same JSONL telemetry a simulation records —
    ``repro report`` reconciles it and renders the net_* counters and
    latency histograms.
    """
    config = _resolve_workload(args)
    world = build_world(config, args.cell)
    strategy = _resolve_strategy(args.strategy, world.max_speed())
    telemetry: Optional[Telemetry] = None
    if args.trace:
        manifest = RunManifest.collect(
            strategy=args.strategy, config=asdict(config), workers=1,
            sizes=world.sizes.to_dict(), energy=world.energy.to_dict(),
            cell_area_km2=args.cell)
        telemetry = Telemetry.capture(sink=JsonlSink(args.trace),
                                      manifest=manifest)
        telemetry.write_manifest()
    sanitizer = Sanitizer.resolve(True if args.sanitize else None)
    if sanitizer.enabled:
        sanitizer.snapshot_geometry(world.registry)
    metrics = Metrics()
    server = AlarmServer(world.registry, world.grid, metrics,
                         sizes=world.sizes,
                         use_cell_cache=args.cell_cache,
                         use_region_cache=args.region_cache,
                         telemetry=telemetry)
    daemon = AlarmDaemon(server, strategy.server_policy(),
                         WireCodec.from_sizes(world.sizes),
                         verify_wire=args.verify_wire or sanitizer.enabled,
                         batch_max=args.batch, queue_limit=args.queue,
                         sanitizer=sanitizer)

    async def _serve() -> None:
        if args.uds:
            await daemon.start_unix(args.uds)
            print("serving on %s" % args.uds, flush=True)
        else:
            port = await daemon.start_tcp(args.host, args.port)
            print("serving on %s:%d" % (args.host, port), flush=True)
        await daemon.serve_until_stopped()

    started = time.perf_counter()
    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        wall_time = time.perf_counter() - started
        server.close()
        if telemetry is not None:
            telemetry.write_summary(metrics.counters(),
                                    triggers=len(metrics.triggers),
                                    wall_time_s=wall_time, workers=1)
            telemetry.close()
    if sanitizer.enabled:
        sanitizer.verify_geometry(world.registry)
    print("served %d uplink messages (%d bytes up, %d down) in %.2f s"
          % (metrics.uplink_messages, metrics.uplink_bytes,
             metrics.downlink_bytes, wall_time))
    if args.trace:
        print("trace: %s" % args.trace)
    return 0


def _cmd_bench_net(args: argparse.Namespace) -> int:
    """Replay a workload's traces against a running daemon."""
    if not args.uds and not args.port:
        raise SystemExit("bench-net needs --uds PATH or --port N")
    config = _resolve_workload(args)
    world = build_world(config, args.cell)
    result = run_bench(world.traces, path=args.uds, host=args.host,
                       port=args.port,
                       codec=WireCodec.from_sizes(world.sizes),
                       connections=args.connections, window=args.window,
                       repeat=args.repeat, shutdown=args.shutdown)
    manifest = RunManifest.collect(
        strategy="bench-net", config=asdict(config),
        workers=args.connections, sizes=world.sizes.to_dict(),
        cell_area_km2=args.cell, window=args.window, repeat=args.repeat)
    print(json.dumps(result.to_dict(manifest), indent=2, sort_keys=True))
    return 0


def _cmd_bench_hotpath(args: argparse.Namespace) -> int:
    """Time the vectorized kernels against their scalar oracles."""
    from .bench.hotpath import run_hotpath_bench  # lazy: pulls numpy
    config = _resolve_workload(args)
    world = build_world(config, args.cell)
    factory = functools.partial(_resolve_strategy, args.strategy,
                                world.max_speed())
    result = run_hotpath_bench(world, factory, workers=args.workers,
                               points=args.points, repeats=args.repeats,
                               seed=args.seed)
    manifest = RunManifest.collect(
        strategy="bench-hotpath", config=asdict(config),
        workers=args.workers, sizes=world.sizes.to_dict(),
        cell_area_km2=args.cell, points=args.points, repeats=args.repeats)
    print(json.dumps(result.to_dict(manifest), indent=2, sort_keys=True))
    # A batch run that fails to reproduce the scalar counters is a
    # correctness bug, not a benchmark result.
    return 0 if result.counters_match else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    """One-shot scrape of a running daemon's STATS channel."""
    if not args.uds and not args.port:
        raise SystemExit("stats needs --uds PATH or --port N")
    snapshot = scrape_stats(path=args.uds, host=args.host, port=args.port,
                            timeout_s=args.timeout)
    if args.format == "json":
        print(render_stats_json(snapshot))
    elif args.format == "prom":
        print(render_stats_prom(snapshot), end="")
    else:
        print(render_stats_text(snapshot))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Poll the STATS channel and render a live dashboard."""
    if not args.uds and not args.port:
        raise SystemExit("top needs --uds PATH or --port N")
    previous = None
    screens = 0
    try:
        while True:
            snapshot = scrape_stats(path=args.uds, host=args.host,
                                    port=args.port,
                                    timeout_s=args.timeout)
            screen = render_top(snapshot, previous, args.interval)
            if not args.no_clear:
                # ANSI clear-screen + cursor-home, like top(1).
                print("\x1b[2J\x1b[H", end="")
            print(screen, flush=True)
            previous = snapshot
            screens += 1
            if args.iterations is not None and screens >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render a recorded trace; exit non-zero if it fails to reconcile."""
    data = read_trace(args.trace)
    if args.format == "json":
        print(render_json(data))
    elif args.format == "prom":
        print(render_prom(data), end="")
    else:
        print(render_text(data))
    result = reconcile(data)
    return 0 if result["ok"] else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Slice or validate a recorded trace's event stream."""
    data = read_trace(args.trace)
    if args.mode == "validate":
        problems = validate_trace(data)
        for problem in problems:
            print(problem)
        print("%d events, %d problems" % (len(data.events), len(problems)))
        return 0 if not problems else 1
    # tail and filter share the slicing; tail is filter with a default
    # limit and no predicates unless given.
    limit = args.limit if args.limit is not None else (
        10 if args.mode == "tail" else None)
    selected = filter_events(data.events,
                             types=args.type if args.type else None,
                             user_id=args.user, shard=args.shard,
                             limit=limit)
    for record in selected:
        print(render_event_line(record))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    config = _resolve_workload(args)
    world = build_world(config, args.cell)
    print(workload_profile(world))
    print()
    areas = safe_region_statistics(world, sample_count=args.samples)
    print("MWPSR safe-region area (km^2): mean %.3f, p10 %.3f, "
          "median %.3f, p90 %.3f"
          % (areas.mean, areas.p10, areas.median, areas.p90))
    residence = residence_statistics(world, make_mwpsr_strategy(),
                                     max_vehicles=10)
    print("MWPSR region residence (s):   mean %.1f, p10 %.1f, "
          "median %.1f, p90 %.1f"
          % (residence.mean, residence.p10, residence.median,
             residence.p90))
    print()
    print(coverage_size_tradeoff(world, heights=(1, 2, 3, 4, 5),
                                 sample_count=args.samples))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    config = _resolve_workload(args)
    harness = FIGURES[args.figure]
    table = harness() if args.figure == "1b" else harness(config)
    print(table)
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Safe region-based spatial alarm processing "
                    "(ICDCS 2009 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list workloads, figures, "
                                       "strategies").set_defaults(
        handler=_cmd_list)

    def add_workload_options(sub: argparse.ArgumentParser,
                             with_cell: bool = True) -> None:
        sub.add_argument("--workload", choices=sorted(WORKLOADS),
                         default="tiny", help="workload preset")
        sub.add_argument("--public", type=float, default=None,
                         help="public-alarm fraction override (0..1)")
        sub.add_argument("--placement", choices=("uniform", "clustered"),
                         default=None, help="alarm target placement")
        if with_cell:
            sub.add_argument("--cell", type=float, default=2.5,
                             help="grid cell area in km^2 (default 2.5)")

    world_parser = subparsers.add_parser(
        "world", help="describe a workload's world")
    add_workload_options(world_parser)
    world_parser.set_defaults(handler=_cmd_world)

    simulate_parser = subparsers.add_parser(
        "simulate", help="run one strategy over a workload")
    simulate_parser.add_argument("--strategy", required=True,
                                 help=STRATEGY_HELP)
    simulate_parser.add_argument("--workers", type=int, default=1,
                                 help="shard the replay over N worker "
                                      "processes (default 1: serial)")
    simulate_parser.add_argument("--profile", action="store_true",
                                 help="print a per-phase wall-time JSON "
                                      "report after the run")
    simulate_parser.add_argument("--trace", default=None, metavar="PATH",
                                 help="record a JSONL telemetry trace "
                                      "(manifest + events + summary) "
                                      "readable by `repro report`")
    simulate_parser.add_argument("--cell-cache", action="store_true",
                                 help="enable the server's per-cell alarm "
                                      "cache (identical results, less "
                                      "index work)")
    simulate_parser.add_argument("--region-cache", action="store_true",
                                 help="enable the shared cell-keyed "
                                      "safe-region memo (identical "
                                      "messages, fewer bitmap "
                                      "computations)")
    simulate_parser.add_argument("--uplink-drop", type=float, default=0.0,
                                 metavar="P",
                                 help="lossy transport: per-attempt uplink "
                                      "drop probability in [0, 1)")
    simulate_parser.add_argument("--downlink-drop", type=float, default=0.0,
                                 metavar="P",
                                 help="lossy transport: per-attempt "
                                      "downlink drop probability in [0, 1)")
    simulate_parser.add_argument("--net-seed", type=int, default=0,
                                 help="seed of the lossy transport's "
                                      "private RNG (default 0)")
    simulate_parser.add_argument("--verify-wire", action="store_true",
                                 help="encode every message and assert "
                                      "charged bytes == encoded bytes")
    simulate_parser.add_argument("--sanitize", action="store_true",
                                 help="enable the runtime invariant "
                                      "sanitizer (frozen geometry, "
                                      "monotone clocks, wire fidelity, "
                                      "merge associativity); also via "
                                      "REPRO_SANITIZE=1")
    simulate_parser.add_argument("--batch",
                                 action=argparse.BooleanOptionalAction,
                                 default=False,
                                 help="replay through the vectorized "
                                      "batch kernels (bit-identical "
                                      "results, see docs/VECTORIZATION"
                                      ".md; --no-batch is the scalar "
                                      "oracle)")
    add_workload_options(simulate_parser)
    simulate_parser.set_defaults(handler=_cmd_simulate)

    def add_endpoint_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--uds", default=None, metavar="PATH",
                         help="Unix domain socket path (preferred for "
                              "local serving)")
        sub.add_argument("--host", default="127.0.0.1",
                         help="TCP bind/connect host (default 127.0.0.1)")
        sub.add_argument("--port", type=int, default=0,
                         help="TCP port (serve default 0: ephemeral)")

    serve_parser = subparsers.add_parser(
        "serve", help="serve a workload's alarm server over a socket "
                      "(docs/NETWORKING.md)")
    serve_parser.add_argument("--strategy", required=True,
                              help=STRATEGY_HELP)
    add_endpoint_options(serve_parser)
    serve_parser.add_argument("--batch", type=int, default=64,
                              help="max uplinks per drain batch "
                                   "(default 64)")
    serve_parser.add_argument("--queue", type=int, default=256,
                              help="per-connection uplink queue bound "
                                   "(default 256)")
    serve_parser.add_argument("--trace", default=None, metavar="PATH",
                              help="record a JSONL telemetry trace "
                                   "readable by `repro report`")
    serve_parser.add_argument("--cell-cache", action="store_true",
                              help="enable the server's per-cell alarm "
                                   "cache")
    serve_parser.add_argument("--region-cache", action="store_true",
                              help="enable the cell-keyed safe-region "
                                   "memo")
    serve_parser.add_argument("--verify-wire", action="store_true",
                              help="assert charged bytes == encoded "
                                   "bytes per message")
    serve_parser.add_argument("--sanitize", action="store_true",
                              help="enable the runtime invariant "
                                   "sanitizer (adds framed-byte "
                                   "accounting checks)")
    add_workload_options(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    bench_parser = subparsers.add_parser(
        "bench-net", help="replay a workload's traces against a "
                          "running `repro serve` daemon")
    add_endpoint_options(bench_parser)
    bench_parser.add_argument("--connections", type=int, default=4,
                              help="concurrent connections (default 4)")
    bench_parser.add_argument("--window", type=int, default=64,
                              help="in-flight requests per connection "
                                   "(default 64)")
    bench_parser.add_argument("--repeat", type=int, default=1,
                              help="replay the trace set N times "
                                   "(default 1)")
    bench_parser.add_argument("--shutdown", action="store_true",
                              help="send the daemon a SHUTDOWN frame "
                                   "when done")
    add_workload_options(bench_parser)
    bench_parser.set_defaults(handler=_cmd_bench_net)

    hotpath_parser = subparsers.add_parser(
        "bench-hotpath", help="time the vectorized batch kernels "
                              "against their scalar oracles "
                              "(docs/VECTORIZATION.md)")
    hotpath_parser.add_argument("--strategy", default="PBSR:5",
                                help=STRATEGY_HELP
                                + " (default PBSR:5)")
    hotpath_parser.add_argument("--workers", type=int, default=2,
                                help="worker count of the sharded "
                                     "end-to-end runs (default 2)")
    hotpath_parser.add_argument("--points", type=int, default=100000,
                                help="microbench population size "
                                     "(default 100000)")
    hotpath_parser.add_argument("--repeats", type=int, default=3,
                                help="timed repetitions per section; "
                                     "best is kept (default 3)")
    hotpath_parser.add_argument("--seed", type=int, default=11,
                                help="seed of the microbench geometry "
                                     "RNG (default 11)")
    add_workload_options(hotpath_parser)
    hotpath_parser.set_defaults(handler=_cmd_bench_hotpath)

    stats_parser = subparsers.add_parser(
        "stats", help="scrape a running daemon's live STATS snapshot "
                      "(docs/OBSERVABILITY.md)")
    add_endpoint_options(stats_parser)
    stats_parser.add_argument("--format", choices=("text", "json", "prom"),
                              default="text",
                              help="output format (default: text)")
    stats_parser.add_argument("--timeout", type=float, default=10.0,
                              help="scrape timeout in seconds "
                                   "(default 10)")
    stats_parser.set_defaults(handler=_cmd_stats)

    top_parser = subparsers.add_parser(
        "top", help="poll a running daemon's STATS channel as a live "
                    "dashboard (Ctrl-C to exit)")
    add_endpoint_options(top_parser)
    top_parser.add_argument("--interval", type=float, default=1.0,
                            help="seconds between scrapes (default 1)")
    top_parser.add_argument("--iterations", type=int, default=None,
                            metavar="N",
                            help="stop after N screens (default: run "
                                 "until interrupted)")
    top_parser.add_argument("--no-clear", action="store_true",
                            help="append screens instead of clearing "
                                 "the terminal (useful under CI)")
    top_parser.add_argument("--timeout", type=float, default=10.0,
                            help="scrape timeout in seconds "
                                 "(default 10)")
    top_parser.set_defaults(handler=_cmd_top)

    profile_parser = subparsers.add_parser(
        "profile", help="profile a workload and its safe regions")
    profile_parser.add_argument("--samples", type=int, default=60,
                                help="sample count for distributions")
    add_workload_options(profile_parser)
    profile_parser.set_defaults(handler=_cmd_profile)

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate a figure of the paper's evaluation")
    figure_parser.add_argument("figure", choices=sorted(FIGURES))
    add_workload_options(figure_parser, with_cell=False)
    figure_parser.set_defaults(handler=_cmd_figure)

    lint_parser = subparsers.add_parser(
        "lint", help="run the domain-invariant linter "
                     "(docs/STATIC_ANALYSIS.md)")
    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(handler=run_lint_command)

    analyze_parser = subparsers.add_parser(
        "analyze", help="run the whole-program contract analyzer "
                        "(docs/STATIC_ANALYSIS.md)")
    add_analyze_arguments(analyze_parser)
    analyze_parser.set_defaults(handler=run_analyze_command)

    report_parser = subparsers.add_parser(
        "report", help="render a recorded telemetry trace "
                       "(docs/OBSERVABILITY.md)")
    report_parser.add_argument("trace", help="JSONL trace file from "
                                             "`simulate --trace`")
    report_parser.add_argument("--format", choices=("text", "json", "prom"),
                               default="text",
                               help="output format (default: text)")
    report_parser.set_defaults(handler=_cmd_report)

    trace_parser = subparsers.add_parser(
        "trace", help="slice or validate a trace's event stream")
    trace_parser.add_argument("mode", choices=("tail", "filter", "validate"),
                              help="tail: last N events; filter: select "
                                   "by type/user/shard; validate: check "
                                   "every record against the schema")
    trace_parser.add_argument("trace", help="JSONL trace file")
    trace_parser.add_argument("--type", action="append", default=None,
                              choices=EVENT_TYPES, metavar="EVENT",
                              help="event type to keep (repeatable; "
                                   "one of: %s)" % ", ".join(EVENT_TYPES))
    trace_parser.add_argument("--user", type=int, default=None,
                              help="keep events of this user id")
    trace_parser.add_argument("--shard", type=int, default=None,
                              help="keep events of this shard index")
    trace_parser.add_argument("--limit", type=int, default=None,
                              help="keep the last N matches "
                                   "(default 10 for tail)")
    trace_parser.set_defaults(handler=_cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler: Callable[[argparse.Namespace], int] = args.handler
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
