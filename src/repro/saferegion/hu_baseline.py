"""The prior rectangular safe-region algorithm of Hu, Xu and Lee [10].

Hu et al. ("A Generic Framework for Monitoring Continuous Spatial
Queries over Moving Objects", SIGMOD 2005) compute a rectangular safe
region from the *corners of the constraining regions, each assigned to
the quadrant it falls in*.  The paper reproduced here names two failure
modes of that construction and fixes both (Section 5.2 and Related
Work):

1. **Alarm regions intersecting the axes**: a region straddling a
   quadrant axis contributes its corner to a *neighbouring* quadrant,
   leaving the straddled quadrant unconstrained — the safe region then
   overlaps the alarm, and a subscriber can enter the alarm without ever
   leaving its "safe" region: a missed alarm.
2. **Overlapping alarm regions**: with per-quadrant nearest-corner
   bookkeeping, a corner of region A that lies *inside* region B is
   still used as a constraint even though B already covers it, producing
   erroneous (over- or under-sized) regions.

This module implements the Hu-style construction faithfully enough to
*demonstrate* those failures: each quadrant is capped by the nearest
alarm-region corner that falls inside it (no clamping of straddling
regions, no overlap awareness).  It exists as an experimental baseline —
``tests/saferegion/test_hu_baseline.py`` exhibits concrete unsafe
outputs, and the simulation ablation measures the alarm misses a real
deployment would suffer.  Production code should always use
:class:`~repro.saferegion.MWPSRComputer`.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..geometry import Point, Rect
from .base import RectangularSafeRegion


class HuBaselineComputer:
    """Hu et al.-style rectangular safe regions (known-unsafe baseline).

    API-compatible with :class:`MWPSRComputer.compute` so it can drop
    into the rectangular strategy for the ablation; ``heading`` is
    accepted and ignored (the original maximizes unweighted extent).
    """

    def compute(self, position: Point, heading: float, cell: Rect,
                obstacles: Sequence[Rect],
                batched: bool = False) -> "_HuResult":
        """Safe-region rectangle per the corner-per-quadrant construction.

        For each alarm-region corner, the corner constrains only the
        quadrant it geometrically falls in; each quadrant keeps its
        nearest constraining corner, and the rectangle spans between
        those per-quadrant caps (cell-clipped).  Degenerate by design:
        regions straddling an axis or overlapping each other are
        mishandled exactly as in the original.  ``batched`` is accepted
        for signature compatibility with the MWPSR computer and ignored
        — the corner scan has no vectorized variant.
        """
        if not cell.contains_point(position):
            raise ValueError("subscriber position outside its grid cell")

        # Extents toward +x/+y/-x/-y, initialized at the cell boundary.
        right = cell.max_x - position.x
        top = cell.max_y - position.y
        left = position.x - cell.min_x
        bottom = position.y - cell.min_y

        # Per-quadrant nearest corner: quadrant I caps (right, top), etc.
        caps: List[Tuple[float, float]] = [(right, top), (left, top),
                                           (left, bottom), (right, bottom)]
        best_distance = [math.inf] * 4
        for obstacle in obstacles:
            for corner in obstacle.corners():
                dx = corner.x - position.x
                dy = corner.y - position.y
                quadrant = self._quadrant(dx, dy)
                distance = dx * dx + dy * dy
                if distance < best_distance[quadrant]:
                    best_distance[quadrant] = distance
                    caps[quadrant] = (abs(dx), abs(dy))

        right = min(caps[0][0], caps[3][0], right)
        top = min(caps[0][1], caps[1][1], top)
        left = min(caps[1][0], caps[2][0], left)
        bottom = min(caps[2][1], caps[3][1], bottom)
        rect = Rect(position.x - left, position.y - bottom,
                    position.x + right, position.y + top)
        return _HuResult(rect)

    @staticmethod
    def _quadrant(dx: float, dy: float) -> int:
        if dx >= 0.0:
            return 0 if dy >= 0.0 else 3
        return 1 if dy >= 0.0 else 2


class _HuResult:
    """Result shim matching :class:`MWPSRResult`'s strategy-facing API."""

    __slots__ = ("rect",)

    def __init__(self, rect: Rect) -> None:
        self.rect = rect

    def to_safe_region(self) -> RectangularSafeRegion:
        return RectangularSafeRegion(self.rect)
