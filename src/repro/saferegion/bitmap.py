"""Bitmap-encoded safe regions (paper Section 4).

A bitmap encoded safe region (BSR) represents the safe region of a grid
cell as a hierarchy of bits over a pyramid decomposition: bit 1 means the
cell belongs entirely to the safe region (it intersects no relevant alarm
region), bit 0 means it does not, and — below the pyramid's maximum
height — 0-cells are split into ``U x V`` children that get bits of their
own.

Serialization (the wire format whose length is the paper's *bitmap size*
metric): the root bit first, then the children of every 0-cell in
breadth-first emission order, each child block in raster-scan order (top
row first, left to right).  This reproduces the paper's Fig. 3 numbers
exactly — 82 bits for the 9x9 GBSR of Fig. 3(c), 64 bits for the
height-2 PBSR of Fig. 3(d) — which the test suite asserts.

The client-side containment probe needs only the bits along the path
from the root to the leaf containing its position: O(h) bit probes per
position fix, the paper's "predefined worst-case number of computations".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..geometry import Point, Rect, RectilinearRegion
from ..index import Pyramid, PyramidCell
from .base import SafeRegion


class PyramidBitmap:
    """Bit assignment over a pyramid decomposition of one base cell.

    ``bits`` maps every *emitted* cell (the root plus all children of
    0-cells above the maximum level) to its bit value.  Cells absent from
    the mapping were never emitted because their ancestors are safe
    (bit 1) — their space is part of the safe region by inheritance.
    """

    __slots__ = ("pyramid", "bits", "_emission_order")

    def __init__(self, pyramid: Pyramid, bits: Dict[PyramidCell, int],
                 emission_order: Sequence[PyramidCell]) -> None:
        self.pyramid = pyramid
        self.bits = bits
        self._emission_order = list(emission_order)

    # ------------------------------------------------------------------
    # Size and serialization
    # ------------------------------------------------------------------
    def bit_length(self) -> int:
        """Number of bits in the serialized representation."""
        return len(self._emission_order)

    def to_bitstring(self) -> str:
        """The serialized bitmap as a string of '0'/'1' characters."""
        return "".join(str(self.bits[cell]) for cell in self._emission_order)

    # ------------------------------------------------------------------
    # Containment
    # ------------------------------------------------------------------
    def probe(self, p: Point) -> Tuple[bool, int]:
        """Is ``p`` inside the safe region?  Returns ``(inside, probes)``.

        Walks from the root toward the leaf containing ``p``, stopping at
        the first 1 bit (inside) or at an unsplit 0 bit (outside).  The
        probe count is the number of levels examined — worst case
        ``height + 1``.
        """
        if not self.pyramid.base.contains_point(p):
            return (False, 1)
        probes = 0
        for level in range(self.pyramid.height + 1):
            probes += 1
            cell = self.pyramid.locate(p, level)
            bit = self.bits.get(cell)
            if bit is None:
                # The cell was never emitted: an ancestor is safe.
                return (True, probes)
            if bit == 1:
                return (True, probes)
        return (False, probes)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def safe_cells(self) -> List[PyramidCell]:
        """All emitted cells with bit 1 (the safe region's pieces)."""
        return [cell for cell in self._emission_order
                if self.bits[cell] == 1]

    def to_region(self) -> RectilinearRegion:
        """The safe region as a rectilinear polygon.

        1-cells at different levels never overlap (children are emitted
        only under 0-parents), so the pieces are interior-disjoint.
        """
        return RectilinearRegion(self.pyramid.cell_rect(cell)
                                 for cell in self.safe_cells())

    def coverage(self) -> float:
        """The paper's coverage metric ``eta``: safe area / cell area."""
        safe_area = sum(self.pyramid.cell_rect(cell).area
                        for cell in self.safe_cells())
        return safe_area / self.pyramid.base.area


@dataclass(frozen=True)
class BitmapBuildStats:
    """Work counters from one bitmap construction (server cost model)."""

    cells_tested: int
    intersection_tests: int


def build_pyramid_bitmap(pyramid: Pyramid, obstacles: Sequence[Rect],
                         template: Optional[PyramidBitmap] = None,
                         ) -> Tuple[PyramidBitmap, BitmapBuildStats]:
    """Assign bits over ``pyramid`` for the given alarm ``obstacles``.

    A cell is safe (bit 1) iff its interior intersects no obstacle's
    interior; 0-cells above the maximum level are split.  Interior tests
    mean an alarm merely touching a cell edge does not poison the cell —
    consistent with interior-containment trigger semantics.

    ``template`` is an optional precomputed bitmap over the *same*
    pyramid built from a subset of the obstacles (in the paper: the
    public alarms, precomputed offline per Section 4.2).  Cells the
    template already marks 0 are 0 without re-testing the template's
    obstacles; cells it marks 1 only need testing against the remaining
    obstacles.  Pass the non-template obstacles in ``obstacles`` then.

    Returns the bitmap plus work counters for the server cost model.
    """
    bits: Dict[PyramidCell, int] = {}
    emission_order: List[PyramidCell] = []
    cells_tested = 0
    intersection_tests = 0

    root = PyramidCell(0, 0, 0)
    queue = deque([root])
    while queue:
        cell = queue.popleft()
        rect = pyramid.cell_rect(cell)
        cells_tested += 1

        template_bit = None
        if template is not None:
            template_bit = template.bits.get(cell)

        if template_bit == 0:
            safe = False
        else:
            safe = True
            for obstacle in obstacles:
                intersection_tests += 1
                if rect.interior_intersects(obstacle):
                    safe = False
                    break

        bit = 1 if safe else 0
        bits[cell] = bit
        emission_order.append(cell)
        if bit == 0 and cell.level < pyramid.height:
            queue.extend(pyramid.children(cell))

    bitmap = PyramidBitmap(pyramid, bits, emission_order)
    return bitmap, BitmapBuildStats(cells_tested=cells_tested,
                                    intersection_tests=intersection_tests)


def decode_bitstring(pyramid: Pyramid, bitstring: str) -> PyramidBitmap:
    """Reconstruct a :class:`PyramidBitmap` from its serialized form.

    Inverse of :meth:`PyramidBitmap.to_bitstring`; raises ``ValueError``
    when the string's length does not match the pyramid's split schedule.
    """
    bits: Dict[PyramidCell, int] = {}
    emission_order: List[PyramidCell] = []
    queue = deque([PyramidCell(0, 0, 0)])
    cursor = 0
    while queue:
        cell = queue.popleft()
        if cursor >= len(bitstring):
            raise ValueError("bitstring too short for the pyramid")
        char = bitstring[cursor]
        if char not in "01":
            raise ValueError("bitstring must contain only '0' and '1'")
        bit = int(char)
        cursor += 1
        bits[cell] = bit
        emission_order.append(cell)
        if bit == 0 and cell.level < pyramid.height:
            queue.extend(pyramid.children(cell))
    if cursor != len(bitstring):
        raise ValueError("bitstring longer than the pyramid requires")
    return PyramidBitmap(pyramid, bits, emission_order)


class LazyPyramidBitmap:
    """Semantically identical to :class:`PyramidBitmap`, computed on demand.

    The eager builder enumerates every emitted cell, which is exactly
    what the serialized bitmap requires — but a cell deep inside a large
    alarm region expands into ``fanout**h`` all-zero descendants, making
    eager construction (and the simulation that rebuilds bitmaps on every
    cell crossing) needlessly quadratic in alarm area.  This lazy variant
    answers the three questions the protocol simulation actually asks —
    *is this point safe* (``probe``), *how many bits would the wire
    carry* (``bit_length``) and *how much area is safe* (``coverage``) —
    without materializing the all-zero subtrees:

    * ``probe`` walks root-to-leaf testing the located cell against the
      obstacle list per level (identical verdict and probe count to the
      eager bitmap, asserted by the test suite);
    * ``bit_length`` recurses only into *partially* covered cells; a cell
      fully inside a single obstacle contributes its all-zero subtree in
      closed form (geometric series of the fanout).
    """

    __slots__ = ("pyramid", "obstacles", "_bit_length", "_safe_area")

    def __init__(self, pyramid: Pyramid, obstacles: Sequence[Rect]) -> None:
        self.pyramid = pyramid
        self.obstacles = [obstacle for obstacle in obstacles
                          if obstacle.interior_intersects(pyramid.base)]
        self._bit_length: Optional[int] = None
        self._safe_area: Optional[float] = None

    # ------------------------------------------------------------------
    def probe(self, p: Point) -> Tuple[bool, int]:
        """Same contract as :meth:`PyramidBitmap.probe`."""
        if not self.pyramid.base.contains_point(p):
            return (False, 1)
        relevant = self.obstacles
        probes = 0
        for level in range(self.pyramid.height + 1):
            probes += 1
            rect = self.pyramid.cell_rect(self.pyramid.locate(p, level))
            relevant = [obstacle for obstacle in relevant
                        if rect.interior_intersects(obstacle)]
            if not relevant:
                return (True, probes)
        return (False, probes)

    def bit_length(self) -> int:
        if self._bit_length is None:
            self._compute()
        return self._bit_length  # type: ignore[return-value]

    def to_bitstring(self) -> str:
        """Same serialization as :meth:`PyramidBitmap.to_bitstring`.

        Serialization is the one question that genuinely needs every
        emitted bit, so this delegates to the eager builder; callers on
        the simulation hot path use ``bit_length`` (closed form) and
        only the wire-fidelity checks pay for full materialization.
        """
        bitmap, _ = build_pyramid_bitmap(self.pyramid, self.obstacles)
        return bitmap.to_bitstring()

    def coverage(self) -> float:
        if self._safe_area is None:
            self._compute()
        return self._safe_area / self.pyramid.base.area  # type: ignore

    # ------------------------------------------------------------------
    def _compute(self) -> None:
        fanout = self.pyramid.fanout()

        def all_zero_subtree_bits(level: int) -> int:
            """Bits of a fully-split all-zero subtree below ``level``."""
            depth = self.pyramid.height - level
            # Sum of fanout**d for d in 1..depth (the cell's own bit is
            # counted by the caller).
            return (fanout ** (depth + 1) - fanout) // (fanout - 1)

        def visit(cell: PyramidCell,
                  obstacles: List[Rect]) -> Tuple[int, float]:
            rect = self.pyramid.cell_rect(cell)
            binding = [obstacle for obstacle in obstacles
                       if rect.interior_intersects(obstacle)]
            if not binding:
                return (1, rect.area)
            if cell.level == self.pyramid.height:
                return (1, 0.0)
            if any(obstacle.contains_rect(rect) for obstacle in binding):
                return (1 + all_zero_subtree_bits(cell.level), 0.0)
            bits = 1
            safe_area = 0.0
            for child in self.pyramid.children(cell):
                child_bits, child_area = visit(child, binding)
                bits += child_bits
                safe_area += child_area
            return (bits, safe_area)

        self._bit_length, self._safe_area = visit(PyramidCell(0, 0, 0),
                                                  self.obstacles)


class BitmapSafeRegion(SafeRegion):
    """A pyramid bitmap (eager or lazy) in the role of a client safe region."""

    __slots__ = ("bitmap", "batch_probe")

    def __init__(self, bitmap: Union[PyramidBitmap,
                                     "LazyPyramidBitmap"]) -> None:
        self.bitmap = bitmap
        # Populated on demand by repro.saferegion.packed.probe_for —
        # the batch-mode probe kernel, cached here so packing amortizes
        # over the region's lifetime.  Typed loosely to keep this
        # module import-independent of the numpy-backed kernels.
        self.batch_probe: Optional[object] = None

    def probe(self, p: Point) -> Tuple[bool, int]:
        return self.bitmap.probe(p)

    def size_bits(self) -> int:
        return self.bitmap.bit_length()

    def area(self) -> float:
        return self.bitmap.coverage() * self.bitmap.pyramid.base.area

    def __repr__(self) -> str:
        return ("BitmapSafeRegion(height=%d, bits=%d)"
                % (self.bitmap.pyramid.height, self.bitmap.bit_length()))
