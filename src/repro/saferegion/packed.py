"""Packed bitmap kernels and batched safe-region probes.

Batch-mode counterparts of the scalar safe-region machinery:

* :func:`pack_bitstring` / :func:`unpack_bitstring` / :func:`popcount`
  — the serialized pyramid bitmap as packed uint64 words instead of a
  character string, with bitwise encode/decode and population count.
* :class:`PackedBitmap` — an eager :class:`PyramidBitmap` flattened to
  one dense per-level array, probing a whole population of points per
  interpreter dispatch.
* :class:`LazyBatchProbe` — the batch form of
  :class:`LazyPyramidBitmap.probe`: the progressive obstacle filtering
  becomes a points x obstacles survival matrix narrowed level by level.
* :func:`quadrant_skyline` — the MWPSR candidate generation and
  dominance pruning (steps 1-2 of the paper's Section 3 algorithm)
  over an obstacle batch.

Every kernel reproduces its scalar oracle bit for bit: same verdicts,
same probe counts, same candidate staircases (see
``docs/VECTORIZATION.md`` for the contract and the differential tests
that enforce it).  Like :mod:`repro.geometry.batch` this module
requires numpy and is imported explicitly, keeping the scalar
safe-region package importable without it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union, cast

import numpy as np
from numpy.typing import NDArray

from ..geometry.batch import (INITIAL_SCAN_BLOCK, MAX_SCAN_BLOCK, BoolArray,
                              IntArray, PointBatch, RectBatch, contains,
                              interior_intersects_matrix)
from ..geometry.point import Point
from ..geometry.rect import Rect
from ..index.pyramid import Pyramid
from .bitmap import BitmapSafeRegion, LazyPyramidBitmap, PyramidBitmap

WordArray = NDArray[np.uint64]

#: Dense level-array cell states (:class:`PackedBitmap`).  ``UNSAFE``
#: and ``SAFE`` are emitted bits; ``INHERITED`` marks cells that were
#: never emitted because an ancestor is safe.
UNSAFE = 0
SAFE = 1
INHERITED = 2


# ----------------------------------------------------------------------
# Packed words: encode / decode / popcount
# ----------------------------------------------------------------------
def pack_bitstring(bits: str) -> Tuple[WordArray, int]:
    """Pack a ``'0'``/``'1'`` string into little-endian uint64 words.

    Bit ``i`` of the serialization lands in word ``i // 64`` at bit
    position ``i % 64``.  Returns ``(words, bit_length)``; the final
    word is zero-padded.
    """
    flags = np.frombuffer(bits.encode("ascii"), dtype=np.uint8)
    if flags.size and bool(((flags != ord("0")) & (flags != ord("1"))).any()):
        raise ValueError("bitstring must contain only '0' and '1'")
    packed = np.packbits(flags - ord("0"), bitorder="little")
    padded = np.zeros(-(-packed.size // 8) * 8, dtype=np.uint8)
    padded[:packed.size] = packed
    return padded.view(np.uint64), len(bits)


def unpack_bitstring(words: WordArray, bit_length: int) -> str:
    """Inverse of :func:`pack_bitstring`."""
    if bit_length > int(words.size) * 64:
        raise ValueError("bit_length exceeds the packed words")
    flags = np.unpackbits(words.view(np.uint8),
                          bitorder="little")[:bit_length]
    return (flags + ord("0")).tobytes().decode("ascii")


def popcount(words: WordArray) -> int:
    """Total number of set bits across the packed words."""
    return int(np.bitwise_count(words).sum())


# ----------------------------------------------------------------------
# Shared level walk
# ----------------------------------------------------------------------
def _locate_level(pyramid: Pyramid, xs: NDArray[np.float64],
                  ys: NDArray[np.float64], level: int
                  ) -> Tuple[IntArray, IntArray, int, int]:
    """Vectorized ``Pyramid.locate``: per-point (col, row) at ``level``.

    Mirrors the scalar arithmetic term for term — same subtraction,
    divide, multiply order, truncation toward zero, then clamping —
    and recomputes each level independently (deriving a child from its
    parent via integer division is *not* float-exact near cell edges).
    """
    cols, rows = pyramid.grid_dims(level)
    base = pyramid.base
    col = ((xs - base.min_x) / base.width * cols).astype(np.int64)
    row = ((ys - base.min_y) / base.height * rows).astype(np.int64)
    np.clip(col, 0, cols - 1, out=col)
    np.clip(row, 0, rows - 1, out=row)
    return col, row, cols, rows


def _level_cell_rects(pyramid: Pyramid, col: IntArray, row: IntArray,
                      cols: int, rows: int) -> RectBatch:
    """Vectorized ``Pyramid.cell_rect`` over located cells.

    The ratio form ``base.min + extent * k / n`` is preserved exactly
    so edges agree bit-for-bit with the scalar rectangles.
    """
    base = pyramid.base
    col_f = col.astype(np.float64)
    row_f = row.astype(np.float64)
    return RectBatch(
        base.min_x + base.width * col_f / cols,
        base.min_y + base.height * row_f / rows,
        base.min_x + base.width * (col_f + 1.0) / cols,
        base.min_y + base.height * (row_f + 1.0) / rows)


# ----------------------------------------------------------------------
# Eager bitmaps, packed
# ----------------------------------------------------------------------
class PackedBitmap:
    """An eager :class:`PyramidBitmap` in batch-probe form.

    ``words`` packs the wire serialization; ``levels`` holds one dense
    uint8 array per pyramid level (flat index ``row * cols + col``)
    with :data:`UNSAFE` / :data:`SAFE` / :data:`INHERITED` states, the
    array form of the ``bits.get(cell)`` lookup.
    """

    __slots__ = ("pyramid", "words", "bit_length", "levels")

    def __init__(self, pyramid: Pyramid, words: WordArray,
                 bit_length: int,
                 levels: Sequence[NDArray[np.uint8]]) -> None:
        self.pyramid = pyramid
        self.words = words
        self.bit_length = bit_length
        self.levels = list(levels)

    @classmethod
    def from_bitmap(cls, bitmap: PyramidBitmap) -> "PackedBitmap":
        pyramid = bitmap.pyramid
        words, bit_length = pack_bitstring(bitmap.to_bitstring())
        levels: List[NDArray[np.uint8]] = []
        for level in range(pyramid.height + 1):
            cols, rows = pyramid.grid_dims(level)
            levels.append(np.full(cols * rows, INHERITED, dtype=np.uint8))
        for cell, bit in bitmap.bits.items():
            cols, _rows = pyramid.grid_dims(cell.level)
            levels[cell.level][cell.row * cols + cell.col] = bit
        return cls(pyramid, words, bit_length, levels)

    def to_bitstring(self) -> str:
        """The wire serialization; round-trips ``PyramidBitmap``'s."""
        return unpack_bitstring(self.words, self.bit_length)

    def popcount(self) -> int:
        """Number of 1 bits in the serialization (safe pieces)."""
        return popcount(self.words)

    def probe_batch(self, points: PointBatch
                    ) -> Tuple[BoolArray, IntArray]:
        """Per-point ``(inside, probes)``; :meth:`PyramidBitmap.probe`.

        Points outside the base cell report ``(False, 1)``; the rest
        walk the levels together, each point retiring at its first
        safe (or inherited-safe) cell, unsafe leaves costing
        ``height + 1`` probes — the scalar counts exactly.
        """
        count = len(points)
        inside = np.zeros(count, dtype=np.bool_)
        probes = np.ones(count, dtype=np.int64)
        active = np.flatnonzero(contains(self.pyramid.base, points))
        probes[active] = 0
        for level in range(self.pyramid.height + 1):
            if active.size == 0:
                break
            probes[active] += 1
            col, row, cols, _rows = _locate_level(
                self.pyramid, points.xs[active], points.ys[active], level)
            states = self.levels[level][row * cols + col]
            safe = states > UNSAFE  # SAFE or INHERITED: probe resolves
            inside[active[safe]] = True
            active = active[~safe]
        return inside, probes


# ----------------------------------------------------------------------
# Lazy bitmaps, batched
# ----------------------------------------------------------------------
class LazyBatchProbe:
    """Batch form of :meth:`LazyPyramidBitmap.probe`.

    The scalar probe narrows a per-point obstacle list level by level;
    here that state is a ``points x obstacles`` boolean matrix narrowed
    with one :func:`interior_intersects_matrix` per level.  A pair once
    dead stays dead — exactly the scalar list filtering — and a point
    whose row empties at level ``L`` resolves safe with ``L + 1``
    probes.
    """

    __slots__ = ("pyramid", "obstacles")

    def __init__(self, pyramid: Pyramid,
                 obstacles: Sequence[Rect]) -> None:
        # Callers pass LazyPyramidBitmap.obstacles, already filtered to
        # those intersecting the base cell.
        self.pyramid = pyramid
        self.obstacles = RectBatch.from_rects(list(obstacles))

    def probe_batch(self, points: PointBatch
                    ) -> Tuple[BoolArray, IntArray]:
        count = len(points)
        inside = np.zeros(count, dtype=np.bool_)
        probes = np.ones(count, dtype=np.int64)
        active = np.flatnonzero(contains(self.pyramid.base, points))
        if len(self.obstacles) == 0:
            # Level 0 finds no relevant obstacle: (True, 1).
            inside[active] = True
            return inside, probes
        probes[active] = 0
        alive = np.ones((active.size, len(self.obstacles)),
                        dtype=np.bool_)
        for level in range(self.pyramid.height + 1):
            if active.size == 0:
                break
            probes[active] += 1
            col, row, cols, rows = _locate_level(
                self.pyramid, points.xs[active], points.ys[active], level)
            cells = _level_cell_rects(self.pyramid, col, row, cols, rows)
            alive &= interior_intersects_matrix(cells, self.obstacles)
            resolved = ~alive.any(axis=1)
            inside[active[resolved]] = True
            active = active[~resolved]
            alive = alive[~resolved]
        return inside, probes


BatchProbe = Union[PackedBitmap, LazyBatchProbe]

#: Samples scanned through the scalar oracle before the array kernels
#: engage in :func:`bitmap_silent_run`.  Frequent reporters (GBSR's
#: one-level bitmaps) end most silent runs within a handful of
#: samples, where one array probe's fixed cost dwarfs the whole scalar
#: walk; a run that survives the prefix is long enough to amortize
#: packing and the per-block kernel dispatches.
_SCALAR_PREFIX = 8


def probe_for(region: BitmapSafeRegion) -> BatchProbe:
    """The batch probe for ``region``, built once and cached on it.

    GBSR/PBSR install fresh :class:`BitmapSafeRegion` instances per
    cell entry, and one region is probed for every subsequent sample
    in the cell — caching on the region amortizes packing across the
    whole residence.
    """
    cached = region.batch_probe
    if cached is None:
        bitmap = region.bitmap
        if isinstance(bitmap, PyramidBitmap):
            cached = PackedBitmap.from_bitmap(bitmap)
        else:
            cached = LazyBatchProbe(bitmap.pyramid, bitmap.obstacles)
        region.batch_probe = cached
    return cast(BatchProbe, cached)


def bitmap_silent_run(region: BitmapSafeRegion, cell: Rect,
                      points: PointBatch, start: int) -> Tuple[int, int]:
    """Scan the silent run of a bitmap-strategy client.

    Returns ``(stop, ops)``: ``stop`` is the first index at/after
    ``start`` that is *not* silent — outside ``cell`` (a region exit)
    or probing unsafe (a report) — or ``len(points)`` when the trace
    ends silent.  ``ops`` is the total probe count over the silent
    prefix ``[start, stop)``, matching the scalar per-sample charges
    exactly; the non-silent sample at ``stop`` is left for the scalar
    path to handle (and charge).
    """
    length = len(points)
    index = start
    ops = 0
    # Scalar prefix: probe the first few samples through the region's
    # own (scalar) bitmap walk.  Short runs return from here without
    # ever touching numpy — or packing the bitmap at all.
    prefix_stop = min(index + _SCALAR_PREFIX, length)
    while index < prefix_stop:
        point = Point(float(points.xs[index]), float(points.ys[index]))
        if not cell.contains_point(point):
            return index, ops
        inside, probes = region.probe(point)
        if not inside:
            return index, ops
        ops += probes
        index += 1
    if index == length:
        return length, ops
    probe = probe_for(region)
    block = INITIAL_SCAN_BLOCK
    while index < length:
        stop = min(index + block, length)
        view = points.slice(index, stop)
        in_cell = contains(cell, view)
        if bool(in_cell.all()):
            limit = stop - index
        else:
            limit = int(np.argmin(in_cell))
        if limit == 0:
            return index, ops
        inside, probes = probe.probe_batch(view.slice(0, limit))
        if not bool(inside.all()):
            silent = int(np.argmin(inside))
            ops += int(probes[:silent].sum())
            return index + silent, ops
        ops += int(probes.sum())
        if limit < stop - index:
            return index + limit, ops
        index = stop
        block = min(block * 2, MAX_SCAN_BLOCK)
    return length, ops


# ----------------------------------------------------------------------
# MWPSR candidate pruning
# ----------------------------------------------------------------------
def quadrant_skyline(origin: Point, obstacles: RectBatch,
                     signs: Tuple[int, int], u_max: float,
                     v_max: float) -> List[Tuple[float, float]]:
    """Candidate generation + dominance pruning for one MWPSR quadrant.

    The batch form of steps 1-2 of ``MWPSRComputer``: per-obstacle
    local offsets via the sign-dependent subtractions, the same
    binds-in-quadrant filters, then the dominance staircase.  The
    scalar path sorts the deduplicated candidates and keeps strict
    ``v`` decreases; a running ``minimum.accumulate`` implements the
    identical scan (duplicates are harmless — a duplicate's ``v``
    never strictly undercuts its twin).  Returns the skyline as plain
    float tuples, bit-compatible with the scalar lists.
    """
    sx, sy = signs
    if sx > 0:
        u_lo = obstacles.min_xs - origin.x
        u_hi = obstacles.max_xs - origin.x
    else:
        u_lo = origin.x - obstacles.max_xs
        u_hi = origin.x - obstacles.min_xs
    if sy > 0:
        v_lo = obstacles.min_ys - origin.y
        v_hi = obstacles.max_ys - origin.y
    else:
        v_lo = origin.y - obstacles.max_ys
        v_hi = origin.y - obstacles.min_ys
    binds = ~((u_hi <= 0.0) | (v_hi <= 0.0))
    cand_u = np.maximum(u_lo, 0.0)
    cand_v = np.maximum(v_lo, 0.0)
    binds &= ~((cand_u >= u_max) | (cand_v >= v_max))
    cand_u = cand_u[binds]
    cand_v = cand_v[binds]
    if cand_u.size == 0:
        return []
    order = np.lexsort((cand_v, cand_u))
    cand_u = cand_u[order]
    cand_v = cand_v[order]
    keep = np.empty(cand_u.size, dtype=np.bool_)
    keep[0] = True
    if cand_u.size > 1:
        best_v = np.minimum.accumulate(cand_v)
        keep[1:] = cand_v[1:] < best_v[:-1]
    return list(zip(cand_u[keep].tolist(), cand_v[keep].tolist()))
