"""Maximum Weighted Perimeter Rectangular Safe Region (paper Section 3).

Given a subscriber position inside its current grid cell and the alarm
regions intersecting that cell, compute a rectangle that

* contains the subscriber,
* stays within the grid cell,
* has an interior disjoint from every alarm region's interior, and
* (heuristically) maximizes the *weighted perimeter*, where each side is
  weighted by the steady-motion probability of the subscriber moving
  toward it.

The algorithm follows the paper's four steps built on dynamic skylines:

1. **Candidate points** — partition the cell into four quadrants around
   the subscriber; in each quadrant, the corner of every intersecting
   alarm region nearest the origin (clamped to the quadrant) is a
   candidate constraint; fully dominated candidates are pruned.
2. **Tension points** — the maximal "staircase steps" implied by the
   candidate skyline; each pairs a candidate's offset along one axis with
   the previous candidate's offset along the other.
3. **Component rectangles** — each tension point spans a maximal
   rectangle for its quadrant.
4. **Greedy selection** — quadrants are processed in decreasing order of
   motion-probability mass; in each, the component rectangle maximizing
   the weighted perimeter of the running intersection is chosen.

Handled explicitly (the two failure modes of Hu et al. [10] that the
paper calls out): *overlapping* alarm regions — candidates from each
region are independent constraints, overlap is harmless — and alarm
regions *intersecting the quadrant axes* — the clamped candidate lands on
the axis and correctly caps the perpendicular extent.

When the subscriber is strictly inside one or more alarm regions, the
safe region is the intersection of those regions clipped to the cell
(definition (ii) in Section 2.1); within it no *other* alarm can fire.

An exhaustive optimizer (``exhaustive=True``) enumerates every
combination of component rectangles — the quartic-time optimum the paper
contrasts with its greedy — and is used by the ablation benchmark.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from ..geometry import Point, Rect, fzero, normalize_angle

if TYPE_CHECKING:  # numpy-backed batch kernels; imported lazily below
    from ..geometry.batch import RectBatch
from ..mobility.motion import MotionModel, UniformMotionModel
from .base import RectangularSafeRegion, region_is_safe

TWO_PI = 2.0 * math.pi

#: Obstacle count below which ``batched`` computes fall back to the
#: scalar skyline: four quadrant kernels cost a fixed ~30us of array
#: overhead, which the O(n) scalar scan undercuts on sparse cells.
_BATCH_MIN_OBSTACLES = 64

# Quadrant sign conventions: local coordinates (u, v) = (sx*(x-ox), sy*(y-oy))
# map each quadrant onto the (+, +) orthant.  Order: I, II, III, IV.
_QUADRANT_SIGNS: Tuple[Tuple[int, int], ...] = ((1, 1), (-1, 1), (-1, -1),
                                                (1, -1))
# World-frame angular sector of each quadrant (CCW [start, end]).
_QUADRANT_SECTORS: Tuple[Tuple[float, float], ...] = (
    (0.0, math.pi / 2.0),
    (math.pi / 2.0, math.pi),
    (-math.pi, -math.pi / 2.0),
    (-math.pi / 2.0, 0.0),
)


@dataclass(frozen=True)
class MWPSRResult:
    """Outcome of a safe-region computation."""

    rect: Rect
    inside_alarm: bool          # definition (ii) applied
    quadrant_order: Tuple[int, ...] = ()
    weighted_perimeter: float = 0.0

    def to_safe_region(self) -> RectangularSafeRegion:
        return RectangularSafeRegion(self.rect)


class MWPSRComputer:
    """Computes maximum weighted perimeter rectangular safe regions.

    ``model`` weights the perimeter; pass :class:`UniformMotionModel`
    for the paper's *non-weighted* variant.  ``exhaustive=True`` replaces
    the greedy quadrant processing with full enumeration of component-
    rectangle combinations (the quartic optimum).
    """

    def __init__(self, model: Optional[MotionModel] = None,
                 exhaustive: bool = False,
                 refine_rounds: int = 2,
                 area_weight: float = 8.0,
                 auto_threshold: int = 256,
                 validate: bool = False) -> None:
        """Configure the computer.

        ``exhaustive=True`` forces full enumeration regardless of size.
        Otherwise the selection is adaptive: cells whose component-
        rectangle combination count is at most ``auto_threshold`` are
        solved exactly (at typical per-cell alarm counts the quartic
        enumeration is small *and* cheaper than iterated greedy
        refinement); denser cells — the case the paper's greedy exists
        for — fall back to the greedy with ``refine_rounds`` rounds of
        coordinate descent.  ``auto_threshold=0`` forces the greedy.
        """
        if refine_rounds < 0:
            raise ValueError("refine_rounds must be non-negative")
        if area_weight < 0:
            raise ValueError("area_weight must be non-negative")
        if auto_threshold < 0:
            raise ValueError("auto_threshold must be non-negative")
        self.model = model if model is not None else UniformMotionModel()
        self.exhaustive = exhaustive
        self.refine_rounds = refine_rounds
        self.area_weight = area_weight
        self.auto_threshold = auto_threshold
        self.validate = validate

    # ------------------------------------------------------------------
    def compute(self, position: Point, heading: float, cell: Rect,
                obstacles: Sequence[Rect],
                batched: bool = False) -> MWPSRResult:
        """Safe region for a subscriber at ``position`` within ``cell``.

        ``obstacles`` are the regions of the relevant (unfired) alarms
        interior-intersecting the cell.  ``heading`` is the subscriber's
        current direction of travel in world radians.  ``batched``
        routes the candidate generation and dominance pruning (steps
        1-2) through the vectorized kernel in
        :mod:`repro.saferegion.packed` — bit-identical output, so the
        flag only changes speed, never the region.
        """
        if not cell.contains_point(position):
            raise ValueError("subscriber position outside its grid cell")

        containing = [obstacle for obstacle in obstacles
                      if obstacle.interior_contains_point(position)]
        if containing:
            region = cell
            for obstacle in containing:
                clipped = region.intersection(obstacle)
                assert clipped is not None  # all contain the position
                region = clipped
            return MWPSRResult(rect=region, inside_alarm=True)

        if not obstacles:
            return MWPSRResult(rect=cell, inside_alarm=False,
                               weighted_perimeter=self._weighted_perimeter(
                                   cell, position, heading))

        obstacle_batch: Optional["RectBatch"] = None
        if batched and len(obstacles) >= _BATCH_MIN_OBSTACLES:
            # Lazy import: numpy enters only when batch mode is on.
            # Below the threshold the scalar skyline wins — per-call
            # array overhead beats the O(n) loop on small inputs — and
            # both paths are bit-identical, so the gate is pure speed.
            from ..geometry.batch import RectBatch
            obstacle_batch = RectBatch.from_rects(list(obstacles))
        tension_lists = [
            self._quadrant_tension_points(position, cell, obstacles, signs,
                                          obstacle_batch)
            for signs in _QUADRANT_SIGNS
        ]
        combinations = 1
        for tension_list in tension_lists:
            combinations *= len(tension_list)
        if self.exhaustive or combinations <= self.auto_threshold:
            rect, perimeter, order = self._select_exhaustive(
                position, heading, tension_lists, obstacles)
        else:
            rect, perimeter, order = self._select_greedy(
                position, heading, cell, tension_lists, obstacles)

        if self.validate and not region_is_safe(rect, obstacles):
            raise AssertionError(
                "safe-region invariant violated: %r intersects an alarm"
                % (rect,))
        return MWPSRResult(rect=rect, inside_alarm=False,
                           quadrant_order=order,
                           weighted_perimeter=perimeter)

    # ------------------------------------------------------------------
    # Steps 1-3: candidates, skyline, tension points (per quadrant)
    # ------------------------------------------------------------------
    def _quadrant_tension_points(self, origin: Point, cell: Rect,
                                 obstacles: Iterable[Rect],
                                 signs: Tuple[int, int],
                                 obstacle_batch: Optional["RectBatch"] = None
                                 ) -> List[Tuple[float, float]]:
        """Tension points of one quadrant in local ``(u, v)`` coordinates.

        Every returned point ``(u, v)`` spans a component rectangle
        ``[0, u] x [0, v]`` whose interior avoids all obstacles within
        the quadrant, and the list covers all maximal such rectangles.
        With ``obstacle_batch`` (the same obstacles in SoA form) the
        candidate generation and pruning run vectorized; the skyline is
        bit-identical either way.
        """
        sx, sy = signs
        u_max = (cell.max_x - origin.x) if sx > 0 else (origin.x - cell.min_x)
        v_max = (cell.max_y - origin.y) if sy > 0 else (origin.y - cell.min_y)

        if obstacle_batch is not None:
            from .packed import quadrant_skyline
            skyline = quadrant_skyline(origin, obstacle_batch, signs,
                                       u_max, v_max)
        else:
            candidates: List[Tuple[float, float]] = []
            for obstacle in obstacles:
                if sx > 0:
                    u_lo = obstacle.min_x - origin.x
                    u_hi = obstacle.max_x - origin.x
                else:
                    u_lo = origin.x - obstacle.max_x
                    u_hi = origin.x - obstacle.min_x
                if sy > 0:
                    v_lo = obstacle.min_y - origin.y
                    v_hi = obstacle.max_y - origin.y
                else:
                    v_lo = origin.y - obstacle.max_y
                    v_hi = origin.y - obstacle.min_y
                # The obstacle constrains this quadrant only when its
                # interior reaches into the open quadrant and binds
                # inside the cell.
                if u_hi <= 0.0 or v_hi <= 0.0:
                    continue
                candidate = (max(u_lo, 0.0), max(v_lo, 0.0))
                if candidate[0] >= u_max or candidate[1] >= v_max:
                    continue
                candidates.append(candidate)
            skyline = self._skyline(candidates)
        if not skyline:
            return [(u_max, v_max)]

        tension: List[Tuple[float, float]] = []
        tension.append((skyline[0][0], v_max))
        for index in range(1, len(skyline)):
            tension.append((skyline[index][0], skyline[index - 1][1]))
        tension.append((u_max, skyline[-1][1]))
        return tension

    @staticmethod
    def _skyline(candidates: List[Tuple[float, float]]
                 ) -> List[Tuple[float, float]]:
        """Prune fully dominated candidates, keeping the binding staircase.

        A candidate is redundant when another candidate is at most as far
        along *both* axes (the other is the stricter constraint).  The
        result has strictly increasing ``u`` and strictly decreasing
        ``v``.
        """
        ordered = sorted(set(candidates))
        skyline: List[Tuple[float, float]] = []
        best_v = math.inf
        for u, v in ordered:
            if v < best_v:
                skyline.append((u, v))
                best_v = v
        return skyline

    # ------------------------------------------------------------------
    # Step 4: selection
    # ------------------------------------------------------------------
    @staticmethod
    def _penetrates_obstacle(rect: Rect, obstacles: Sequence[Rect],
                             tolerance: float = 1e-9) -> bool:
        """Point-set check: does any point of ``rect`` lie strictly
        inside an obstacle?

        Interior-disjointness (:func:`region_is_safe`) is vacuous for a
        degenerate rectangle, but the client suppresses reporting for
        every point the *closed* rectangle contains — so a zero-width
        sliver threading an alarm's interior (possible when the
        subscriber sits exactly on the alarm's boundary) would silence
        the alarm.  Non-degenerate rectangles whose interiors avoid the
        obstacles can never penetrate, so this only ever rejects
        slivers.
        """
        for obstacle in obstacles:
            if (rect.max_x > obstacle.min_x + tolerance
                    and rect.min_x < obstacle.max_x - tolerance
                    and rect.max_y > obstacle.min_y + tolerance
                    and rect.min_y < obstacle.max_y - tolerance):
                return True
        return False

    def _quadrant_masses(self, heading: float) -> List[float]:
        return [self.model.world_sector_mass(heading, start, end)
                for start, end in _QUADRANT_SECTORS]

    def _select_greedy(self, origin: Point, heading: float, cell: Rect,
                       tension_lists: Sequence[List[Tuple[float, float]]],
                       obstacles: Sequence[Rect]
                       ) -> Tuple[Rect, float, Tuple[int, ...]]:
        """The paper's greedy, hardened with coordinate-descent refinement.

        First pass (the paper's Step 4): quadrants are processed in
        decreasing order of motion-probability mass; in each, the
        component rectangle maximizing the selection score of the running
        intersection is chosen, with the still-unprocessed quadrants
        extending to the cell boundary.

        The first pass commits each quadrant blind to how *later*
        quadrants cap the extents it shares with them, which can strand
        the rectangle at a degenerate choice (e.g. a zero-width sliver
        when an alarm straddles a quadrant axis).  ``refine_rounds``
        passes of coordinate descent fix this: each quadrant's choice is
        re-optimized given the other three commitments, monotonically
        improving the score.  The refined result still uses only the
        paper's component rectangles — it explores the same search space
        as the quartic exhaustive optimum, greedily.
        """
        masses = self._quadrant_masses(heading)
        order = tuple(sorted(range(4), key=lambda q: -masses[q]))
        choices: List[Optional[Tuple[float, float]]] = [None] * 4
        # Refinement revisits many identical extent combinations; one
        # memo per computation caps the cost at distinct rectangles.
        score_memo: dict = {}

        def score_current() -> float:
            rect = self._choices_rect(origin, choices)
            key = (rect.min_x, rect.min_y, rect.max_x, rect.max_y)
            cached = score_memo.get(key)
            if cached is None:
                if self._penetrates_obstacle(rect, obstacles):
                    cached = -math.inf
                else:
                    cached = self._score(rect, origin, heading)
                score_memo[key] = cached
            return cached

        def trial_score(quadrant: int, option: Tuple[float, float]) -> float:
            saved = choices[quadrant]
            choices[quadrant] = option
            score = score_current()
            choices[quadrant] = saved
            return score

        def best_choice(quadrant: int) -> Tuple[float, float]:
            """Best option for one quadrant, others fixed.

            The incumbent choice (when set) wins ties: drifting between
            equal-score options would let the descent wander away from
            states that other quadrants' moves can improve.
            """
            incumbent = choices[quadrant]
            if incumbent is not None:
                best = incumbent
                best_score = score_current()
            else:
                best = tension_lists[quadrant][0]
                best_score = -math.inf
            for option in tension_lists[quadrant]:
                score = trial_score(quadrant, option)
                if score > best_score:
                    best_score = score
                    best = option
            return best

        def best_pair(quad_a: int, quad_b: int) -> bool:
            """Jointly re-optimize two quadrants; True when changed.

            Adjacent quadrants share one extent through a min(), so a
            deadlock where both pin the same extent cannot be escaped by
            single-quadrant moves; the pairwise move can.  Skipped for
            pathologically large option products.
            """
            options_a = tension_lists[quad_a]
            options_b = tension_lists[quad_b]
            if len(options_a) * len(options_b) > 400:
                return False
            saved_a = choices[quad_a]
            saved_b = choices[quad_b]
            best_combo = (saved_a, saved_b)
            best_score = score_current()
            for option_a in options_a:
                choices[quad_a] = option_a
                for option_b in options_b:
                    choices[quad_b] = option_b
                    score = score_current()
                    if score > best_score:
                        best_score = score
                        best_combo = (option_a, option_b)
            choices[quad_a], choices[quad_b] = best_combo
            return best_combo != (saved_a, saved_b)

        for quadrant in order:
            choices[quadrant] = best_choice(quadrant)
        refinement_pairs = ((0, 3), (0, 1), (1, 2), (2, 3), (0, 2), (1, 3))
        for _ in range(self.refine_rounds):
            changed = False
            for quadrant in order:
                refined = best_choice(quadrant)
                if refined != choices[quadrant]:
                    choices[quadrant] = refined
                    changed = True
            if not changed:
                # Single moves have stalled; pairwise moves are what can
                # break a min()-coupled deadlock.  Running them only here
                # keeps the quadratic scans off the common path.
                for quad_a, quad_b in refinement_pairs:
                    if best_pair(quad_a, quad_b):
                        changed = True
            if not changed:
                break

        rect = self._choices_rect(origin, choices)
        if self._penetrates_obstacle(rect, obstacles):
            # Every reachable combination threads an alarm (subscriber
            # pinned on an alarm boundary in a degenerate corner of the
            # cell): fall back to the point region, which forces a
            # report on the next sample instead of silencing the alarm.
            rect = Rect(origin.x, origin.y, origin.x, origin.y)
        return rect, self._weighted_perimeter(rect, origin, heading), order

    def _select_exhaustive(self, origin: Point, heading: float,
                           tension_lists: Sequence[List[Tuple[float, float]]],
                           obstacles: Sequence[Rect]
                           ) -> Tuple[Rect, float, Tuple[int, ...]]:
        """Quartic-time optimum: every component-rectangle combination."""
        best_score = -math.inf
        best_rect: Optional[Rect] = None
        for combo in itertools.product(*tension_lists):
            right = min(combo[0][0], combo[3][0])
            top = min(combo[0][1], combo[1][1])
            left = min(combo[1][0], combo[2][0])
            bottom = min(combo[2][1], combo[3][1])
            rect = self._extents_rect(origin, right, top, left, bottom)
            if self._penetrates_obstacle(rect, obstacles):
                continue
            score = self._score(rect, origin, heading)
            if score > best_score:
                best_score = score
                best_rect = rect
        if best_rect is None:
            # See _select_greedy: all combinations penetrate an alarm.
            best_rect = Rect(origin.x, origin.y, origin.x, origin.y)
        return (best_rect,
                self._weighted_perimeter(best_rect, origin, heading),
                (0, 1, 2, 3))

    def _score(self, rect: Rect, origin: Point, heading: float) -> float:
        """Selection score: weighted perimeter plus area regularization.

        The paper's literal objective — the weighted perimeter alone —
        admits degenerate maximizers: a zero-width sliver spanning the
        cell outscores a fat rectangle of the same half-perimeter but
        holds the subscriber for no time at all.  The published text
        defers the full algorithm to an unavailable technical report, so
        we add the standard regularization: ``area_weight * sqrt(area)``,
        which is perimeter-dimensioned, leaves the ranking of similarly
        fat rectangles to the weighted perimeter, and vetoes slivers.
        Set ``area_weight=0`` for the paper's literal objective.
        """
        score = self._weighted_perimeter(rect, origin, heading)
        if self.area_weight > 0.0:
            score += self.area_weight * math.sqrt(rect.area)
        return score

    @staticmethod
    def _choices_rect(origin: Point,
                      choices: Sequence[Optional[Tuple[float, float]]]
                      ) -> Rect:
        """Intersection rectangle of the committed component choices.

        Each extent is the minimum over its two *committed* contributors;
        an extent neither of whose quadrants has committed yet is zero.
        Crediting uncommitted quadrants with their cell-boundary room
        instead would reward a choice for phantom extents that later
        quadrants then destroy — the refinement rounds grow the rectangle
        back out from this conservative base.
        """
        q1, q2, q3, q4 = choices

        def extent(a: Optional[Tuple[float, float]],
                   b: Optional[Tuple[float, float]], index: int) -> float:
            if a is not None and b is not None:
                return min(a[index], b[index])
            if a is not None:
                return a[index]
            if b is not None:
                return b[index]
            return 0.0

        right = extent(q1, q4, 0)
        top = extent(q1, q2, 1)
        left = extent(q2, q3, 0)
        bottom = extent(q3, q4, 1)
        return Rect(origin.x - left, origin.y - bottom,
                    origin.x + right, origin.y + top)

    @staticmethod
    def _extents_rect(origin: Point, right: float, top: float, left: float,
                      bottom: float) -> Rect:
        return Rect(origin.x - left, origin.y - bottom,
                    origin.x + right, origin.y + top)

    # ------------------------------------------------------------------
    # Weighted perimeter
    # ------------------------------------------------------------------
    def _weighted_perimeter(self, rect: Rect, origin: Point,
                            heading: float) -> float:
        """Perimeter with each side scaled by its relative motion density.

        Each side subtends an angular sector as seen from the subscriber;
        its weight is the motion-probability mass of that sector divided
        by the sector's uniform share, so a uniform model yields exactly
        the geometric perimeter (the paper's non-weighted variant) and a
        steady-motion model up-weights the sides ahead of the subscriber.

        Implementation note: the four sector masses share their corner
        angles, so each corner contributes one cumulative-distribution
        lookup instead of one integration per sector — this is the
        hottest function of the whole simulation.
        """
        if not rect.contains_point(origin):
            # Selection never produces this, but guard the public math.
            raise ValueError("origin must lie within the rectangle")
        dx_max = rect.max_x - origin.x
        dx_min = rect.min_x - origin.x
        dy_max = rect.max_y - origin.y
        dy_min = rect.min_y - origin.y
        angle_br = math.atan2(dy_min, dx_max)
        angle_tr = math.atan2(dy_max, dx_max)
        angle_tl = math.atan2(dy_max, dx_min)
        angle_bl = math.atan2(dy_min, dx_min)
        model = self.model
        cum_br = model.cumulative(angle_br - heading)
        cum_tr = model.cumulative(angle_tr - heading)
        cum_tl = model.cumulative(angle_tl - heading)
        cum_bl = model.cumulative(angle_bl - heading)
        sides = (
            (rect.height, angle_br, angle_tr, cum_br, cum_tr),   # right
            (rect.width, angle_tr, angle_tl, cum_tr, cum_tl),    # top
            (rect.height, angle_tl, angle_bl, cum_tl, cum_bl),   # left
            (rect.width, angle_bl, angle_br, cum_bl, cum_br),    # bottom
        )
        total = 0.0
        for length, start, end, cum_start, cum_end in sides:
            if fzero(length):
                continue
            span = (end - start) % TWO_PI
            if span < 1e-12:
                # Degenerate sector (origin pinned on this side): the
                # mass/span ratio converges to pdf(direction) * 2*pi.
                mid = normalize_angle(start - heading)
                density_ratio = self.model.pdf(mid) * TWO_PI
            else:
                mass = cum_end - cum_start
                if mass < 0.0:
                    mass += 1.0  # the CCW sector wraps through +/- pi
                density_ratio = mass / (span / TWO_PI)
            total += length * density_ratio
        return total
