"""Pyramid Bitmap Encoded Safe Region (paper Section 4.2).

PBSR refines GBSR by splitting only the *unsafe* (bit 0) cells, level by
level, up to a client-chosen pyramid height ``h``.  The height trades
bitmap size against coverage (Proposition 3): powerful clients request
tall pyramids and get finer safe regions; weak clients request short
ones.

Server-side optimization (Section 4.2, last paragraph): the safe-region
structure induced by *public* alarms is identical for every user, so the
computer shares it across users — a per-base-cell cache keyed by the set
of public alarms that are still pending for the user in that cell.  A
user with no private/shared alarms in the cell (the common case, since
public alarms dominate per-user alarm density) reuses the cached region
outright.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..geometry import Rect
from ..index import DEFAULT_FAN, Pyramid
from .bitmap import BitmapSafeRegion, LazyPyramidBitmap


class PBSRComputer:
    """Builds pyramid bitmap safe regions of a configurable height."""

    def __init__(self, height: int = 5, fan: int = DEFAULT_FAN,
                 share_public: bool = True) -> None:
        if height < 1:
            raise ValueError("height must be at least 1")
        self.height = height
        self.fan = fan
        self.share_public = share_public
        # cell key -> (public obstacle tuple, shared region); hit only when
        # the user's pending public set in the cell matches exactly.
        self._public_cache: Dict[Tuple[float, float],
                                 Tuple[Tuple[Rect, ...],
                                       BitmapSafeRegion]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def compute(self, cell: Rect, public_obstacles: Sequence[Rect],
                personal_obstacles: Sequence[Rect] = ()
                ) -> BitmapSafeRegion:
        """Safe region of ``cell``.

        ``public_obstacles`` are the user's pending public alarm regions
        in the cell; ``personal_obstacles`` the pending private/shared
        ones.  The split exists purely to enable the shared-public cache;
        callers indifferent to the optimization may pass everything as
        public.
        """
        public_key = tuple(sorted(
            (r.min_x, r.min_y, r.max_x, r.max_y) for r in public_obstacles))
        if (self.share_public and not personal_obstacles):
            cache_key = (cell.min_x, cell.min_y)
            cached = self._public_cache.get(cache_key)
            if cached is not None and cached[0] == public_key:
                self.cache_hits += 1
                return cached[1]
            self.cache_misses += 1
            region = self._build(cell, list(public_obstacles))
            self._public_cache[cache_key] = (public_key, region)
            return region
        return self._build(cell,
                           list(public_obstacles) + list(personal_obstacles))

    def _build(self, cell: Rect,
               obstacles: List[Rect]) -> BitmapSafeRegion:
        pyramid = Pyramid(cell, fan_cols=self.fan, fan_rows=self.fan,
                          height=self.height)
        return BitmapSafeRegion(LazyPyramidBitmap(pyramid, obstacles))

    def clear_cache(self) -> None:
        self._public_cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0
