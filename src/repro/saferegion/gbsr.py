"""Grid Bitmap Encoded Safe Region (paper Section 4.1).

GBSR represents the safe region of a base grid cell with a single-level
``G x G`` bitmap: one bit for the whole cell plus one bit per sub-cell.
It is the degenerate pyramid of height 1 — the paper's experiments treat
"h = 1" as the GBSR configuration — and exists mostly to demonstrate the
accuracy/size dilemma that motivates PBSR: a coarse grid wastes safe
area (Fig. 3(b)), a fine grid wastes bits (Fig. 3(c)).
"""

from __future__ import annotations

from typing import Sequence

from ..geometry import Rect
from ..index import Pyramid
from .bitmap import BitmapSafeRegion, LazyPyramidBitmap


class GBSRComputer:
    """Builds single-level grid bitmap safe regions.

    ``resolution`` is the grid arity ``G`` (the paper's Fig. 3 shows 3x3
    and 9x9 variants).
    """

    def __init__(self, resolution: int = 3) -> None:
        if resolution < 2:
            raise ValueError("resolution must be at least 2")
        self.resolution = resolution

    def compute(self, cell: Rect, public_obstacles: Sequence[Rect],
                personal_obstacles: Sequence[Rect] = ()
                ) -> BitmapSafeRegion:
        """Safe region of ``cell`` given the relevant alarm regions.

        The public/personal split mirrors :class:`PBSRComputer`'s
        signature so strategies can use either computer; GBSR treats all
        obstacles alike (no sharing optimization at a single level).
        """
        pyramid = Pyramid(cell, fan_cols=self.resolution,
                          fan_rows=self.resolution, height=1)
        obstacles = list(public_obstacles) + list(personal_obstacles)
        return BitmapSafeRegion(LazyPyramidBitmap(pyramid, obstacles))
