"""Safe-region computation: MWPSR, GBSR and PBSR (the paper's Sections 3-4)."""

from .base import (FLOAT_BITS, RectangularSafeRegion, SafeRegion,
                   region_is_safe)
from .bitmap import (BitmapBuildStats, BitmapSafeRegion, LazyPyramidBitmap,
                     PyramidBitmap, build_pyramid_bitmap, decode_bitstring)
from .gbsr import GBSRComputer
from .hu_baseline import HuBaselineComputer
from .mwpsr import MWPSRComputer, MWPSRResult
from .pbsr import PBSRComputer

# imported last: ClientMonitor pulls in the wire codec, which needs the
# bitmap types above
from .containment import ClientMonitor  # noqa: E402

__all__ = [
    "BitmapBuildStats",
    "BitmapSafeRegion",
    "ClientMonitor",
    "FLOAT_BITS",
    "GBSRComputer",
    "HuBaselineComputer",
    "LazyPyramidBitmap",
    "MWPSRComputer",
    "MWPSRResult",
    "PBSRComputer",
    "PyramidBitmap",
    "RectangularSafeRegion",
    "SafeRegion",
    "build_pyramid_bitmap",
    "decode_bitstring",
    "region_is_safe",
]
