"""Cell-keyed memo cache for bitmap (GBSR/PBSR) safe regions.

The paper's §4 observation: a bitmap safe region depends only on the
grid cell and the obstacle set carved out of it — not on which subscriber
asked.  On a server with many users per cell, one computation can
therefore serve every co-located subscriber whose *pending* alarm set
over that cell is the same.  This cache memoizes computed bitmap regions
under the key ``(cell, public alarm ids, personal alarm ids)``:

* the **cell id** scopes the geometry;
* the **alarm-id fingerprints** capture everything the region depends
  on.  Per-user divergence — a subscriber who already fired one of the
  cell's alarms, or who owns private alarms there — lands on a different
  fingerprint and misses, so sharing never leaks another user's region.

Consistency with alarm churn mirrors
:class:`~repro.alarms.cellcache.CellAlarmCache`: the cache subscribes to
the registry's mutation hooks and drops exactly the cells an install /
removal / relocation touches.  Hit/miss totals surface as ``Metrics``
fields and ``MetricsRegistry`` counters so ``repro report`` reconciles
them like every other instrument.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..alarms import AlarmRegistry, SpatialAlarm
from ..geometry import Rect
from ..index import CellId, GridOverlay
from .bitmap import BitmapSafeRegion

#: (cell, sorted public alarm ids, sorted personal alarm ids)
CacheKey = Tuple[CellId, Tuple[int, ...], Tuple[int, ...]]


def fingerprint(cell: CellId, public: Iterable[SpatialAlarm],
                personal: Iterable[SpatialAlarm]) -> CacheKey:
    """The memo key of a bitmap computation's full input."""
    return (cell,
            tuple(sorted(alarm.alarm_id for alarm in public)),
            tuple(sorted(alarm.alarm_id for alarm in personal)))


class SafeRegionCache:
    """Memoized bitmap safe regions over a fixed grid.

    Plug into the server's bitmap path by consulting :meth:`lookup`
    before computing and calling :meth:`store` after; the regions
    themselves are immutable (the bitmap types expose only probes), so
    a cached region is shared by reference, never copied.
    """

    def __init__(self, registry: AlarmRegistry, grid: GridOverlay) -> None:
        self.registry = registry
        self.grid = grid
        self._regions: Dict[CacheKey, BitmapSafeRegion] = {}
        self.hits = 0
        self.misses = 0
        registry.add_listener(self._on_mutation)

    # ------------------------------------------------------------------
    def lookup(self, key: CacheKey) -> Optional[BitmapSafeRegion]:
        """The memoized region for ``key``, counting the hit or miss."""
        region = self._regions.get(key)
        if region is None:
            self.misses += 1
        else:
            self.hits += 1
        return region

    def store(self, key: CacheKey, region: BitmapSafeRegion) -> None:
        """Memoize a freshly computed region under its input key."""
        self._regions[key] = region

    # ------------------------------------------------------------------
    def _on_mutation(self, alarm_id: int, old_region: Optional[Rect],
                     new_region: Optional[Rect]) -> None:
        """Registry hook: drop the cells an alarm change touches."""
        stale = set()
        for region in (old_region, new_region):
            if region is None:
                continue
            stale.update(self.grid.cells_intersecting(region))
        if stale:
            self._regions = {key: value
                             for key, value in self._regions.items()
                             if key[0] not in stale}

    def invalidate_all(self) -> None:
        self._regions.clear()

    def detach(self) -> None:
        """Unsubscribe from the registry (end-of-run cleanup)."""
        self.registry.remove_listener(self._on_mutation)

    @property
    def cached_regions(self) -> int:
        return len(self._regions)
