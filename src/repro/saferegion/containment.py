"""Client-side containment monitoring over the encoded wire format.

The simulation engine keeps client state as Python objects for speed;
this module is the *wire-true* client: a :class:`ClientMonitor` consumes
the actual encoded downlink bytes (see :mod:`repro.engine.codec`),
decodes them the way a real device would — the paper's "safe region
containment detection algorithm which performs pyramid bitmap decoding"
(Section 4.2) — and monitors position fixes against the decoded
structure.  An integration test replays a simulation through both paths
and asserts they report at identical fixes, which pins the in-memory
fast path to the byte-level protocol.
"""

from __future__ import annotations

from typing import Optional

from ..engine.codec import (MessageType, decode_bitmap_region,
                            decode_rect_region, decode_safe_period,
                            peek_type)
from ..geometry import Point, Rect
from ..index import Pyramid
from .base import RectangularSafeRegion, SafeRegion
from .bitmap import BitmapSafeRegion


class ClientMonitor:
    """A mobile device's view of the protocol: bytes in, decisions out.

    The monitor understands the three safe-region-bearing downlink
    types.  For bitmap regions it must be told the pyramid geometry of
    its grid (``fan``/``height``), since the wire format sends only the
    cell reference and bits; the grid parameters are deployment
    configuration shared by server and clients.
    """

    def __init__(self, fan: int = 3, height: int = 5) -> None:
        self.fan = fan
        self.height = height
        # decoded safe region, if any
        self._region: Optional[SafeRegion] = None
        self._cell_rect: Optional[Rect] = None
        self._expiry: float = float("-inf")
        self.probes = 0

    # ------------------------------------------------------------------
    def receive(self, data: bytes,
                cell_rect: Optional[Rect] = None) -> None:
        """Decode one downlink and update the monitoring state.

        ``cell_rect`` must accompany bitmap downlinks (the client derives
        it from the cell reference and its grid configuration; the
        simulation hands it over directly).
        """
        message_type = peek_type(data)
        if message_type is MessageType.RECT_SAFE_REGION:
            rect = decode_rect_region(data)
            self._region = RectangularSafeRegion(rect)
            self._cell_rect = cell_rect
            self._expiry = float("-inf")
        elif message_type is MessageType.BITMAP_SAFE_REGION:
            if cell_rect is None:
                raise ValueError("bitmap downlinks need the cell rectangle")
            pyramid = Pyramid(cell_rect, fan_cols=self.fan,
                              fan_rows=self.fan, height=self.height)
            _, bitmap = decode_bitmap_region(data, pyramid)
            self._region = BitmapSafeRegion(bitmap)
            self._cell_rect = cell_rect
            self._expiry = float("-inf")
        elif message_type is MessageType.SAFE_PERIOD:
            self._expiry = decode_safe_period(data)
            self._region = None
        else:
            raise ValueError("monitor cannot consume %r" % message_type)

    # ------------------------------------------------------------------
    def should_report(self, time: float, position: Point) -> bool:
        """The client's per-fix decision: stay silent or contact the server.

        Mirrors the built-in strategies: a safe-period client reports on
        expiry; a safe-region client reports when outside its region or
        its base cell; an uninitialized client always reports.
        """
        if self._region is None and self._expiry > float("-inf"):
            return time >= self._expiry
        if self._region is None:
            return True
        if (self._cell_rect is not None
                and not self._cell_rect.contains_point(position)):
            return True
        inside, ops = self._region.probe(position)
        self.probes += ops
        return not inside

    @property
    def has_region(self) -> bool:
        return self._region is not None

    def region_area(self) -> float:
        """Area of the currently held safe region (0 when none)."""
        if self._region is None:
            return 0.0
        return self._region.area()
