"""Safe-region abstractions (paper Section 2.1).

A safe region ``Psi_s`` for mobile user ``s`` satisfies:

(i)  while the user's position lies within the safe region, the
     probability of entering any relevant spatial alarm region is zero;
(ii) if the user is inside one or more alarm regions, the intersection
     of those regions is the safe region (no *other* alarm can fire
     there).

Consequently, as long as the client observes itself inside its safe
region, no alarm evaluation — client- or server-side — is necessary.
The client performs a cheap *containment probe* on every position fix;
probes are the unit of the client energy model, and the serialized size
of the region is the unit of the downstream bandwidth model.

Trigger semantics note: alarms fire on *interior* containment ("entering
the spatial region"), so safe regions may legitimately share boundary
with alarm regions.  All safety invariants in this package are stated as
"the safe region's interior is disjoint from every relevant alarm
region's interior".
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..geometry import Point, Rect

FLOAT_BITS = 64  # coordinates travel as float64 in the protocol


class SafeRegion:
    """Interface of a client-monitorable safe region."""

    def probe(self, p: Point) -> Tuple[bool, int]:
        """Check whether ``p`` is inside; returns ``(inside, ops)``.

        ``ops`` is the number of elementary comparisons the client's
        monitoring loop performed — the energy model charges per op.
        """
        raise NotImplementedError

    def size_bits(self) -> int:
        """Serialized payload size in bits (excluding transport headers)."""
        raise NotImplementedError

    def area(self) -> float:
        """Area of the region in square meters."""
        raise NotImplementedError


class RectangularSafeRegion(SafeRegion):
    """A single axis-aligned rectangle — the MWPSR representation.

    The most compact representation the paper considers: four float64
    coordinates, one rectangle comparison per probe.
    """

    __slots__ = ("rect",)

    def __init__(self, rect: Rect) -> None:
        self.rect = rect

    def probe(self, p: Point) -> Tuple[bool, int]:
        return (self.rect.contains_point(p), 1)

    def size_bits(self) -> int:
        return 4 * FLOAT_BITS

    def area(self) -> float:
        return self.rect.area

    def __repr__(self) -> str:
        return "RectangularSafeRegion(%r)" % (self.rect,)


def region_is_safe(rect: Rect, obstacles: Iterable[Rect],
                   tolerance: float = 1e-9) -> bool:
    """Invariant check: ``rect`` interior avoids every obstacle interior.

    Used by tests and optional runtime validation; the safe-region
    producers must only emit rectangles for which this holds.
    ``tolerance`` (meters) absorbs the floating-point slack of
    reconstructing absolute edges from subscriber-relative extents: an
    overlap is a violation only when it penetrates more than the
    tolerance along *both* axes.
    """
    for obstacle in obstacles:
        dx = (min(rect.max_x, obstacle.max_x)
              - max(rect.min_x, obstacle.min_x))
        if dx <= tolerance:
            continue
        dy = (min(rect.max_y, obstacle.max_y)
              - max(rect.min_y, obstacle.min_y))
        if dy > tolerance:
            return False
    return True
