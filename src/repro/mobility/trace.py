"""Mobility trace containers.

A *trace* is the high-frequency sequence of position samples for one
vehicle over the simulated period.  The paper's evaluation pipeline is
trace-driven: the same trace feeds every processing strategy (so
comparisons are paired) and also defines the ground-truth alarm triggers
("the sequence of alarms to be triggered is determined by a very high
frequency trace of the motion pattern of the vehicles", Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from ..geometry import Point, Rect

if TYPE_CHECKING:
    from .batch import SampleBatch


@dataclass(frozen=True)
class TraceSample:
    """One position fix: where a vehicle is at a point in time."""

    time: float      # seconds since trace start
    position: Point  # meters, universe coordinates
    heading: float   # radians, direction of travel
    speed: float     # meters/second


class Trace:
    """The ordered sample sequence of a single vehicle."""

    __slots__ = ("vehicle_id", "samples", "_batch")

    def __init__(self, vehicle_id: int,
                 samples: Sequence[TraceSample]) -> None:
        self.vehicle_id = vehicle_id
        self.samples: List[TraceSample] = list(samples)
        self._batch: Optional["SampleBatch"] = None

    def __len__(self) -> int:
        return len(self.samples)

    def __getstate__(self) -> Tuple[int, List[TraceSample]]:
        # The SoA cache is derived data: dropping it keeps pickles to
        # spawn-mode workers small, and each worker rebuilds its own.
        return (self.vehicle_id, self.samples)

    def __setstate__(self, state: Tuple[int, List[TraceSample]]) -> None:
        self.vehicle_id, self.samples = state
        self._batch = None

    def __iter__(self) -> Iterator[TraceSample]:
        return iter(self.samples)

    def __getitem__(self, index: int) -> TraceSample:
        return self.samples[index]

    @property
    def duration(self) -> float:
        """Seconds covered by the trace (0 for traces under two samples)."""
        if len(self.samples) < 2:
            return 0.0
        return self.samples[-1].time - self.samples[0].time

    def max_speed(self) -> float:
        """Fastest sampled speed; the safe-period bound builds on this."""
        if not self.samples:
            return 0.0
        return max(sample.speed for sample in self.samples)

    def batch(self) -> "SampleBatch":
        """The structure-of-arrays view of this trace, built once.

        Lazy on both axes: the batch is only materialized when the
        batched engine asks (scalar runs never pay for it), and the
        numpy-backed module is only imported here.  Workers build
        their own batches after fork/spawn, so pickled traces travel
        without the arrays.
        """
        if self._batch is None:
            from .batch import SampleBatch
            self._batch = SampleBatch(self.samples)
        return self._batch

    def bounding_rect(self) -> Rect:
        """Bounding rectangle of all sampled positions."""
        if not self.samples:
            raise ValueError("empty trace has no bounds")
        xs = [s.position.x for s in self.samples]
        ys = [s.position.y for s in self.samples]
        return Rect(min(xs), min(ys), max(xs), max(ys))


class TraceSet:
    """Traces for the whole vehicle population, keyed by vehicle id."""

    def __init__(self, traces: Dict[int, Trace],
                 sample_interval: float) -> None:
        if sample_interval <= 0:
            raise ValueError("sample interval must be positive")
        self.traces = dict(traces)
        self.sample_interval = sample_interval

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces.values())

    def __getitem__(self, vehicle_id: int) -> Trace:
        return self.traces[vehicle_id]

    def vehicle_ids(self) -> List[int]:
        return sorted(self.traces)

    @property
    def total_samples(self) -> int:
        """Total location fixes across all vehicles.

        This is the paper's "60 million location messages" denominator:
        the message count the periodic strategy would send.
        """
        return sum(len(trace) for trace in self.traces.values())

    def max_speed(self) -> float:
        """System-wide maximum vehicle speed (safe-period pessimism)."""
        speeds = [trace.max_speed() for trace in self.traces.values()]
        return max(speeds) if speeds else 0.0

    def duration(self) -> float:
        """Longest trace duration in seconds."""
        durations = [trace.duration for trace in self.traces.values()]
        return max(durations) if durations else 0.0
