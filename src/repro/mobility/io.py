"""Trace persistence.

Reproducible evaluation needs shareable datasets: a trace generated once
can be replayed against many strategy/parameter combinations, compared
across machines, or swapped for a real GPS dataset with the same shape.
The format is deliberately boring — a versioned header line followed by
one CSV row per sample — and transparently gzip-compressed when the
path ends in ``.gz``.

Format::

    #repro-traces v1 interval=<seconds>
    vehicle_id,time,x,y,heading,speed
    0,0.0,1523.25,871.5,1.5708,12.5
    ...

Rows must be grouped by vehicle and time-ordered within each vehicle
(the writer guarantees it; the reader enforces it).
"""

from __future__ import annotations

import gzip
import io
import os
from typing import Dict, List, TextIO, Union

from ..geometry import Point
from .trace import Trace, TraceSample, TraceSet

_HEADER_PREFIX = "#repro-traces v1 interval="
_COLUMNS = "vehicle_id,time,x,y,heading,speed"

PathLike = Union[str, "os.PathLike[str]"]


def _open_text(path: PathLike, mode: str) -> TextIO:
    if str(path).endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, mode + "b"),
                                encoding="ascii")
    return open(path, mode, encoding="ascii")


def save_traces(traces: TraceSet, path: PathLike) -> None:
    """Write a :class:`TraceSet` to ``path`` (gzip when ``*.gz``)."""
    with _open_text(path, "w") as stream:
        stream.write("%s%r\n" % (_HEADER_PREFIX, traces.sample_interval))
        stream.write(_COLUMNS + "\n")
        for vehicle_id in traces.vehicle_ids():
            for sample in traces[vehicle_id]:
                stream.write("%d,%r,%r,%r,%r,%r\n"
                             % (vehicle_id, sample.time, sample.position.x,
                                sample.position.y, sample.heading,
                                sample.speed))


def load_traces(path: PathLike) -> TraceSet:
    """Read a :class:`TraceSet` written by :func:`save_traces`.

    Raises ``ValueError`` on version/format violations, including
    out-of-order samples — silent reordering would corrupt ground-truth
    trigger times.
    """
    with _open_text(path, "r") as stream:
        header = stream.readline().rstrip("\n")
        if not header.startswith(_HEADER_PREFIX):
            raise ValueError("not a repro trace file: %r" % header[:40])
        interval = float(header[len(_HEADER_PREFIX):])
        columns = stream.readline().rstrip("\n")
        if columns != _COLUMNS:
            raise ValueError("unexpected column header: %r" % columns)

        samples_by_vehicle: Dict[int, List[TraceSample]] = {}
        for line_number, line in enumerate(stream, start=3):
            line = line.strip()
            if not line:
                continue
            fields = line.split(",")
            if len(fields) != 6:
                raise ValueError("line %d: expected 6 fields, got %d"
                                 % (line_number, len(fields)))
            vehicle_id = int(fields[0])
            sample = TraceSample(time=float(fields[1]),
                                 position=Point(float(fields[2]),
                                                float(fields[3])),
                                 heading=float(fields[4]),
                                 speed=float(fields[5]))
            bucket = samples_by_vehicle.setdefault(vehicle_id, [])
            if bucket and sample.time <= bucket[-1].time:
                raise ValueError(
                    "line %d: samples for vehicle %d out of order"
                    % (line_number, vehicle_id))
            bucket.append(sample)

    traces = {vehicle_id: Trace(vehicle_id, samples)
              for vehicle_id, samples in samples_by_vehicle.items()}
    return TraceSet(traces, sample_interval=interval)
