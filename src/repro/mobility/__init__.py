"""Mobility substrate: motion model, vehicle simulator, traces."""

from .io import load_traces, save_traces
from .motion import MotionModel, SteadyMotionModel, UniformMotionModel
from .simulator import MobilityConfig, TraceGenerator
from .trace import Trace, TraceSample, TraceSet

__all__ = [
    "MobilityConfig",
    "MotionModel",
    "SteadyMotionModel",
    "Trace",
    "TraceGenerator",
    "TraceSample",
    "TraceSet",
    "UniformMotionModel",
    "load_traces",
    "save_traces",
]
