"""Steady-motion direction model (paper Section 3, Fig. 1).

The maximum *weighted* perimeter safe region weights each candidate
rectangle by the probability that the subscriber moves toward it.  The
paper models the deviation ``phi`` of the next movement direction from
the current heading with the density (reconstructed from the printed
formula, whose nested fraction the published scan garbles, and the
stated properties):

    p(phi) = (1 + (y/z) * ceil((pi/2 - |phi|) / (y*pi/z))) / (2*pi)
                                            for |phi| <= pi/2,
    p(phi) = (1 - (y/z) * ceil((|phi| - pi/2) / (y*pi/z))) / (2*pi)
                                            otherwise.

This form reproduces every property the paper states and plots:

* it is a symmetric staircase in ``|phi|`` with steps of width
  ``y*pi/z`` — "z determines the granularity of change in phi for which
  the probability value decreases";
* it is flat for ``0 <= phi <= pi/z`` (at ``y = 1``) — "the probability
  of the client moving in a direction such that 0 <= phi <= pi/z is the
  same";
* ``y/z`` scales the bias toward the current heading — "the value of
  y/z determines the weight assigned to the probability of the client
  moving in the direction of its current motion";
* at ``y = 1`` the peak is ``1.5/(2*pi) ~ 0.239`` and the floor is
  ``0.5/(2*pi) ~ 0.080`` for every ``z`` — exactly the vertical range of
  Fig. 1(b);
* the two branches are antisymmetric images of each other, so the
  density integrates to one with no explicit normalizer.

The density is piecewise constant, so the sector masses the MWPSR
algorithm integrates are computed exactly rather than numerically.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List

from ..geometry import normalize_angle
from ..geometry.eps import feq_exact, fzero_exact

TWO_PI = 2.0 * math.pi


class MotionModel:
    """Interface: a direction-deviation density over ``(-pi, pi]``."""

    def pdf(self, phi: float) -> float:
        """Density at deviation ``phi`` from the current heading."""
        raise NotImplementedError

    def sector_mass(self, start: float, end: float) -> float:
        """Probability that the deviation falls in CCW sector [start, end].

        ``start`` and ``end`` are relative angles (deviations); the
        sector runs counter-clockwise from ``start`` to ``end`` and may
        wrap past pi.  The full circle has mass 1.
        """
        raise NotImplementedError

    def world_sector_mass(self, heading: float, start: float,
                          end: float) -> float:
        """Sector mass for a sector given in *world* angles.

        Converts the world-frame sector ``[start, end]`` (CCW) into
        deviations from ``heading`` and integrates.
        """
        return self.sector_mass(start - heading, end - heading)

    def cumulative(self, phi: float) -> float:
        """CDF over deviations: mass of ``(-pi, phi]``, in [0, 1].

        Sector masses follow from differences of this function (with
        wrap-around handling), which lets hot paths evaluate several
        sectors sharing corner angles with one cumulative lookup per
        corner instead of one integration per sector.
        """
        raise NotImplementedError


class UniformMotionModel(MotionModel):
    """No steady-motion assumption: all directions equally likely.

    This is the paper's *non-weighted* perimeter variant, which improves
    on Hu et al. [10] only through overlap handling; Fig. 4(a) compares
    it against the weighted variants.
    """

    def pdf(self, phi: float) -> float:  # noqa: ARG002 - uniform by design
        return 1.0 / TWO_PI

    def sector_mass(self, start: float, end: float) -> float:
        span = (end - start) % TWO_PI
        # Exact comparison intended: only a bit-exact zero span with
        # distinct endpoints means a full wrap (end - start an exact
        # multiple of 2*pi).  An epsilon test would misread a genuinely
        # tiny sector (span within eps of 0 or 2*pi) as the whole
        # circle, turning a near-zero mass into 1.
        if fzero_exact(span) and not feq_exact(end, start):
            span = TWO_PI
        return span / TWO_PI

    def cumulative(self, phi: float) -> float:
        return (normalize_angle(phi) + math.pi) / TWO_PI


class SteadyMotionModel(MotionModel):
    """The ceiling-staircase density described in the module docstring."""

    def __init__(self, y: float = 1.0, z: int = 32) -> None:
        if z < 1:
            raise ValueError("z must be a positive integer")
        if y <= 0:
            raise ValueError("y must be positive (use UniformMotionModel "
                             "for the non-weighted variant)")
        if y / z >= 1.0:
            raise ValueError("the paper requires y/z < 1")
        self.y = float(y)
        self.z = int(z)
        self._step = self.y * math.pi / self.z

        # Precompute the staircase over |phi| in [0, pi]: breakpoints at
        # pi/2 -+ m*step, clipped; the density is constant between them.
        edges = {0.0, math.pi}
        m = 0
        while True:
            below = math.pi / 2.0 - m * self._step
            above = math.pi / 2.0 + m * self._step
            added = False
            if 0.0 < below < math.pi:
                edges.add(below)
                added = True
            if 0.0 < above < math.pi:
                edges.add(above)
                added = True
            if not added and m > 0:
                break
            m += 1
        self._edges: List[float] = sorted(edges)
        self._values: List[float] = []
        for lo, hi in zip(self._edges, self._edges[1:]):
            mid = (lo + hi) / 2.0
            value = self._raw_pdf(mid)
            if value < 0.0:
                raise ValueError(
                    "density negative for y=%g z=%d; choose y/z smaller"
                    % (self.y, self.z))
            self._values.append(value)
        # Prefix integrals over [0, edge_i] for exact sector masses.
        self._prefix: List[float] = [0.0]
        for (lo, hi), value in zip(zip(self._edges, self._edges[1:]),
                                   self._values):
            self._prefix.append(self._prefix[-1] + value * (hi - lo))

    # ------------------------------------------------------------------
    def _raw_pdf(self, deviation: float) -> float:
        """The paper's two-branch formula for ``deviation`` in [0, pi]."""
        half_pi = math.pi / 2.0
        if deviation <= half_pi:
            steps = math.ceil((half_pi - deviation) / self._step)
            return (1.0 + (self.y / self.z) * steps) / TWO_PI
        steps = math.ceil((deviation - half_pi) / self._step)
        return (1.0 - (self.y / self.z) * steps) / TWO_PI

    def pdf(self, phi: float) -> float:
        deviation = abs(normalize_angle(phi))
        index = bisect.bisect_right(self._edges, deviation) - 1
        index = min(max(index, 0), len(self._values) - 1)
        return self._values[index]

    def total_mass(self) -> float:
        """Integral over the full circle; equals 1 up to float rounding."""
        return 2.0 * self._prefix[-1]

    # ------------------------------------------------------------------
    def _half_mass(self, t: float) -> float:
        """Integral of the density over deviations ``[0, t]``, t in [0, pi]."""
        if t <= 0.0:
            return 0.0
        t = min(t, math.pi)
        index = bisect.bisect_right(self._edges, t) - 1
        index = min(max(index, 0), len(self._values) - 1)
        return (self._prefix[index]
                + self._values[index] * (t - self._edges[index]))

    def _signed_mass(self, t: float) -> float:
        """Integral over ``[0, t]`` for t in [-pi, pi] (odd extension)."""
        if t >= 0.0:
            return self._half_mass(t)
        return -self._half_mass(-t)

    def cumulative(self, phi: float) -> float:
        return 0.5 + self._signed_mass(normalize_angle(phi))

    def sector_mass(self, start: float, end: float) -> float:
        start = normalize_angle(start)
        end = normalize_angle(end)
        if end > start:
            return self._signed_mass(end) - self._signed_mass(start)
        # Exact comparison intended: the CCW sector is empty only when
        # the endpoints coincide bit-for-bit.  ``end`` infinitesimally
        # *below* ``start`` is a full-circle wrap (mass ~1), so an
        # epsilon test here would collapse near-full sectors to zero.
        if feq_exact(end, start):
            return 0.0
        # The CCW sector wraps through +pi/-pi; split at the seam.
        half = self._half_mass(math.pi)
        return (half - self._signed_mass(start)
                + self._signed_mass(end) + half)

    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> float:
        """Draw a deviation from the density (inverse CDF on the bands)."""
        draw = rng.random()
        sign = 1.0
        if draw >= 0.5:
            target = draw - 0.5
        else:
            sign = -1.0
            target = 0.5 - draw
        # target is uniform in [0, 0.5) == [0, half-circle mass).
        mass = min(target, self._prefix[-1])
        index = bisect.bisect_right(self._prefix, mass) - 1
        index = min(max(index, 0), len(self._values) - 1)
        value = self._values[index]
        within = (mass - self._prefix[index]) / value if value > 0 else 0.0
        return sign * (self._edges[index] + within)
