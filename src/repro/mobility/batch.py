"""Structure-of-arrays view of a mobility trace.

The batched engine advances one vehicle's whole trace through
vectorized kernels; :class:`SampleBatch` is the column layout those
kernels consume — parallel time and coordinate arrays plus the
original :class:`~repro.mobility.trace.TraceSample` list, so the
non-silent samples (reports, exits, firings) can be handed back to
the unchanged scalar strategy code.

This module needs numpy; the scalar trace containers in
:mod:`repro.mobility.trace` import it lazily so the package stays
importable without it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geometry.batch import FloatArray, PointBatch
from .trace import TraceSample


class SampleBatch:
    """One trace's samples as parallel arrays.

    ``times`` is the per-sample clock, ``points`` the positions; both
    index-aligned with ``samples``.  Headings and speeds stay on the
    scalar samples — only the silent-run scans are vectorized, and a
    silent sample's heading is never read.
    """

    __slots__ = ("samples", "times", "points")

    def __init__(self, samples: Sequence[TraceSample]) -> None:
        self.samples = list(samples)
        count = len(self.samples)
        times: FloatArray = np.fromiter(
            (sample.time for sample in self.samples),
            dtype=np.float64, count=count)
        xs: FloatArray = np.fromiter(
            (sample.position.x for sample in self.samples),
            dtype=np.float64, count=count)
        ys: FloatArray = np.fromiter(
            (sample.position.y for sample in self.samples),
            dtype=np.float64, count=count)
        self.times = times
        self.points = PointBatch(xs, ys)

    def __len__(self) -> int:
        return len(self.samples)
