"""Vehicle mobility simulator over a road network.

Generates the high-frequency vehicle traces the evaluation is driven by
(paper Section 5.1: 10,000 vehicles on the Atlanta map for one simulated
hour, with "appropriate velocity information").

Two movement behaviours are provided:

* ``wander`` (default): at every intersection the vehicle picks the next
  road segment with probability proportional to the steady-motion density
  of the turn angle — i.e. it prefers to continue roughly straight, with
  occasional turns.  This is fast (no route planning) and is *exactly*
  the motion assumption the MWPSR weighting exploits, making it the
  apples-to-apples workload for the weighted-vs-non-weighted comparison.
* ``trip``: the vehicle repeatedly draws a random destination node and
  follows the fastest path to it (A* over free-flow travel times),
  re-planning on arrival — the classic random-trip model.

Vehicles move at a per-vehicle fraction of each road's speed limit and
are sampled at a fixed interval (1 Hz by default).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..geometry import Point, normalize_angle
from ..roadnet import Edge, RoadNetwork
from .motion import SteadyMotionModel
from .trace import Trace, TraceSample, TraceSet


@dataclass(frozen=True)
class MobilityConfig:
    """Parameters of the vehicle population and the sampling process."""

    vehicle_count: int = 10000
    duration_s: float = 3600.0
    sample_interval_s: float = 1.0
    behaviour: str = "wander"          # "wander" or "trip"
    min_speed_factor: float = 0.7      # of the road's speed limit
    max_speed_factor: float = 1.0
    turn_model_y: float = 1.0          # steadiness of the wander behaviour
    turn_model_z: int = 8

    def __post_init__(self) -> None:
        if self.vehicle_count < 1:
            raise ValueError("need at least one vehicle")
        if self.duration_s <= 0 or self.sample_interval_s <= 0:
            raise ValueError("durations must be positive")
        if self.behaviour not in ("wander", "trip"):
            raise ValueError("behaviour must be 'wander' or 'trip'")
        if not (0 < self.min_speed_factor <= self.max_speed_factor <= 1.5):
            raise ValueError("speed factors out of range")


class _Vehicle:
    """Kinematic state of one simulated vehicle."""

    __slots__ = ("rng", "speed_factor", "node_from", "edge", "offset",
                 "route")

    def __init__(self, rng: random.Random, speed_factor: float,
                 node_from: int, edge: Edge) -> None:
        self.rng = rng
        self.speed_factor = speed_factor
        self.node_from = node_from  # endpoint the vehicle is moving away from
        self.edge = edge
        self.offset = 0.0           # meters travelled along the edge
        self.route: List[Edge] = []  # remaining planned edges (trip mode)


class TraceGenerator:
    """Generates a :class:`TraceSet` for a vehicle population."""

    def __init__(self, network: RoadNetwork,
                 config: Optional[MobilityConfig] = None,
                 seed: int = 11) -> None:
        if network.node_count < 2:
            raise ValueError("network too small to drive on")
        self.network = network
        self.config = config or MobilityConfig()
        self.seed = seed
        self._turn_model = SteadyMotionModel(self.config.turn_model_y,
                                             self.config.turn_model_z)

    # ------------------------------------------------------------------
    def generate(self) -> TraceSet:
        """Simulate every vehicle and return the full trace set."""
        traces: Dict[int, Trace] = {}
        for vehicle_id in range(self.config.vehicle_count):
            traces[vehicle_id] = self._simulate_vehicle(vehicle_id)
        return TraceSet(traces, self.config.sample_interval_s)

    # ------------------------------------------------------------------
    def _simulate_vehicle(self, vehicle_id: int) -> Trace:
        # Mixed per-vehicle seed: deterministic across runs and independent
        # of Python hash randomization (unlike seeding with a tuple).
        rng = random.Random(self.seed * 1_000_003 + vehicle_id)
        speed_factor = rng.uniform(self.config.min_speed_factor,
                                   self.config.max_speed_factor)
        node = self._random_node_with_edges(rng)
        edge = rng.choice(list(self.network.edges_at(node)))
        vehicle = _Vehicle(rng, speed_factor, node, edge)

        samples: List[TraceSample] = []
        interval = self.config.sample_interval_s
        steps = int(self.config.duration_s / interval)
        time = 0.0
        samples.append(self._sample(vehicle, time))
        for _ in range(steps):
            self._advance(vehicle, interval)
            time += interval
            samples.append(self._sample(vehicle, time))
        return Trace(vehicle_id, samples)

    def _random_node_with_edges(self, rng: random.Random) -> int:
        while True:
            node = rng.randrange(self.network.node_count)
            if self.network.degree(node) > 0:
                return node

    # ------------------------------------------------------------------
    def _advance(self, vehicle: _Vehicle, dt: float) -> None:
        """Move the vehicle along the network for ``dt`` seconds."""
        remaining = dt
        # Bounded iterations guard against pathological zero-progress loops;
        # a vehicle can cross only so many edges per sample interval.
        for _ in range(1000):
            speed = (vehicle.edge.road_class.speed_limit
                     * vehicle.speed_factor)
            distance_left = vehicle.edge.length - vehicle.offset
            travel = speed * remaining
            if travel < distance_left:
                vehicle.offset += travel
                return
            # Cross the far endpoint and continue on a new edge.
            remaining -= distance_left / speed
            arrived_at = vehicle.edge.other(vehicle.node_from)
            next_edge = self._next_edge(vehicle, arrived_at)
            vehicle.node_from = arrived_at
            vehicle.edge = next_edge
            vehicle.offset = 0.0
            if remaining <= 0.0:
                return
        raise RuntimeError("vehicle failed to make progress")

    def _next_edge(self, vehicle: _Vehicle, at_node: int) -> Edge:
        if self.config.behaviour == "trip":
            return self._next_trip_edge(vehicle, at_node)
        return self._next_wander_edge(vehicle, at_node)

    def _next_wander_edge(self, vehicle: _Vehicle, at_node: int) -> Edge:
        """Pick the outgoing edge with steady-motion-biased probability."""
        options = [edge for edge in self.network.edges_at(at_node)
                   if edge is not vehicle.edge]
        if not options:
            return vehicle.edge  # dead end: U-turn
        heading = self._edge_heading(vehicle.edge, vehicle.node_from)
        weights: List[float] = []
        for edge in options:
            out_heading = self._edge_heading(edge, at_node)
            deviation = normalize_angle(out_heading - heading)
            weights.append(self._turn_model.pdf(deviation))
        total = sum(weights)
        pick = vehicle.rng.random() * total
        for edge, weight in zip(options, weights):
            pick -= weight
            if pick <= 0.0:
                return edge
        return options[-1]

    def _next_trip_edge(self, vehicle: _Vehicle, at_node: int) -> Edge:
        """Follow the planned route, drawing a new destination on arrival."""
        if not vehicle.route:
            route = None
            while not route:
                destination = vehicle.rng.randrange(self.network.node_count)
                if destination == at_node:
                    continue
                route = self.network.shortest_path(at_node, destination)
            vehicle.route = route
        return vehicle.route.pop(0)

    # ------------------------------------------------------------------
    def _edge_heading(self, edge: Edge, from_node: int) -> float:
        start = self.network.position(from_node)
        end = self.network.position(edge.other(from_node))
        return start.heading_to(end)

    def _sample(self, vehicle: _Vehicle, time: float) -> TraceSample:
        start = self.network.position(vehicle.node_from)
        end = self.network.position(
            vehicle.edge.other(vehicle.node_from))
        fraction = vehicle.offset / vehicle.edge.length
        position = Point(start.x + (end.x - start.x) * fraction,
                         start.y + (end.y - start.y) * fraction)
        heading = start.heading_to(end)
        speed = vehicle.edge.road_class.speed_limit * vehicle.speed_factor
        return TraceSample(time, position, heading, speed)
