"""The alarm-processing server.

One :class:`AlarmServer` instance plays the server role for a single
simulation run: it receives client location reports, evaluates them
against the alarm index, fires alarms with one-shot semantics, and times
its two work components — *alarm processing* (trigger evaluation per
location report) and *safe-region computation* (everything a strategy
does to produce a safe region or safe period) — which are the two bars
of the paper's server-load figures (Fig. 4(b), Fig. 6(d)).
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import (TYPE_CHECKING, ContextManager, Dict, Iterator, List,
                    Optional, Set)

from ..alarms import AlarmRegistry, SpatialAlarm
from ..geometry import Point, Rect
from ..index import GridOverlay
from ..telemetry.facade import DISABLED, Telemetry
from .metrics import Metrics, TriggerEvent
from .network import DOWNLINK_PUSH, MessageSizes
from .profiling import PhaseProfiler

if TYPE_CHECKING:  # imported lazily at runtime (only when caching is on)
    from ..alarms.cellcache import CellAlarmCache

_NULL_CONTEXT: ContextManager[None] = nullcontext()


class AlarmServer:
    """Server-side state and accounting for one simulation run."""

    def __init__(self, registry: AlarmRegistry, grid: GridOverlay,
                 metrics: Metrics,
                 sizes: MessageSizes = MessageSizes(),
                 use_cell_cache: bool = False,
                 profiler: Optional[PhaseProfiler] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.registry = registry
        self.grid = grid
        self.metrics = metrics
        self.sizes = sizes
        # Optional per-phase wall-time profiling (see engine.profiling).
        self.profiler = profiler
        # Structured telemetry facade; the shared DISABLED singleton
        # (never None) keeps every hot-path guard a plain attribute
        # check instead of an `is None` test plus a method call.
        self.telemetry = telemetry if telemetry is not None else DISABLED
        # One-shot bookkeeping: alarm ids already fired, per user.
        self._fired: Dict[int, Set[int]] = {}
        # Optional per-cell alarm cache (safe-region hot path): the grid
        # is fixed, so each cell's alarm list can be memoized and served
        # with relevance filtering instead of an R*-tree range query.
        self._cell_cache: Optional["CellAlarmCache"] = None
        if use_cell_cache:
            from ..alarms.cellcache import CellAlarmCache
            self._cell_cache = CellAlarmCache(registry, grid)

    # ------------------------------------------------------------------
    # One-shot state
    # ------------------------------------------------------------------
    def fired_for(self, user_id: int) -> Set[int]:
        """Alarm ids already fired for ``user_id`` (mutable view)."""
        fired = self._fired.get(user_id)
        if fired is None:
            fired = set()
            self._fired[user_id] = fired
        return fired

    # ------------------------------------------------------------------
    # Message accounting
    # ------------------------------------------------------------------
    def receive_location(self, nbytes: int) -> None:
        self.metrics.uplink_messages += 1
        self.metrics.uplink_bytes += nbytes

    def send_downlink(self, nbytes: int, user_id: Optional[int] = None,
                      time_s: Optional[float] = None,
                      kind: str = DOWNLINK_PUSH) -> None:
        """Account one downlink payload; emit its event when traced.

        ``user_id``/``time_s``/``kind`` exist for telemetry only —
        accounting is identical without them, but a traced run's
        reconciliation check (events vs ``Metrics``) flags any call
        site that forgets to identify its payload.
        """
        self.metrics.downlink_messages += 1
        self.metrics.downlink_bytes += nbytes
        telemetry = self.telemetry
        if telemetry.enabled and user_id is not None and time_s is not None:
            telemetry.downlink_sent(time_s, user_id, nbytes, kind)

    # ------------------------------------------------------------------
    # Alarm processing
    # ------------------------------------------------------------------
    def process_location(self, user_id: int, time_s: float,
                         position: Point) -> List[SpatialAlarm]:
        """Evaluate a location report; fire and return triggered alarms.

        Fires every pending relevant alarm whose region interior contains
        ``position`` and records a trigger notification per firing.  The
        work is timed into the *alarm processing* bucket.
        """
        fired = self.fired_for(user_id)
        telemetry = self.telemetry
        cost_started = time.perf_counter() if telemetry.enabled else 0.0
        with self._timed_alarm_processing(), \
                self.profiled("alarm_processing"):
            triggered = self.registry.triggered_at(user_id, position,
                                                   exclude_ids=fired)
        if telemetry.enabled:
            telemetry.location_report(
                time_s, user_id, self.sizes.uplink_location,
                (time.perf_counter() - cost_started) * 1e6)
        self.metrics.alarm_evaluations += 1
        for alarm in triggered:
            fired.add(alarm.alarm_id)
            self.metrics.triggers.append(
                TriggerEvent(time=time_s, user_id=user_id,
                             alarm_id=alarm.alarm_id))
            self.metrics.trigger_notifications += 1
            if telemetry.enabled:
                telemetry.alarm_fired(time_s, user_id, alarm.alarm_id)
        return triggered

    # ------------------------------------------------------------------
    # Safe-region inputs
    # ------------------------------------------------------------------
    def current_cell(self, position: Point) -> Rect:
        return self.grid.cell_rect_of_point(position)

    def pending_alarms_in(self, user_id: int,
                          rect: Rect) -> List[SpatialAlarm]:
        """Pending (unfired) relevant alarms interior-overlapping ``rect``."""
        with self.profiled("index_lookup"):
            pending: Optional[List[SpatialAlarm]] = None
            if self._cell_cache is not None:
                cell = self.grid.cell_of(rect.center)
                if self.grid.cell_rect(cell) == rect:
                    pending = self._cell_cache.relevant_pending(
                        user_id, cell, exclude_ids=self.fired_for(user_id))
            if pending is None:
                pending = self.registry.relevant_intersecting(
                    user_id, rect, exclude_ids=self.fired_for(user_id))
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.index_fanout(len(pending))
        return pending

    def pending_nearest_distance(self, user_id: int,
                                 position: Point) -> float:
        """Distance to the nearest pending relevant alarm region."""
        with self.profiled("index_lookup"):
            return self.registry.nearest_relevant_distance(
                user_id, position, exclude_ids=self.fired_for(user_id))

    def close(self) -> None:
        """Release run-scoped resources (detach the cell cache, if any)."""
        if self._cell_cache is not None:
            self._cell_cache.detach()
            self._cell_cache = None

    # ------------------------------------------------------------------
    # Timing buckets
    # ------------------------------------------------------------------
    def profiled(self, phase: str) -> ContextManager[None]:
        """Time a block into the profiler's ``phase`` (no-op when off).

        Strategies mark their phase boundaries with this; with no
        profiler attached it returns a shared null context, keeping the
        unprofiled hot path allocation-free.
        """
        if self.profiler is None:
            return _NULL_CONTEXT
        return self.profiler.timed(phase)

    @contextmanager
    def _timed_alarm_processing(self) -> Iterator[None]:
        accesses_before = self.registry.tree.stats.node_accesses
        started = time.perf_counter()
        try:
            yield
        finally:
            self.metrics.alarm_processing_time_s += (
                time.perf_counter() - started)
            self.metrics.index_node_accesses += (
                self.registry.tree.stats.node_accesses - accesses_before)

    @contextmanager
    def timed_saferegion(self, user_id: Optional[int] = None,
                         time_s: Optional[float] = None) -> Iterator[None]:
        """Time a block into the *safe-region computation* bucket.

        Strategies wrap their safe-region (or safe-period) production in
        this context manager so Fig. 4(b)/6(d) can split server load.
        ``user_id``/``time_s`` identify the computation for telemetry;
        the ``saferegion_computed`` event fires exactly when the
        ``safe_region_computations`` counter increments (on clean exit),
        so the two reconcile by construction.
        """
        accesses_before = self.registry.tree.stats.node_accesses
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.metrics.saferegion_time_s += elapsed
            self.metrics.index_node_accesses += (
                self.registry.tree.stats.node_accesses - accesses_before)
        self.metrics.safe_region_computations += 1
        telemetry = self.telemetry
        if telemetry.enabled and user_id is not None and time_s is not None:
            telemetry.saferegion_computed(time_s, user_id, elapsed * 1e6)
