"""The alarm-processing server.

One :class:`AlarmServer` instance plays the server role for a single
simulation run: it evaluates client location reports against the alarm
index, fires alarms with one-shot semantics, and times its two work
components — *alarm processing* (trigger evaluation per location report)
and *safe-region computation* (everything a policy does to produce a
safe region or safe period) — which are the two bars of the paper's
server-load figures (Fig. 4(b), Fig. 6(d)).

Since the protocol refactor the server is *stateless handlers over
explicit state*: every mutable thing it knows lives in its
:class:`~repro.protocol.state.ServerState`, requests arrive as typed
messages through :func:`~repro.protocol.handlers.handle_request`, and
all message/byte accounting happens at the transport boundary
(:mod:`repro.protocol.transport`) — this class no longer owns any
traffic counter.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import (TYPE_CHECKING, ContextManager, Iterator, List,
                    Optional, Set)

from ..alarms import AlarmRegistry, SpatialAlarm
from ..geometry import Point, Rect
from ..geometry.eps import feq
from ..index import GridOverlay
from ..protocol.state import ServerState
from ..telemetry.facade import DISABLED, Telemetry
from .metrics import Metrics, TriggerEvent
from .network import MessageSizes
from .profiling import PhaseProfiler

if TYPE_CHECKING:  # runtime import would pull bitmap machinery eagerly
    from ..saferegion.bitmap import BitmapSafeRegion
    from ..saferegion.cache import CacheKey

_NULL_CONTEXT: ContextManager[None] = nullcontext()


class AlarmServer:
    """Server-side processing and accounting for one simulation run."""

    def __init__(self, registry: AlarmRegistry, grid: GridOverlay,
                 metrics: Metrics,
                 sizes: MessageSizes = MessageSizes(),
                 use_cell_cache: bool = False,
                 use_region_cache: bool = False,
                 profiler: Optional[PhaseProfiler] = None,
                 telemetry: Optional[Telemetry] = None,
                 use_batch: bool = False) -> None:
        # All mutable server knowledge lives in the explicit state store;
        # registry/grid stay as aliases because every policy and index
        # path reads them.
        self.state = ServerState(registry, grid,
                                 use_cell_cache=use_cell_cache,
                                 use_region_cache=use_region_cache)
        self.registry = registry
        self.grid = grid
        self.metrics = metrics
        self.sizes = sizes
        # Optional per-phase wall-time profiling (see engine.profiling).
        self.profiler = profiler
        # Structured telemetry facade; the shared DISABLED singleton
        # (never None) keeps every hot-path guard a plain attribute
        # check instead of an `is None` test plus a method call.
        self.telemetry = telemetry if telemetry is not None else DISABLED
        # Batch mode: policies consult this to choose vectorized
        # server-side kernels (e.g. the MWPSR skyline pruning).  Every
        # kernel is bit-identical to its scalar twin, so the flag only
        # changes speed — a ``use_batch=False`` run executes pure scalar
        # code and stays the differential oracle.
        self.use_batch = use_batch

    # ------------------------------------------------------------------
    # One-shot state
    # ------------------------------------------------------------------
    def fired_for(self, user_id: int) -> Set[int]:
        """Alarm ids already fired for ``user_id`` (mutable view)."""
        return self.state.fired_for(user_id)

    # ------------------------------------------------------------------
    # Alarm processing
    # ------------------------------------------------------------------
    def process_location(self, user_id: int, time_s: float,
                         position: Point) -> List[SpatialAlarm]:
        """Evaluate a location report; fire and return triggered alarms.

        Fires every pending relevant alarm whose region interior contains
        ``position`` and records a trigger notification per firing.  The
        work is timed into the *alarm processing* bucket.  (The
        ``location_report`` event and the uplink byte accounting belong
        to the transport that delivered the report, not to this method —
        it can be called directly in tests without touching a counter.)
        """
        fired = self.fired_for(user_id)
        telemetry = self.telemetry
        with self._timed_alarm_processing(), \
                self.profiled("alarm_processing"):
            triggered = self.registry.triggered_at(user_id, position,
                                                   exclude_ids=fired)
        self.metrics.alarm_evaluations += 1
        for alarm in triggered:
            fired.add(alarm.alarm_id)
            self.metrics.triggers.append(
                TriggerEvent(time=time_s, user_id=user_id,
                             alarm_id=alarm.alarm_id))
            self.metrics.trigger_notifications += 1
            if telemetry.enabled:
                telemetry.alarm_fired(time_s, user_id, alarm.alarm_id)
        return triggered

    # ------------------------------------------------------------------
    # Safe-region inputs
    # ------------------------------------------------------------------
    def current_cell(self, position: Point) -> Rect:
        return self.grid.cell_rect_of_point(position)

    def pending_alarms_in(self, user_id: int,
                          rect: Rect) -> List[SpatialAlarm]:
        """Pending (unfired) relevant alarms interior-overlapping ``rect``."""
        with self.profiled("index_lookup"):
            pending: Optional[List[SpatialAlarm]] = None
            cell_cache = self.state.cell_cache
            if cell_cache is not None:
                cell = self.grid.cell_of(rect.center)
                cell_rect = self.grid.cell_rect(cell)
                # Tolerant match: the query rect may be reconstructed
                # from wire floats, so exact equality would silently
                # skip the cache on round-off (RL002 territory).
                if (feq(cell_rect.min_x, rect.min_x)
                        and feq(cell_rect.min_y, rect.min_y)
                        and feq(cell_rect.max_x, rect.max_x)
                        and feq(cell_rect.max_y, rect.max_y)):
                    pending = cell_cache.relevant_pending(
                        user_id, cell, exclude_ids=self.fired_for(user_id))
            if pending is None:
                pending = self.registry.relevant_intersecting(
                    user_id, rect, exclude_ids=self.fired_for(user_id))
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.index_fanout(len(pending))
        return pending

    def pending_nearest_distance(self, user_id: int,
                                 position: Point) -> float:
        """Distance to the nearest pending relevant alarm region."""
        with self.profiled("index_lookup"):
            return self.registry.nearest_relevant_distance(
                user_id, position, exclude_ids=self.fired_for(user_id))

    # ------------------------------------------------------------------
    # Shared safe-region memo (GBSR/PBSR computation sharing, paper §4)
    # ------------------------------------------------------------------
    def cached_region(self, user_id: int, time_s: float,
                      key: "CacheKey") -> Optional["BitmapSafeRegion"]:
        """The memoized bitmap region for ``key``, or ``None``.

        Counts the hit or miss in ``Metrics`` and the telemetry registry
        — the sanctioned path for policies, which may not touch either
        directly (lintkit RL008).  Always ``None`` when the region cache
        is disabled, without counting anything.
        """
        cache = self.state.region_cache
        if cache is None:
            return None
        region = cache.lookup(key)
        if region is None:
            self.metrics.saferegion_cache_misses += 1
        else:
            self.metrics.saferegion_cache_hits += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.saferegion_cache(time_s, user_id,
                                       hit=region is not None)
        return region

    def store_region(self, key: "CacheKey",
                     region: "BitmapSafeRegion") -> None:
        """Memoize a freshly computed bitmap region (no-op when off)."""
        cache = self.state.region_cache
        if cache is not None:
            cache.store(key, region)

    def close(self) -> None:
        """Release run-scoped resources (idempotent; delegates to state)."""
        self.state.close()

    # ------------------------------------------------------------------
    # Timing buckets
    # ------------------------------------------------------------------
    def profiled(self, phase: str) -> ContextManager[None]:
        """Time a block into the profiler's ``phase`` (no-op when off).

        Policies mark their phase boundaries with this; with no
        profiler attached it returns a shared null context, keeping the
        unprofiled hot path allocation-free.
        """
        if self.profiler is None:
            return _NULL_CONTEXT
        return self.profiler.timed(phase)

    @contextmanager
    def _timed_alarm_processing(self) -> Iterator[None]:
        accesses_before = self.registry.tree.stats.node_accesses
        started = time.perf_counter()
        try:
            yield
        finally:
            self.metrics.alarm_processing_time_s += (
                time.perf_counter() - started)
            self.metrics.index_node_accesses += (
                self.registry.tree.stats.node_accesses - accesses_before)

    @contextmanager
    def timed_saferegion(self, user_id: Optional[int] = None,
                         time_s: Optional[float] = None,
                         count: bool = True) -> Iterator[None]:
        """Time a block into the *safe-region computation* bucket.

        Policies wrap their safe-region (or safe-period) production in
        this context manager so Fig. 4(b)/6(d) can split server load.
        ``user_id``/``time_s`` identify the computation for telemetry;
        the ``saferegion_computed`` event fires exactly when the
        ``safe_region_computations`` counter increments (on clean exit),
        so the two reconcile by construction.  ``count=False`` accrues
        time and index accesses without counting a computation — used
        around the pending-alarm lookup on the region-cache path, where
        a hit means no region was actually computed.
        """
        accesses_before = self.registry.tree.stats.node_accesses
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.metrics.saferegion_time_s += elapsed
            self.metrics.index_node_accesses += (
                self.registry.tree.stats.node_accesses - accesses_before)
        if not count:
            return
        self.metrics.safe_region_computations += 1
        telemetry = self.telemetry
        if telemetry.enabled and user_id is not None and time_s is not None:
            telemetry.saferegion_computed(time_s, user_id, elapsed * 1e6)
