"""Sharded, multi-process simulation engine.

The serial engine replays every vehicle in one process — fine for the
paper's figures, a wall for the roadmap's "millions of users".  This
module breaks it by exploiting the engine's documented independence
property: alarm targets are static within a run and one-shot state is
per subscriber, so vehicles never interact.  The trace set therefore
partitions *vehicle-major* into contiguous shards, each shard replays in
its own worker process against its own :class:`AlarmServer` (own
one-shot table, own index copy), and the per-shard
:class:`~repro.engine.metrics.Metrics` fold back together through the
merge contract (:meth:`Metrics.merged`).

Determinism guarantee — the property the differential test suite
(``tests/engine/test_parallel_equivalence.py``) enforces:

* shards are contiguous slices of the serial replay order, so
  concatenating shard trigger lists in shard order reproduces the serial
  trigger sequence *exactly*;
* every deterministic counter (messages, bytes, probes, evaluations,
  index node accesses) is a per-vehicle sum, so the shard sums equal the
  serial totals bit-for-bit;
* only the wall-clock timing buckets differ (they measure real time on
  real hardware), which is the entire point.

One caveat: the optional per-cell alarm cache memoizes per *server*, so
each shard re-fills its own cache and ``index_node_accesses`` may count
cache-fill queries once per shard instead of once per run.  Everything
else remains identical; the differential suite pins this down.

Workers receive (registry, grid, shard, sizes, strategy factory) rather
than a :class:`World` — worlds may carry non-picklable memoization hooks
— and return plain metrics plus an optional profile report, keeping the
process boundary cheap and explicit.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Mapping,
                    Optional, Tuple)

from ..alarms import AlarmRegistry
from ..index import GridOverlay
from ..mobility import TraceSet
from ..protocol.transport import TransportFactory, connect
from ..sanitize import Sanitizer
from ..telemetry.facade import DISABLED, Telemetry
from .groundtruth import verify_accuracy
from .metrics import Metrics
from .network import MessageSizes
from .profiling import PhaseProfiler, merge_reports
from .server import AlarmServer
from .simulation import (SimulationResult, World, replay_vehicle_major,
                         sanitize_transport_factory)

if TYPE_CHECKING:  # runtime import would cycle through strategies.base
    from ..strategies.base import ProcessingStrategy

#: A picklable zero-argument callable producing a fresh strategy.
#: Module-level functions, classes and :func:`functools.partial` of
#: either all qualify; lambdas and closures do not cross the process
#: boundary.  The same constraint applies to the optional
#: ``TransportFactory`` handed to :func:`run_parallel_simulation` — it
#: crosses the same process boundary.
StrategyFactory = Callable[[], "ProcessingStrategy"]

#: What one shard ships back: metrics, optional profile report, replay
#: wall time, and — when the run is traced — the shard's buffered
#: telemetry events plus its serialized metrics registry (plain dicts:
#: cheap to pickle, merged in the parent through the associative
#: registry merge exactly like ``Metrics.merged``).
_ShardOutcome = Tuple[Metrics, Optional[Dict[str, Dict[str, float]]],
                      float, Optional[List[Mapping[str, object]]],
                      Optional[Dict[str, Dict[str, object]]]]


def default_worker_count() -> int:
    """Worker count when the caller does not choose: one per CPU."""
    return max(1, os.cpu_count() or 1)


def shard_traces(traces: TraceSet, shards: int) -> List[TraceSet]:
    """Partition a trace set into contiguous vehicle-major shards.

    The chunks follow the trace set's iteration order — the exact order
    the serial engine replays — and sizes differ by at most one vehicle.
    Requesting more shards than vehicles yields one shard per vehicle;
    an empty trace set yields no shards.
    """
    if shards < 1:
        raise ValueError("shard count must be positive")
    ordered = list(traces)
    count = len(ordered)
    shards = min(shards, count)
    sharded: List[TraceSet] = []
    start = 0
    for index in range(shards):
        # First (count % shards) shards carry one extra vehicle.
        size = count // shards + (1 if index < count % shards else 0)
        chunk = ordered[start:start + size]
        start += size
        sharded.append(TraceSet({trace.vehicle_id: trace for trace in chunk},
                                traces.sample_interval))
    return sharded


#: Shard payload inherited by fork()ed workers: set in the parent
#: immediately before pool creation, cleared after the run.  Fork
#: children snapshot the parent's memory, so they read the registry,
#: grid and their shard's traces directly instead of round-tripping
#: tens of megabytes of trace samples through the pool's pickle queue —
#: the overhead that would otherwise cancel the parallel speedup.
_INHERITED: Optional[Tuple[Any, ...]] = None


def _worker_init() -> None:
    """Worker bootstrap: freeze the inherited heap out of the gc.

    A fork child shares the parent's (potentially huge) world heap
    copy-on-write; a single gc pass in the child would touch every
    inherited object header and fault-copy the lot.  Freezing moves the
    inherited objects to the permanent generation, so the child's gc
    only ever scans what the child itself allocates.
    """
    gc.collect()
    gc.freeze()


def _replay_inherited_shard(index: int) -> _ShardOutcome:
    """Fork-path worker body: replay shard ``index`` of ``_INHERITED``."""
    assert _INHERITED is not None, "inherited state missing in fork child"
    (registry, grid, shards, sizes, strategy_factory, use_cell_cache,
     profile, trace, transport_factory, use_region_cache,
     sanitize, use_batch) = _INHERITED
    return _replay_shard(registry, grid, shards[index], sizes,
                         strategy_factory, use_cell_cache, profile,
                         trace, index, transport_factory, use_region_cache,
                         sanitize, use_batch)


def _replay_shard(registry: AlarmRegistry, grid: GridOverlay,
                  traces: TraceSet, sizes: MessageSizes,
                  strategy_factory: StrategyFactory,
                  use_cell_cache: bool, profile: bool,
                  trace: bool = False,
                  shard_index: int = 0,
                  transport_factory: Optional[TransportFactory] = None,
                  use_region_cache: bool = False,
                  sanitize: bool = False,
                  use_batch: bool = False) -> _ShardOutcome:
    """Worker body: replay one shard against a private server.

    Top-level by design (process pools pickle the callable).  Returns
    the shard's metrics, its profile report (when requested), its replay
    wall time, and — when ``trace`` is set — its buffered telemetry
    events (stamped with ``shard_index``) and serialized registry.
    Shards hold disjoint vehicles, so a per-shard sanitizer checks the
    same per-client clock invariant the serial engine would.
    """
    strategy = strategy_factory()
    sanitizer = Sanitizer.resolve(sanitize)
    if sanitizer.enabled:
        transport_factory = sanitize_transport_factory(transport_factory)
    metrics = Metrics()
    profiler = PhaseProfiler() if profile else None
    telemetry = Telemetry.capture(shard=shard_index) if trace else DISABLED
    server = AlarmServer(registry, grid, metrics, sizes=sizes,
                         use_cell_cache=use_cell_cache,
                         use_region_cache=use_region_cache,
                         profiler=profiler, telemetry=telemetry,
                         use_batch=use_batch)
    connect(server, strategy, transport_factory)
    if telemetry.enabled:
        telemetry.shard_started(len(traces))
    started = time.perf_counter()
    try:
        replay_vehicle_major(strategy, traces, sanitizer,
                             use_batch=use_batch)
    finally:
        server.close()
    wall_time = time.perf_counter() - started
    if telemetry.enabled:
        telemetry.shard_finished(len(traces), wall_time)
    return (metrics, profiler.report() if profiler is not None else None,
            wall_time,
            telemetry.drain_events() if trace else None,
            telemetry.registry.to_dict() if trace else None)


def run_parallel_simulation(world: World,
                            strategy_factory: StrategyFactory,
                            workers: Optional[int] = None,
                            use_cell_cache: bool = False,
                            profile: bool = False,
                            telemetry: Optional[Telemetry] = None,
                            transport_factory: Optional[TransportFactory]
                            = None,
                            use_region_cache: bool = False,
                            sanitize: Optional[bool] = None,
                            use_batch: bool = False
                            ) -> SimulationResult:
    """Replay the world sharded over ``workers`` processes and merge.

    Drop-in equivalent of :func:`~repro.engine.simulation.run_simulation`
    up to wall-clock timing: the merged metrics, trigger sequence and
    accuracy report are bit-identical to the serial engine's.  The
    strategy is constructed *per shard* by ``strategy_factory`` (each
    worker needs its own instance; per-run server-side strategy state is
    keyed by user id, and shards hold disjoint users, so per-shard
    instances are exact).

    ``workers=1`` runs the single shard in-process — no pool, no pickle
    — which keeps the differential baseline and small runs cheap.
    ``result.wall_time_s`` covers sharding, worker dispatch, replay and
    merge (everything but ground-truth scoring), so measured speedups
    include the parallelism overhead they paid.

    When an enabled ``telemetry`` facade is passed, each worker captures
    its shard's events and metrics into a private in-memory facade
    (stamped with the shard index) and ships them back in the shard
    outcome; the parent folds them into ``telemetry`` in shard order, so
    a traced parallel run produces one coherent event stream and one
    merged registry — reconcilable against the merged ``Metrics``.

    ``use_batch`` replays each shard through the vectorized batch
    kernels (see ``docs/VECTORIZATION.md``).  The batch contract is
    observational identity, so the merged metrics stay bit-identical to
    the scalar serial run either way.
    """
    if workers is None:
        workers = default_worker_count()
    if workers < 1:
        raise ValueError("workers must be positive")
    telemetry = telemetry if telemetry is not None else DISABLED
    trace = telemetry.enabled
    # Resolve once in the parent (workers must not re-read the
    # environment); the parent's sanitizer holds the geometry snapshot
    # and runs the cross-shard merge spot-check, each worker carries its
    # own clock state for its disjoint vehicle set.
    sanitizer = Sanitizer.resolve(sanitize)
    sanitize_shards = sanitizer.enabled
    if sanitizer.enabled:
        sanitizer.snapshot_geometry(world.registry)
    # The factory must be constructible in the parent too: the result
    # needs the strategy's display name, and failing fast here beats a
    # pickle traceback out of a worker.
    strategy_name = strategy_factory().name

    started = time.perf_counter()
    shards = shard_traces(world.traces, workers)
    outcomes: List[_ShardOutcome] = []
    if len(shards) <= 1:
        for shard in shards:  # zero or one shard: stay in-process
            outcomes.append(_replay_shard(
                world.registry, world.grid, shard, world.sizes,
                strategy_factory, use_cell_cache, profile, trace, 0,
                transport_factory, use_region_cache, sanitize_shards,
                use_batch))
    elif multiprocessing.get_start_method() == "fork":
        # Fast path: fork children inherit the shard payload through
        # copy-on-write memory, so only a shard *index* crosses the
        # process boundary going in and only per-shard metrics coming
        # back.  Workers are spawned at submit time, after the global is
        # set; clearing it afterwards keeps runs re-entrant-safe.
        global _INHERITED
        _INHERITED = (world.registry, world.grid, shards, world.sizes,
                      strategy_factory, use_cell_cache, profile, trace,
                      transport_factory, use_region_cache, sanitize_shards,
                      use_batch)
        try:
            with ProcessPoolExecutor(max_workers=len(shards),
                                     initializer=_worker_init) as pool:
                futures = [pool.submit(_replay_inherited_shard, index)
                           for index in range(len(shards))]
                outcomes = [future.result() for future in futures]
        finally:
            _INHERITED = None
    else:  # spawn/forkserver: ship the shards through the pickle queue
        with ProcessPoolExecutor(max_workers=len(shards),
                                 initializer=_worker_init) as pool:
            futures = [pool.submit(_replay_shard, world.registry, world.grid,
                                   shard, world.sizes, strategy_factory,
                                   use_cell_cache, profile, trace, index,
                                   transport_factory, use_region_cache,
                                   sanitize_shards, use_batch)
                       for index, shard in enumerate(shards)]
            outcomes = [future.result() for future in futures]  # shard order

    metrics = Metrics.merged([outcome[0] for outcome in outcomes])
    if sanitizer.enabled:
        sanitizer.check_merge([outcome[0] for outcome in outcomes], metrics)
        sanitizer.verify_geometry(world.registry)
    profile_report = (merge_reports([outcome[1] for outcome in outcomes])
                      if profile else None)
    if trace:
        # Fold shard telemetry in shard order: the event stream then
        # mirrors the serial replay order the same way the trigger list
        # does, and the registry merge mirrors Metrics.merged.
        for outcome in outcomes:
            telemetry.absorb_shard(outcome[3] or [], outcome[4])
    wall_time = time.perf_counter() - started

    accuracy = verify_accuracy(world.ground_truth(), metrics)
    return SimulationResult(strategy_name=strategy_name, metrics=metrics,
                            accuracy=accuracy,
                            duration_s=world.duration_s,
                            client_count=len(world.traces),
                            total_samples=world.traces.total_samples,
                            wall_time_s=wall_time,
                            energy_model=world.energy,
                            profile=profile_report,
                            workers=len(shards) if shards else 1)
