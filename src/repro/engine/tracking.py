"""Moving alarm targets under distributed safe-region processing.

The paper's third alarm class — moving subscriber with *moving target*
("alert me when the school bus is near") — requires server-side
coordination: a client holding a safe region computed against the
target's old position knows nothing about the target's movement.  The
naive answer is to fall back to periodic processing; this module makes
the distributed architecture handle the class instead:

* a :class:`TargetTrack` gives an alarm's region per time step (e.g.
  derived from the target vehicle's own trace);
* :func:`run_tracking_simulation` replays time-major; each step it
  relocates tracked alarms through the registry and *push-invalidates*
  exactly the clients whose cached state the move touches — geometric
  state (safe regions, OPT lists) only when the old or new region
  intersects the client's cell, and non-geometric state (safe-period
  timers) whenever a relevant tracked alarm moved at all;
* :func:`compute_tracking_ground_truth` scores the run against the
  moving reference, so the accuracy contract (zero misses, zero
  spurious, on-time) is *verified*, not assumed, for every strategy.

The economics are the interesting part (see
``tests/engine/test_tracking.py``): safe-period clients degenerate
toward periodic reporting under tracking (their bound is global, so
every target move invalidates every subscriber), while cell-scoped safe
regions confine the churn to clients near the target — the distributed
architecture's advantage survives, and the invalidation push traffic is
measured rather than hand-waved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, List, Optional, Sequence, Set,
                    Tuple)

from ..alarms import AlarmRegistry
from ..geometry import Rect
from ..mobility import Trace
from ..protocol.messages import InvalidateState
from ..protocol.transport import ClientSession, connect
from ..telemetry.facade import DISABLED, Telemetry
from .dynamic import _clone_registry
from .groundtruth import verify_accuracy
from .metrics import Metrics
from .profiling import PhaseProfiler
from .server import AlarmServer
from .simulation import GroundTruth, SimulationResult, World

if TYPE_CHECKING:  # runtime import would cycle through strategies.base
    from ..strategies.base import ClientState, ProcessingStrategy


@dataclass(frozen=True)
class TargetTrack:
    """Per-step regions of one moving alarm target.

    ``regions[k]`` is the alarm's region during step ``k``; steps past
    the end keep the final region (the target parked).
    """

    alarm_id: int
    regions: Tuple[Rect, ...]

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError("a track needs at least one region")

    def region_at(self, step: int) -> Rect:
        if step < 0:
            raise ValueError("step must be non-negative")
        return self.regions[min(step, len(self.regions) - 1)]

    @classmethod
    def following_trace(cls, alarm_id: int, trace: Trace,
                        width: float, height: float) -> "TargetTrack":
        """A track keeping the region centered on a vehicle's trace."""
        regions = tuple(Rect.from_center(sample.position, width, height)
                        for sample in trace)
        return cls(alarm_id=alarm_id, regions=regions)


def compute_tracking_ground_truth(world: World,
                                  tracks: Sequence[TargetTrack]
                                  ) -> GroundTruth:
    """Expected triggers with tracked alarms at their per-step regions."""
    registry = _clone_registry(world.registry)
    max_steps = max((len(trace) for trace in world.traces), default=0)
    fired: Dict[int, Set[int]] = {trace.vehicle_id: set()
                                  for trace in world.traces}
    expected: Dict[Tuple[int, int], float] = {}
    for step in range(max_steps):
        for track in tracks:
            registry.relocate(track.alarm_id, track.region_at(step))
        for trace in world.traces:
            if step >= len(trace):
                continue
            sample = trace[step]
            user_fired = fired[trace.vehicle_id]
            for alarm in registry.triggered_at(trace.vehicle_id,
                                               sample.position,
                                               exclude_ids=user_fired):
                user_fired.add(alarm.alarm_id)
                expected[(trace.vehicle_id, alarm.alarm_id)] = sample.time
    return expected


def run_tracking_simulation(world: World, strategy: "ProcessingStrategy",
                            tracks: Sequence[TargetTrack],
                            profiler: Optional[PhaseProfiler] = None,
                            telemetry: Optional[Telemetry] = None
                            ) -> SimulationResult:
    """Time-major replay with per-step target moves and invalidation."""
    from ..strategies.base import ClientState  # local import: avoid cycle

    telemetry = telemetry if telemetry is not None else DISABLED
    track_ids = {track.alarm_id for track in tracks}
    registry = _clone_registry(world.registry)
    metrics = Metrics()
    server = AlarmServer(registry, world.grid, metrics, sizes=world.sizes,
                         profiler=profiler, telemetry=telemetry)
    session = connect(server, strategy)
    clients = {trace.vehicle_id: ClientState(trace.vehicle_id)
               for trace in world.traces}
    max_steps = max((len(trace) for trace in world.traces), default=0)

    if telemetry.enabled:
        telemetry.shard_started(len(world.traces))
    started = time.perf_counter()
    for step in range(max_steps):
        step_time = step * world.traces.sample_interval
        moves: List[Tuple[Rect, Rect, int]] = []
        for track in tracks:
            old_region = registry.get(track.alarm_id).region
            new_region = track.region_at(step)
            if new_region != old_region:
                registry.relocate(track.alarm_id, new_region)
                moves.append((old_region, new_region, track.alarm_id))
        if moves:
            for client in clients.values():
                if _stale_after_moves(client, server, registry, moves):
                    _invalidate(client, session, step_time)
        for trace in world.traces:
            if step < len(trace):
                strategy.on_sample(clients[trace.vehicle_id], trace[step])
    wall_time = time.perf_counter() - started
    if telemetry.enabled:
        telemetry.shard_finished(len(world.traces), wall_time)

    accuracy = verify_accuracy(
        compute_tracking_ground_truth(world, tracks), metrics)
    return SimulationResult(strategy_name=strategy.name, metrics=metrics,
                            accuracy=accuracy,
                            duration_s=world.duration_s,
                            client_count=len(world.traces),
                            total_samples=world.traces.total_samples,
                            wall_time_s=wall_time,
                            energy_model=world.energy,
                            profile=(profiler.report() if profiler is not None
                                     else None))


def _stale_after_moves(client: "ClientState", server: AlarmServer,
                       registry: AlarmRegistry,
                       moves: Sequence[Tuple[Rect, Rect, int]]) -> bool:
    """Did any tracked-alarm move make this client's cached state unsafe?"""
    relevant_moves = [
        (old_region, new_region) for old_region, new_region, alarm_id
        in moves
        if registry.get(alarm_id).is_relevant_to(client.user_id)
        and alarm_id not in server.fired_for(client.user_id)]
    if not relevant_moves:
        return False
    has_state = (client.safe_region is not None
                 or client.cell_rect is not None
                 or client.expiry > float("-inf")
                 or bool(client.local_alarms))
    if not has_state:
        return False
    if client.cell_rect is not None:
        # Cell-scoped state: only moves touching the client's cell matter.
        return any(client.cell_rect.intersects(old_region)
                   or client.cell_rect.intersects(new_region)
                   for old_region, new_region in relevant_moves)
    return True  # safe-period timers are global bounds: always stale


def _invalidate(client: "ClientState", session: ClientSession,
                time_s: float) -> None:
    telemetry = session.telemetry
    if telemetry.enabled and client.region_installed_at is not None:
        # A push-invalidation forcibly ends the client's residency.
        telemetry.saferegion_exit(time_s, client.user_id,
                                  time_s - client.region_installed_at)
    client.safe_region = None
    client.cell_rect = None
    client.expiry = float("-inf")
    client.local_alarms = []
    client.region_installed_at = None
    # Header-only InvalidateState push; the transport charges its bytes.
    session.transport.push(client.user_id, InvalidateState(), time_s)
