"""Client energy model.

The paper reports client energy in milliwatt-hours but omits its exact
formula ("we omit details related to energy consumption calculations due
to space constraints").  Its qualitative behaviour is clear from the
text, though: energy tracks the client's *safe-region containment
detection* work — GBSR's 2-3 detections/second cost little, PBSR at
height 7 needs 6-7 detections/second and costs more (Fig. 5(b)), and the
OPT approach, whose clients evaluate the full alarm list on every fix,
costs by far the most (Fig. 6(c)).

We therefore charge per elementary containment operation (one rectangle
comparison or one pyramid bit probe) with optional radio terms that
default to zero so the reproduced curves isolate the same effect the
paper plots.  Set the radio constants to non-zero values to study the
total-energy trade-off (the ``energy_radio`` ablation benchmark does).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

from .metrics import Metrics

JOULES_PER_MWH = 3.6


@dataclass(frozen=True)
class EnergyModel:
    """Energy constants in joules.

    ``check_op_j`` is calibrated so the paper's full-scale workload
    (10,000 clients, one hour, roughly two containment detections per
    second) lands in the paper's Fig. 5(b) range of a few hundred to a
    bit over a thousand mWh.
    """

    check_op_j: float = 70e-6
    uplink_msg_j: float = 0.0
    uplink_byte_j: float = 0.0
    downlink_msg_j: float = 0.0
    downlink_byte_j: float = 0.0

    def client_energy_j(self, metrics: Metrics) -> float:
        """Total client-side energy of a run in joules."""
        return (metrics.containment_ops * self.check_op_j
                + metrics.uplink_messages * self.uplink_msg_j
                + metrics.uplink_bytes * self.uplink_byte_j
                + metrics.downlink_messages * self.downlink_msg_j
                + metrics.downlink_bytes * self.downlink_byte_j)

    def client_energy_mwh(self, metrics: Metrics) -> float:
        """Total client-side energy of a run in milliwatt-hours."""
        return self.client_energy_j(metrics) / JOULES_PER_MWH

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict form for run-manifest provenance."""
        return asdict(self)


#: Radio-inclusive variant for the total-energy ablation: typical
#: cellular-class costs per message and per byte.
RADIO_ENERGY_MODEL = EnergyModel(check_op_j=70e-6,
                                 uplink_msg_j=0.050,
                                 uplink_byte_j=1e-6,
                                 downlink_msg_j=0.025,
                                 downlink_byte_j=0.5e-6)
