"""Wire-format sizing for the client-server protocol.

The paper measures the number of client-to-server messages and the
downstream bandwidth consumed broadcasting safe regions; to report the
latter we need byte sizes for every message the protocol exchanges.
Sizes are deliberately simple and documented — the comparisons depend on
their ratios (a rectangle is tiny, a bitmap is ``|B|`` bits, an OPT alarm
push grows with alarm count), not their absolute values.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Tuple

#: Downlink payload kinds as reported in telemetry (``downlink_sent``
#: events and the per-kind ``downlink_messages_<kind>`` counters).  One
#: kind per protocol payload, plus the push-invalidation of the
#: dynamic/tracking engines and a generic fallback.
DOWNLINK_RECT = "rect"
DOWNLINK_SAFE_PERIOD = "safe_period"
DOWNLINK_BITMAP = "bitmap"
DOWNLINK_ALARM_PUSH = "alarm_push"
DOWNLINK_INVALIDATE = "invalidate"
DOWNLINK_PUSH = "push"

DOWNLINK_KINDS: Tuple[str, ...] = (DOWNLINK_RECT, DOWNLINK_SAFE_PERIOD,
                                   DOWNLINK_BITMAP, DOWNLINK_ALARM_PUSH,
                                   DOWNLINK_INVALIDATE, DOWNLINK_PUSH)


@dataclass(frozen=True)
class MessageSizes:
    """Byte sizes of the protocol messages.

    uplink_location     client -> server position report: user id (8),
                        x, y (16), heading (4), speed (4).
    downlink_header     fixed header on every server -> client payload.
    rect_payload        a rectangular safe region: 4 x float64.
    safe_period_payload a safe period: one float64.
    alarm_entry         one alarm in an OPT push.  Unlike the safe-region
                        downlinks, which are pure geometry, an OPT push
                        must carry the *full alarm record* — id, region,
                        scope, authorization and the alert payload — since
                        the OPT client raises alerts autonomously without
                        contacting the server.  Default 256 bytes.
    bitmap_fixed        bitmap safe-region fixed part: base-cell
                        reference (8) + bit count (4).
    """

    uplink_location: int = 32
    downlink_header: int = 16
    rect_payload: int = 32
    safe_period_payload: int = 8
    alarm_entry: int = 256
    bitmap_fixed: int = 12

    def rect_message(self) -> int:
        """Bytes of a rectangular safe-region downlink."""
        return self.downlink_header + self.rect_payload

    def safe_period_message(self) -> int:
        """Bytes of a safe-period downlink."""
        return self.downlink_header + self.safe_period_payload

    def bitmap_message(self, bit_length: int) -> int:
        """Bytes of a bitmap safe-region downlink of ``bit_length`` bits."""
        return (self.downlink_header + self.bitmap_fixed
                + (bit_length + 7) // 8)

    def alarm_push_message(self, alarm_count: int) -> int:
        """Bytes of an OPT downlink carrying ``alarm_count`` alarms."""
        return (self.downlink_header + self.rect_payload  # the cell rect
                + alarm_count * self.alarm_entry)

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict form for run-manifest provenance."""
        return asdict(self)
