"""Wire-format sizing for the client-server protocol.

The paper measures the number of client-to-server messages and the
downstream bandwidth consumed broadcasting safe regions; to report the
latter we need byte sizes for every message the protocol exchanges.
Since the protocol refactor the sizes are *derived*, not asserted: every
default below points at the struct layout in :mod:`repro.protocol.wire`,
so the accounting table cannot drift from what the codec actually
serializes (``WireCodec.from_sizes`` additionally rejects any
``MessageSizes`` whose fixed fields disagree with the wire).  The
comparisons depend on the ratios (a rectangle is tiny, a bitmap is
``|B|`` bits, an OPT alarm push grows with alarm count), not the
absolute values.

The ``DOWNLINK_*`` kind constants live with the message types in
:mod:`repro.protocol.messages` and are re-exported here for
compatibility with pre-protocol call sites.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

from ..protocol import wire
from ..protocol.messages import (DOWNLINK_ALARM_PUSH, DOWNLINK_BITMAP,
                                 DOWNLINK_INVALIDATE, DOWNLINK_KINDS,
                                 DOWNLINK_PUSH, DOWNLINK_RECT,
                                 DOWNLINK_SAFE_PERIOD)

__all__ = [
    "MessageSizes",
    "DOWNLINK_ALARM_PUSH", "DOWNLINK_BITMAP", "DOWNLINK_INVALIDATE",
    "DOWNLINK_KINDS", "DOWNLINK_PUSH", "DOWNLINK_RECT",
    "DOWNLINK_SAFE_PERIOD",
]


@dataclass(frozen=True)
class MessageSizes:
    """Byte sizes of the protocol messages (struct-derived defaults).

    uplink_location     client -> server position report: user id and
                        sequence (8), x, y (16), heading (4), speed (4).
    downlink_header     fixed header on every server -> client payload.
    rect_payload        a rectangular safe region: 4 x float64.
    safe_period_payload a safe period: one float64.
    alarm_entry         one alarm in an OPT push.  Unlike the safe-region
                        downlinks, which are pure geometry, an OPT push
                        must carry the *full alarm record* — id, region,
                        scope, authorization and the alert payload — since
                        the OPT client raises alerts autonomously without
                        contacting the server.  The alert payload is the
                        one size the wire cannot dictate (it is opaque
                        application content), so ``alarm_entry`` is the
                        single tunable: fixed part (40) + default alert
                        payload (216) = 256 bytes.
    bitmap_fixed        bitmap safe-region fixed part: base-cell
                        reference (8) + bit count (4).
    """

    uplink_location: int = wire.UPLINK_LOCATION_SIZE
    downlink_header: int = wire.DOWNLINK_HEADER_SIZE
    rect_payload: int = wire.RECT_PAYLOAD_SIZE
    safe_period_payload: int = wire.SAFE_PERIOD_PAYLOAD_SIZE
    alarm_entry: int = wire.DEFAULT_ALARM_ENTRY_SIZE
    bitmap_fixed: int = wire.BITMAP_FIXED_SIZE

    def rect_message(self) -> int:
        """Bytes of a rectangular safe-region downlink."""
        return self.downlink_header + self.rect_payload

    def safe_period_message(self) -> int:
        """Bytes of a safe-period downlink."""
        return self.downlink_header + self.safe_period_payload

    def bitmap_message(self, bit_length: int) -> int:
        """Bytes of a bitmap safe-region downlink of ``bit_length`` bits."""
        return (self.downlink_header + self.bitmap_fixed
                + (bit_length + 7) // 8)

    def alarm_push_message(self, alarm_count: int) -> int:
        """Bytes of an OPT downlink carrying ``alarm_count`` alarms."""
        return (self.downlink_header + self.rect_payload  # the cell rect
                + alarm_count * self.alarm_entry)

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict form for run-manifest provenance."""
        return asdict(self)
