"""Client-server simulation engine: server, metrics, energy, ground truth."""

from .dynamic import (AlarmSchedule, InstallAction, RemoveAction,
                      compute_dynamic_ground_truth, run_dynamic_simulation)
from .energy import RADIO_ENERGY_MODEL, EnergyModel
from .groundtruth import (AccuracyReport, compute_ground_truth,
                          verify_accuracy)
from .metrics import Metrics, TriggerEvent
from .network import MessageSizes
from .server import AlarmServer
from .tracking import (TargetTrack, compute_tracking_ground_truth,
                       run_tracking_simulation)
from .simulation import (SimulationResult, World, run_interleaved_simulation,
                         run_simulation)

__all__ = [
    "AccuracyReport",
    "AlarmSchedule",
    "AlarmServer",
    "InstallAction",
    "RemoveAction",
    "compute_dynamic_ground_truth",
    "run_dynamic_simulation",
    "EnergyModel",
    "Metrics",
    "MessageSizes",
    "RADIO_ENERGY_MODEL",
    "SimulationResult",
    "TargetTrack",
    "compute_tracking_ground_truth",
    "run_tracking_simulation",
    "TriggerEvent",
    "World",
    "compute_ground_truth",
    "run_interleaved_simulation",
    "run_simulation",
    "verify_accuracy",
]
