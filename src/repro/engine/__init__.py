"""Client-server simulation engine: server, metrics, energy, ground truth."""

from .dynamic import (AlarmSchedule, InstallAction, RemoveAction,
                      compute_dynamic_ground_truth, run_dynamic_simulation)
from .energy import RADIO_ENERGY_MODEL, EnergyModel
from .groundtruth import (AccuracyReport, compute_ground_truth,
                          verify_accuracy)
from .metrics import Metrics, TriggerEvent
from .network import MessageSizes
from .parallel import (default_worker_count, run_parallel_simulation,
                       shard_traces)
from .profiling import PhaseProfiler, PhaseStat, merge_reports
from .server import AlarmServer
from .tracking import (TargetTrack, compute_tracking_ground_truth,
                       run_tracking_simulation)
from .simulation import (SimulationResult, World, replay_vehicle_major,
                         run_interleaved_simulation, run_simulation)

__all__ = [
    "PhaseProfiler",
    "PhaseStat",
    "default_worker_count",
    "merge_reports",
    "replay_vehicle_major",
    "run_parallel_simulation",
    "shard_traces",
    "AccuracyReport",
    "AlarmSchedule",
    "AlarmServer",
    "InstallAction",
    "RemoveAction",
    "compute_dynamic_ground_truth",
    "run_dynamic_simulation",
    "EnergyModel",
    "Metrics",
    "MessageSizes",
    "RADIO_ENERGY_MODEL",
    "SimulationResult",
    "TargetTrack",
    "compute_tracking_ground_truth",
    "run_tracking_simulation",
    "TriggerEvent",
    "World",
    "compute_ground_truth",
    "run_interleaved_simulation",
    "run_simulation",
    "verify_accuracy",
]
