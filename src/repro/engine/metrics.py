"""Run metrics: the quantities the paper's figures report.

One :class:`Metrics` object accumulates over a full simulation run of one
processing strategy.  Raw counters live here; derived quantities (energy
in mWh, downstream bandwidth in Mbps) are computed by the energy model
and the reporting layer so the counters stay model-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Sequence, Set, Tuple


@dataclass(frozen=True)
class TriggerEvent:
    """One alarm firing: ``alarm_id`` fired for ``user_id`` at ``time``."""

    time: float
    user_id: int
    alarm_id: int


@dataclass
class Metrics:
    """Counters accumulated over one simulation run."""

    # Client -> server traffic (the paper's headline metric, Fig. 4a/5a/6a).
    uplink_messages: int = 0
    uplink_bytes: int = 0
    # Server -> client traffic (downstream bandwidth, Fig. 6b).
    downlink_messages: int = 0
    downlink_bytes: int = 0
    trigger_notifications: int = 0
    # Client-side monitoring work (client energy, Fig. 5b/6c).
    containment_checks: int = 0
    containment_ops: int = 0
    # Server-side work split (server processing time, Fig. 4b/6d).
    alarm_processing_time_s: float = 0.0
    saferegion_time_s: float = 0.0
    alarm_evaluations: int = 0
    safe_region_computations: int = 0
    index_node_accesses: int = 0
    # Shared safe-region memo (see saferegion/cache.py; zero unless the
    # run opts into the region cache).
    saferegion_cache_hits: int = 0
    saferegion_cache_misses: int = 0
    # Simulated transport loss (zero on the reliable in-process path).
    # Dropped attempts are *charged* — a retransmission consumes real
    # uplink/downlink bandwidth — and additionally counted here.
    uplink_drops: int = 0
    downlink_drops: int = 0
    # Outcomes.
    triggers: List[TriggerEvent] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def server_time_s(self) -> float:
        """Total server processing time (both components)."""
        return self.alarm_processing_time_s + self.saferegion_time_s

    def downstream_bandwidth_mbps(self, duration_s: float) -> float:
        """Average downstream bandwidth over the run, in megabits/second."""
        if duration_s <= 0:
            return 0.0
        return self.downlink_bytes * 8.0 / duration_s / 1e6

    def fired_pairs(self) -> Set[Tuple[int, int]]:
        """The set of ``(user_id, alarm_id)`` pairs that fired."""
        return {(event.user_id, event.alarm_id) for event in self.triggers}

    def checks_per_second(self, duration_s: float,
                          client_count: int) -> float:
        """Average containment detections per client per second (Fig. 5b)."""
        if duration_s <= 0 or client_count <= 0:
            return 0.0
        return self.containment_checks / duration_s / client_count

    # ------------------------------------------------------------------
    # Merge contract (the parallel engine's reduction step)
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, float]:
        """Every deterministic scalar counter, by field name.

        Excludes the wall-clock timing fields (machine-dependent) and the
        trigger list (compared structurally) — this is the signature the
        differential tests assert bit-identical across serial and sharded
        runs.
        """
        timing = {"alarm_processing_time_s", "saferegion_time_s"}
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name not in timing and f.name != "triggers"}

    @classmethod
    def merged(cls, parts: Sequence["Metrics"]) -> "Metrics":
        """Combine per-shard metrics into one run's metrics.

        The contract the parallel engine relies on:

        * every scalar counter (and timing bucket) is the exact sum of
          the parts' counters;
        * trigger events are concatenated in part order — shards are
          contiguous slices of the serial replay order, so part-order
          concatenation reproduces the serial trigger sequence exactly;
        * one-shot semantics survive the merge: a ``(user, alarm)`` pair
          fired in two different parts means two shards processed the
          same subscriber, which violates the vehicle-major sharding
          precondition and raises ``ValueError``.
        """
        merged = cls()
        fired: Set[Tuple[int, int]] = set()
        for part in parts:
            for f in fields(cls):
                if f.name == "triggers":
                    continue
                setattr(merged, f.name,
                        getattr(merged, f.name) + getattr(part, f.name))
            for event in part.triggers:
                key = (event.user_id, event.alarm_id)
                if key in fired:
                    raise ValueError(
                        "one-shot violation in merge: alarm %d re-fired "
                        "for user %d across shards" % (event.alarm_id,
                                                       event.user_id))
                fired.add(key)
                merged.triggers.append(event)
        return merged

    def merge(self, other: "Metrics") -> "Metrics":
        """Fold ``other`` into a new :class:`Metrics` (see :meth:`merged`)."""
        return Metrics.merged([self, other])
