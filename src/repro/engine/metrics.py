"""Run metrics: the quantities the paper's figures report.

One :class:`Metrics` object accumulates over a full simulation run of one
processing strategy.  Raw counters live here; derived quantities (energy
in mWh, downstream bandwidth in Mbps) are computed by the energy model
and the reporting layer so the counters stay model-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple


@dataclass(frozen=True)
class TriggerEvent:
    """One alarm firing: ``alarm_id`` fired for ``user_id`` at ``time``."""

    time: float
    user_id: int
    alarm_id: int


@dataclass
class Metrics:
    """Counters accumulated over one simulation run."""

    # Client -> server traffic (the paper's headline metric, Fig. 4a/5a/6a).
    uplink_messages: int = 0
    uplink_bytes: int = 0
    # Server -> client traffic (downstream bandwidth, Fig. 6b).
    downlink_messages: int = 0
    downlink_bytes: int = 0
    trigger_notifications: int = 0
    # Client-side monitoring work (client energy, Fig. 5b/6c).
    containment_checks: int = 0
    containment_ops: int = 0
    # Server-side work split (server processing time, Fig. 4b/6d).
    alarm_processing_time_s: float = 0.0
    saferegion_time_s: float = 0.0
    alarm_evaluations: int = 0
    safe_region_computations: int = 0
    index_node_accesses: int = 0
    # Outcomes.
    triggers: List[TriggerEvent] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def server_time_s(self) -> float:
        """Total server processing time (both components)."""
        return self.alarm_processing_time_s + self.saferegion_time_s

    def downstream_bandwidth_mbps(self, duration_s: float) -> float:
        """Average downstream bandwidth over the run, in megabits/second."""
        if duration_s <= 0:
            return 0.0
        return self.downlink_bytes * 8.0 / duration_s / 1e6

    def fired_pairs(self) -> Set[Tuple[int, int]]:
        """The set of ``(user_id, alarm_id)`` pairs that fired."""
        return {(event.user_id, event.alarm_id) for event in self.triggers}

    def checks_per_second(self, duration_s: float,
                          client_count: int) -> float:
        """Average containment detections per client per second (Fig. 5b)."""
        if duration_s <= 0 or client_count <= 0:
            return 0.0
        return self.containment_checks / duration_s / client_count
