"""Per-phase wall-time profiling of the server's processing pipeline.

The paper's server-load figures report two coarse buckets (alarm
processing vs safe-region computation); making the parallel engine's
speedups *measurable* needs finer resolution.  A :class:`PhaseProfiler`
accumulates wall time and call counts per named phase; the engine
threads one through :class:`~repro.engine.server.AlarmServer` when
profiling is requested, and the strategies mark their work with it.

The phases instrumented by the built-in strategies:

``alarm_processing``    trigger evaluation per received location report
                        (the R*-tree point query plus one-shot filter).
``index_lookup``        alarm-index range/nearest queries feeding a
                        safe-region or safe-period computation.
``saferegion_compute``  the geometric computation proper (MWPSR skyline
                        selection, pyramid bitmap construction, safe
                        period arithmetic, OPT alarm-list assembly).
``encoding``            producing the downlink payload (wire sizing /
                        bitmap serialization accounting).

Profilers merge associatively (:meth:`PhaseProfiler.merge`), so per-shard
profiles from the parallel engine fold into one report; reports are plain
dicts (JSON-ready, picklable across process boundaries).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import ContextManager, Dict, Iterator, Optional, Sequence

#: The phase names the built-in strategies record, in pipeline order.
STANDARD_PHASES = ("alarm_processing", "index_lookup",
                   "saferegion_compute", "encoding")


@dataclass
class PhaseStat:
    """Accumulated cost of one named phase."""

    calls: int = 0
    wall_s: float = 0.0

    def add(self, seconds: float, calls: int = 1) -> None:
        self.calls += calls
        self.wall_s += seconds


class PhaseProfiler:
    """Accumulates per-phase wall time over one (or many merged) runs."""

    def __init__(self) -> None:
        self.phases: Dict[str, PhaseStat] = {}
        # Live nesting depth per phase (see `timed` for the semantics).
        self._depth: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def record(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Charge ``seconds`` of wall time (and ``calls`` calls) to a phase."""
        stat = self.phases.get(phase)
        if stat is None:
            stat = PhaseStat()
            self.phases[phase] = stat
        stat.add(seconds, calls)

    @contextmanager
    def timed(self, phase: str) -> Iterator[None]:
        """Time a block into ``phase``.

        Re-entrancy contract: when spans of the *same* phase nest, only
        the outermost span charges wall time (its inclusive elapsed
        time, charged once); inner spans count a call but contribute
        zero seconds.  Without this, a phase's wall time would
        double-count every nested level and could exceed the run's real
        elapsed time.  Spans of *different* phases nest freely and each
        charges its own inclusive time — the phase totals are therefore
        not additive across phases that nest within each other (e.g.
        ``index_lookup`` inside the safe-region span).
        """
        depth = self._depth.get(phase, 0)
        self._depth[phase] = depth + 1
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._depth[phase] = depth
            self.record(phase, elapsed if depth == 0 else 0.0)

    def span(self, phase: str) -> ContextManager[None]:
        """Alias for :meth:`timed` (the name used in the observability
        docs); identical re-entrancy semantics."""
        return self.timed(phase)

    # ------------------------------------------------------------------
    def merge(self, other: "PhaseProfiler") -> "PhaseProfiler":
        """Fold another profiler's phases into this one (associative)."""
        for phase, stat in other.phases.items():
            self.record(phase, stat.wall_s, stat.calls)
        return self

    @property
    def total_wall_s(self) -> float:
        return sum(stat.wall_s for stat in self.phases.values())

    # ------------------------------------------------------------------
    # Report form: plain dicts, JSON-ready and cheap to ship between
    # processes (the parallel workers return reports, not profilers).
    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"calls": n, "wall_s": t}}``, sorted by phase name."""
        return {phase: {"calls": stat.calls, "wall_s": stat.wall_s}
                for phase, stat in sorted(self.phases.items())}

    @classmethod
    def from_report(cls, report: Optional[Dict[str, Dict[str, float]]]
                    ) -> "PhaseProfiler":
        """Rebuild a profiler from a :meth:`report` dict (None -> empty)."""
        profiler = cls()
        for phase, stat in (report or {}).items():
            profiler.record(phase, stat["wall_s"], int(stat["calls"]))
        return profiler


def merge_reports(reports: Sequence[Optional[Dict[str, Dict[str, float]]]]
                  ) -> Dict[str, Dict[str, float]]:
    """Merge per-shard profile reports into one combined report."""
    merged = PhaseProfiler()
    for report in reports:
        merged.merge(PhaseProfiler.from_report(report))
    return merged.report()
