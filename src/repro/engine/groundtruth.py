"""Ground-truth alarm triggers and accuracy verification.

The paper's accuracy contract: "the parameters adopted for each
processing approach ensure 100% of the alarms are triggered in all
scenarios.  The sequence of alarms to be triggered is determined by a
very high frequency trace of the motion pattern of the vehicles."

We compute that reference sequence directly from the trace: for every
(subscriber, relevant alarm) pair, the first sample whose position lies
strictly inside the alarm region is the expected trigger (one-shot
semantics).  Every strategy run is then scored for recall (missed
alarms), precision (spurious alarms — impossible by construction, but
verified anyway) and timeliness (trigger at exactly the expected
sample).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from ..alarms import AlarmRegistry
from ..mobility import TraceSet
from .metrics import Metrics

TriggerKey = Tuple[int, int]  # (user_id, alarm_id)


def compute_ground_truth(registry: AlarmRegistry,
                         traces: TraceSet) -> Dict[TriggerKey, float]:
    """Expected triggers: ``(user_id, alarm_id) -> first trigger time``.

    Scans every trace sample against the alarm index with the same
    interior-containment trigger test the server uses.
    """
    expected: Dict[TriggerKey, float] = {}
    for trace in traces:
        fired: Set[int] = set()
        for sample in trace:
            triggered = registry.triggered_at(trace.vehicle_id,
                                              sample.position,
                                              exclude_ids=fired)
            for alarm in triggered:
                fired.add(alarm.alarm_id)
                expected[(trace.vehicle_id, alarm.alarm_id)] = sample.time
    return expected


@dataclass(frozen=True)
class AccuracyReport:
    """How a strategy run compares to the ground truth."""

    expected: int
    delivered: int
    missed: int
    spurious: int
    late: int

    @property
    def recall(self) -> float:
        """Fraction of expected triggers delivered (the paper's accuracy)."""
        if self.expected == 0:
            return 1.0
        return (self.expected - self.missed) / self.expected

    @property
    def perfect(self) -> bool:
        """100% recall, nothing spurious, every trigger on time."""
        return self.missed == 0 and self.spurious == 0 and self.late == 0


def verify_accuracy(expected: Dict[TriggerKey, float],
                    metrics: Metrics) -> AccuracyReport:
    """Score a run's delivered triggers against the ground truth."""
    delivered: Dict[TriggerKey, float] = {}
    for event in metrics.triggers:
        key = (event.user_id, event.alarm_id)
        if key not in delivered:
            delivered[key] = event.time
    missed = sum(1 for key in expected if key not in delivered)
    spurious = sum(1 for key in delivered if key not in expected)
    late = sum(1 for key, time_s in delivered.items()
               if key in expected and time_s != expected[key])
    return AccuracyReport(expected=len(expected), delivered=len(delivered),
                          missed=missed, spurious=spurious, late=late)
