"""Dynamic alarm lifecycle: installing and removing alarms mid-run.

The paper evaluates a static alarm population, but a deployed spatial
alarm service installs and cancels alarms continuously.  Distributing
safe regions makes this a coordination problem: a client silently
cruising inside its safe region knows nothing about an alarm installed
in front of it.  This module supplies the missing machinery:

* an :class:`AlarmSchedule` of timed install/remove actions;
* :func:`run_dynamic_simulation`, a time-major replay that applies due
  actions each step and *push-invalidates* exactly the clients whose
  cached state the action made stale — on install, every relevant client
  whose cell the new alarm touches (safe regions are cell-scoped) plus
  every client holding a non-geometric bound (the safe-period timer); on
  removal, every client locally holding the alarm (the OPT push list),
  which would otherwise fire it spuriously;
* :func:`compute_dynamic_ground_truth`, the reference trigger set under
  alarm lifetimes (an alarm can only fire while installed).

Invalidation is counted as one downlink push (header-sized) per client;
the invalidated client re-synchronizes on its next position fix, which
is also the earliest sample at which any new alarm could trigger — so
the accuracy contract (zero misses, on-time triggers) extends to the
dynamic setting, and the test suite asserts it.

Runs clone the world's registry, so the (memoized) world is untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, Iterable, List, Optional, Set,
                    Tuple, Union)

from ..alarms import AlarmRegistry, AlarmScope, SpatialAlarm
from ..geometry import Rect
from ..protocol.messages import InvalidateState
from ..protocol.transport import ClientSession, connect
from .groundtruth import verify_accuracy
from .metrics import Metrics
from .server import AlarmServer
from .simulation import GroundTruth, SimulationResult, World

if TYPE_CHECKING:  # runtime import would cycle through strategies.base
    from ..strategies.base import ClientState, ProcessingStrategy


@dataclass(frozen=True)
class InstallAction:
    """Install a new alarm at ``time`` (seconds into the run)."""

    time: float
    region: Rect
    scope: AlarmScope
    owner_id: int
    subscribers: Tuple[int, ...] = ()
    label: Optional[str] = None


@dataclass(frozen=True)
class RemoveAction:
    """Remove an alarm at ``time``.

    ``install_index`` refers to the position of the corresponding
    :class:`InstallAction` in the schedule (actions create alarms with
    run-local ids, so references are by schedule position); use ``None``
    in ``alarm_id`` -mode to remove a pre-installed alarm by its id.
    """

    time: float
    install_index: Optional[int] = None
    alarm_id: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.install_index is None) == (self.alarm_id is None):
            raise ValueError(
                "specify exactly one of install_index / alarm_id")


#: Either lifecycle action kind; schedules hold a mix of both.
ScheduleAction = Union[InstallAction, RemoveAction]


class AlarmSchedule:
    """A time-ordered list of alarm lifecycle actions."""

    def __init__(self, actions: Iterable[ScheduleAction]) -> None:
        actions = list(actions)
        for action in actions:
            if not isinstance(action, (InstallAction, RemoveAction)):
                raise TypeError("unknown schedule action: %r" % (action,))
        self.actions = sorted(actions, key=lambda action: action.time)
        install_count = -1
        for action in self.actions:
            if isinstance(action, InstallAction):
                install_count += 1
            elif isinstance(action, RemoveAction):
                if (action.install_index is not None
                        and action.install_index > install_count):
                    raise ValueError(
                        "removal at t=%g references install #%d which is "
                        "not yet scheduled" % (action.time,
                                               action.install_index))

    def due(self, start: float, end: float) -> List[ScheduleAction]:
        """Actions with ``start <= time < end``, in order."""
        return [action for action in self.actions
                if start <= action.time < end]

    def __len__(self) -> int:
        return len(self.actions)


def _clone_registry(registry: AlarmRegistry) -> AlarmRegistry:
    """A fresh registry with identical alarms and identical ids."""
    clone = AlarmRegistry()
    for alarm in registry.all_alarms():
        installed = clone.install(alarm.region, alarm.scope, alarm.owner_id,
                                  subscribers=alarm.subscribers,
                                  moving_target=alarm.moving_target,
                                  label=alarm.label)
        assert installed.alarm_id == alarm.alarm_id
    return clone


class _ScheduleApplier:
    """Applies schedule actions to a registry, tracking run-local ids."""

    def __init__(self, registry: AlarmRegistry,
                 schedule: AlarmSchedule) -> None:
        self.registry = registry
        self.schedule = schedule
        self.installed_ids: List[int] = []

    def apply(self, start: float,
              end: float) -> Tuple[List[SpatialAlarm], List[int]]:
        """Apply due actions; returns (installed alarms, removed ids)."""
        installed: List[SpatialAlarm] = []
        removed: List[int] = []
        for action in self.schedule.due(start, end):
            if isinstance(action, InstallAction):
                alarm = self.registry.install(
                    action.region, action.scope, action.owner_id,
                    subscribers=action.subscribers, label=action.label)
                self.installed_ids.append(alarm.alarm_id)
                installed.append(alarm)
            else:
                if action.install_index is not None:
                    alarm_id = self.installed_ids[action.install_index]
                else:
                    assert action.alarm_id is not None  # __post_init__
                    alarm_id = action.alarm_id
                if self.registry.remove(alarm_id):
                    removed.append(alarm_id)
        return installed, removed


def compute_dynamic_ground_truth(world: World,
                                 schedule: AlarmSchedule) -> GroundTruth:
    """Expected triggers under the schedule's alarm lifetimes."""
    registry = _clone_registry(world.registry)
    applier = _ScheduleApplier(registry, schedule)
    interval = world.traces.sample_interval
    max_steps = max((len(trace) for trace in world.traces), default=0)
    fired: Dict[int, Set[int]] = {trace.vehicle_id: set()
                                  for trace in world.traces}
    expected: Dict[Tuple[int, int], float] = {}
    previous_time = float("-inf")
    for step in range(max_steps):
        step_time = step * interval
        applier.apply(previous_time, step_time + interval / 2.0)
        previous_time = step_time + interval / 2.0
        for trace in world.traces:
            if step >= len(trace):
                continue
            sample = trace[step]
            user_fired = fired[trace.vehicle_id]
            for alarm in registry.triggered_at(trace.vehicle_id,
                                               sample.position,
                                               exclude_ids=user_fired):
                user_fired.add(alarm.alarm_id)
                expected[(trace.vehicle_id, alarm.alarm_id)] = sample.time
    return expected


def run_dynamic_simulation(world: World, strategy: "ProcessingStrategy",
                           schedule: AlarmSchedule) -> SimulationResult:
    """Time-major replay with lifecycle actions and push invalidation."""
    from ..strategies.base import ClientState  # local import: avoid cycle

    registry = _clone_registry(world.registry)
    applier = _ScheduleApplier(registry, schedule)
    metrics = Metrics()
    server = AlarmServer(registry, world.grid, metrics, sizes=world.sizes)
    session = connect(server, strategy)
    clients = {trace.vehicle_id: ClientState(trace.vehicle_id)
               for trace in world.traces}
    interval = world.traces.sample_interval
    max_steps = max((len(trace) for trace in world.traces), default=0)

    started = time.perf_counter()
    previous_time = float("-inf")
    for step in range(max_steps):
        step_time = step * interval
        installed, removed = applier.apply(previous_time,
                                           step_time + interval / 2.0)
        previous_time = step_time + interval / 2.0
        for alarm in installed:
            for client in clients.values():
                if _stale_after_install(client, alarm):
                    _invalidate(client, session, step_time)
        for alarm_id in removed:
            for client in clients.values():
                if any(record.alarm_id == alarm_id
                       for record in client.local_alarms):
                    _invalidate(client, session, step_time)
        for trace in world.traces:
            if step < len(trace):
                strategy.on_sample(clients[trace.vehicle_id], trace[step])
    wall_time = time.perf_counter() - started

    accuracy = verify_accuracy(compute_dynamic_ground_truth(world, schedule),
                               metrics)
    return SimulationResult(strategy_name=strategy.name, metrics=metrics,
                            accuracy=accuracy,
                            duration_s=world.duration_s,
                            client_count=len(world.traces),
                            total_samples=world.traces.total_samples,
                            wall_time_s=wall_time,
                            energy_model=world.energy)


def _stale_after_install(client: "ClientState",
                         alarm: SpatialAlarm) -> bool:
    """Does a fresh install make this client's cached state unsafe?"""
    if not alarm.is_relevant_to(client.user_id):
        return False
    has_state = (client.safe_region is not None
                 or client.cell_rect is not None
                 or client.expiry > float("-inf")
                 or bool(client.local_alarms))
    if not has_state:
        return False
    if client.cell_rect is not None:
        # Safe regions and OPT alarm lists are scoped to the client's
        # grid cell: alarms elsewhere cannot invalidate them.
        return client.cell_rect.intersects(alarm.region)
    return True  # non-geometric state (safe-period timer): always stale


def _invalidate(client: "ClientState", session: ClientSession,
                time_s: float) -> None:
    """Server push: drop the client's cached state; it re-syncs next fix."""
    telemetry = session.telemetry
    if telemetry.enabled and client.region_installed_at is not None:
        telemetry.saferegion_exit(time_s, client.user_id,
                                  time_s - client.region_installed_at)
    client.safe_region = None
    client.cell_rect = None
    client.expiry = float("-inf")
    client.local_alarms = []
    client.region_installed_at = None
    # Header-only InvalidateState push; the transport charges its bytes.
    session.transport.push(client.user_id, InvalidateState(), time_s)
