"""The trace-driven client-server simulation.

A :class:`World` bundles everything a run needs — universe, grid
overlay, installed alarms, vehicle traces — and caches the ground truth
so every strategy is scored against the identical reference.
:func:`run_simulation` replays the trace set through one strategy and
returns the metrics plus the accuracy report.

Vehicles do not interact (alarm targets are static within a run and
one-shot state is per subscriber), so traces are replayed vehicle-major,
which keeps each client's state hot.  :func:`run_interleaved_simulation`
replays time-major instead and accepts a per-step world mutation hook —
the path used by the moving-alarm-target extension, where an alarm
relocation must be observed by all clients in timestamp order.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..alarms import AlarmRegistry
from ..geometry import Rect
from ..index import GridOverlay
from ..mobility import TraceSet
from ..protocol.transport import (InProcessTransport, TransportFactory,
                                  connect)
from ..sanitize import DISABLED as SANITIZER_OFF
from ..sanitize import Sanitizer
from ..telemetry.facade import DISABLED, Telemetry
from .energy import EnergyModel
from .groundtruth import (AccuracyReport, TriggerKey, compute_ground_truth,
                          verify_accuracy)
from .metrics import Metrics
from .network import MessageSizes
from .profiling import PhaseProfiler
from .server import AlarmServer

if TYPE_CHECKING:  # runtime import would cycle through strategies.base
    from ..strategies.base import ProcessingStrategy

#: Ground truth: ``(user_id, alarm_id) -> expected trigger time``.
GroundTruth = Dict[TriggerKey, float]


class World:
    """Immutable-by-convention bundle of one experiment's inputs."""

    def __init__(self, universe: Rect, grid: GridOverlay,
                 registry: AlarmRegistry, traces: TraceSet,
                 sizes: MessageSizes = MessageSizes(),
                 energy: EnergyModel = EnergyModel(),
                 ground_truth_supplier: Optional[Callable[[], GroundTruth]]
                 = None) -> None:
        self.universe = universe
        self.grid = grid
        self.registry = registry
        self.traces = traces
        self.sizes = sizes
        self.energy = energy
        self._ground_truth: Optional[GroundTruth] = None
        # Optional externally-memoized supplier so worlds differing only
        # in grid size can share the (grid-independent) ground truth.
        self._ground_truth_supplier = ground_truth_supplier

    @property
    def user_ids(self) -> List[int]:
        return self.traces.vehicle_ids()

    @property
    def duration_s(self) -> float:
        return self.traces.duration()

    def max_speed(self) -> float:
        """Pessimistic system-wide speed bound for the SP baseline.

        A real deployment would use the regulatory speed cap; we use the
        trace's realized maximum, which is the tightest bound that is
        still guaranteed pessimistic.
        """
        return self.traces.max_speed()

    def ground_truth(self) -> GroundTruth:
        """Expected triggers, computed once and shared across runs."""
        if self._ground_truth is None:
            if self._ground_truth_supplier is not None:
                self._ground_truth = self._ground_truth_supplier()
            else:
                self._ground_truth = compute_ground_truth(self.registry,
                                                          self.traces)
        return self._ground_truth


@dataclass
class SimulationResult:
    """Everything a strategy run produced."""

    strategy_name: str
    metrics: Metrics
    accuracy: AccuracyReport
    duration_s: float
    client_count: int
    total_samples: int
    wall_time_s: float
    energy_model: EnergyModel
    #: Per-phase profile report (``PhaseProfiler.report()``), present only
    #: when the run was profiled.
    profile: Optional[Dict[str, Dict[str, float]]] = None
    #: Worker count of the sharded engine (1 for serial runs).
    workers: int = 1

    @property
    def client_energy_mwh(self) -> float:
        return self.energy_model.client_energy_mwh(self.metrics)

    @property
    def downstream_bandwidth_mbps(self) -> float:
        return self.metrics.downstream_bandwidth_mbps(self.duration_s)

    @property
    def message_fraction(self) -> float:
        """Uplink messages as a fraction of all location fixes.

        The paper's "less than 3% of messages need to be communicated to
        the server" claim is stated in this unit.
        """
        if self.total_samples == 0:
            return 0.0
        return self.metrics.uplink_messages / self.total_samples


def sanitize_transport_factory(
        factory: Optional[TransportFactory]) -> TransportFactory:
    """The transport a sanitized run uses when none was chosen.

    A caller-supplied factory is respected as-is; the default in-process
    transport is upgraded to its wire-verifying variant, so every
    message's accounted size is checked against ``len(encode(...))``.
    """
    if factory is not None:
        return factory
    return functools.partial(InProcessTransport, verify_wire=True)


def replay_vehicle_major(strategy: "ProcessingStrategy",
                         traces: TraceSet,
                         sanitizer: Optional[Sanitizer] = None,
                         use_batch: bool = False) -> None:
    """The core replay loop: each vehicle's trace, one client at a time.

    Shared by the serial engine and every shard of the parallel engine —
    determinism of the sharded path reduces to this loop visiting the
    same vehicles in the same order within each contiguous shard.

    ``use_batch`` hands each client's whole trace to the strategy's
    :meth:`~repro.strategies.base.ProcessingStrategy.on_batch` as one
    SoA :class:`~repro.mobility.batch.SampleBatch` instead of sample by
    sample.  The batch contract requires observational identity — same
    messages in the same order, same counter totals — so both modes
    produce bit-identical runs; the differential suite
    (``tests/engine/test_batch_equivalence.py``) enforces it.
    """
    from ..strategies.base import ClientState  # local import: avoid cycle
    from ..strategies.base import ProcessingStrategy

    sanitizer = sanitizer if sanitizer is not None else SANITIZER_OFF
    # Building the SoA batch costs O(samples); a strategy that kept the
    # default on_batch (the scalar loop) would never read it, so batch
    # mode only engages for strategies that actually override it.
    if use_batch and (type(strategy).on_batch
                      is not ProcessingStrategy.on_batch):
        for trace in traces:
            client = ClientState(trace.vehicle_id)
            batch = trace.batch()
            if len(batch) == 0:
                continue
            if sanitizer.enabled:
                sanitizer.check_clock_batch(trace.vehicle_id, batch.times)
            strategy.on_batch(client, batch)
        return
    for trace in traces:
        client = ClientState(trace.vehicle_id)
        for sample in trace:
            if sanitizer.enabled:
                sanitizer.check_clock(trace.vehicle_id, sample.time)
            strategy.on_sample(client, sample)


def run_simulation(world: World, strategy: "ProcessingStrategy",
                   use_cell_cache: bool = False,
                   profiler: Optional[PhaseProfiler] = None,
                   telemetry: Optional[Telemetry] = None,
                   transport_factory: Optional[TransportFactory] = None,
                   use_region_cache: bool = False,
                   sanitize: Optional[bool] = None,
                   use_batch: bool = False
                   ) -> SimulationResult:
    """Replay the world's traces through ``strategy`` and score the run.

    ``use_cell_cache`` enables the server's per-cell alarm cache (see
    :class:`~repro.alarms.CellAlarmCache`) — identical results, less
    index work per safe-region computation.  ``use_region_cache``
    enables the cell-keyed safe-region memo (see
    :class:`~repro.saferegion.cache.SafeRegionCache`) — identical
    messages and bytes, fewer bitmap computations when many users share
    cells.  ``transport_factory`` selects the link between the
    strategy's client half and the server (default: the reliable
    in-process transport; pass a :class:`~repro.protocol.transport.LossyTransport`
    factory to simulate drops and retries).  ``profiler`` attaches
    per-phase wall-time accounting (see :mod:`repro.engine.profiling`);
    the report lands on ``result.profile``.  ``telemetry`` attaches the
    structured telemetry facade (see :mod:`repro.telemetry`); ``None``
    means the shared disabled facade, whose per-site cost is one
    attribute check.  ``sanitize`` attaches the runtime invariant
    sanitizer (see :mod:`repro.sanitize`); ``None`` consults
    ``REPRO_SANITIZE``, and a disabled run carries the shared no-op
    sanitizer at the same one-attribute-check cost.  ``use_batch``
    replays through the vectorized batch kernels (see
    ``docs/VECTORIZATION.md``); results are bit-identical to the
    scalar replay — the flag trades nothing but speed.
    """
    telemetry = telemetry if telemetry is not None else DISABLED
    sanitizer = Sanitizer.resolve(sanitize)
    if sanitizer.enabled:
        sanitizer.snapshot_geometry(world.registry)
        transport_factory = sanitize_transport_factory(transport_factory)
    metrics = Metrics()
    server = AlarmServer(world.registry, world.grid, metrics,
                         sizes=world.sizes, use_cell_cache=use_cell_cache,
                         use_region_cache=use_region_cache,
                         profiler=profiler, telemetry=telemetry,
                         use_batch=use_batch)
    connect(server, strategy, transport_factory)
    if telemetry.enabled:
        telemetry.shard_started(len(world.traces))
    started = time.perf_counter()
    try:
        replay_vehicle_major(strategy, world.traces, sanitizer,
                             use_batch=use_batch)
    finally:
        server.close()
    wall_time = time.perf_counter() - started
    if sanitizer.enabled:
        sanitizer.verify_geometry(world.registry)
    if telemetry.enabled:
        telemetry.shard_finished(len(world.traces), wall_time)

    accuracy = verify_accuracy(world.ground_truth(), metrics)
    return SimulationResult(strategy_name=strategy.name, metrics=metrics,
                            accuracy=accuracy,
                            duration_s=world.duration_s,
                            client_count=len(world.traces),
                            total_samples=world.traces.total_samples,
                            wall_time_s=wall_time,
                            energy_model=world.energy,
                            profile=(profiler.report() if profiler is not None
                                     else None))


def run_interleaved_simulation(
        world: World, strategy: "ProcessingStrategy",
        on_step: Optional[Callable[[int, float, AlarmServer], None]] = None,
        telemetry: Optional[Telemetry] = None,
        transport_factory: Optional[TransportFactory] = None,
        sanitize: Optional[bool] = None
) -> SimulationResult:
    """Time-major replay with an optional per-step world mutation hook.

    ``on_step(step_index, time_s, server)`` runs before the step's
    samples are processed; it may relocate moving alarm targets through
    the registry.  Ground-truth verification is skipped when a hook is
    present (the reference trigger set is no longer static); the
    accuracy report then scores against the world's initial alarm
    placement and is advisory only.
    """
    from ..strategies.base import ClientState  # local import: avoid cycle

    telemetry = telemetry if telemetry is not None else DISABLED
    sanitizer = Sanitizer.resolve(sanitize)
    if sanitizer.enabled:
        transport_factory = sanitize_transport_factory(transport_factory)
        if on_step is None:
            # A mutation hook relocates alarms through the registry API
            # on purpose; the frozen-geometry check only holds without.
            sanitizer.snapshot_geometry(world.registry)
    metrics = Metrics()
    server = AlarmServer(world.registry, world.grid, metrics,
                         sizes=world.sizes, telemetry=telemetry)
    connect(server, strategy, transport_factory)
    clients = {trace.vehicle_id: ClientState(trace.vehicle_id)
               for trace in world.traces}
    max_steps = max((len(trace) for trace in world.traces), default=0)

    if telemetry.enabled:
        telemetry.shard_started(len(world.traces))
    started = time.perf_counter()
    for step in range(max_steps):
        step_time = step * world.traces.sample_interval
        if on_step is not None:
            on_step(step, step_time, server)
        for trace in world.traces:
            if step < len(trace):
                if sanitizer.enabled:
                    sanitizer.check_clock(trace.vehicle_id,
                                          trace[step].time)
                strategy.on_sample(clients[trace.vehicle_id], trace[step])
    wall_time = time.perf_counter() - started
    if telemetry.enabled:
        telemetry.shard_finished(len(world.traces), wall_time)
    if sanitizer.enabled:
        sanitizer.verify_geometry(world.registry)

    accuracy = verify_accuracy(world.ground_truth(), metrics)
    return SimulationResult(strategy_name=strategy.name, metrics=metrics,
                            accuracy=accuracy,
                            duration_s=world.duration_s,
                            client_count=len(world.traces),
                            total_samples=world.traces.total_samples,
                            wall_time_s=wall_time,
                            energy_model=world.energy)
