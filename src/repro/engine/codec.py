"""Compatibility shim: the codec moved to :mod:`repro.protocol.wire`.

The wire-format functions grew into the protocol package's codec layer
(typed messages in :mod:`repro.protocol.messages`, byte layout and the
:class:`~repro.protocol.wire.WireCodec` in :mod:`repro.protocol.wire`).
This module re-exports the original flat API so pre-protocol call sites
— notably the wire-true client monitor in
:mod:`repro.saferegion.containment` and external notebooks — keep
working unchanged.
"""

from __future__ import annotations

from ..protocol.messages import LocationReport
from ..protocol.wire import (MessageType, decode_alarm_push,
                             decode_bitmap_region, decode_location,
                             decode_rect_region, decode_safe_period,
                             encode_alarm_push, encode_bitmap_region,
                             encode_location, encode_rect_region,
                             encode_safe_period, peek_type)

__all__ = [
    "MessageType", "LocationReport",
    "encode_location", "decode_location",
    "encode_rect_region", "decode_rect_region",
    "encode_safe_period", "decode_safe_period",
    "encode_alarm_push", "decode_alarm_push",
    "encode_bitmap_region", "decode_bitmap_region",
    "peek_type",
]
