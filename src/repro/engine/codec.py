"""Wire-format codec for the client-server protocol.

The simulation charges bandwidth through the byte constants in
:class:`~repro.engine.network.MessageSizes`; this module is the actual
encoding those constants describe, so the cost model is not hand-waved:
every message type round-trips through real bytes, and the test suite
asserts that the encoded lengths match what ``MessageSizes`` charges.

Layout conventions: little-endian, fixed-width header of
``(message_type: u8, reserved: u8, length: u16, sender: u32,
timestamp: f64)`` = 16 bytes on downlinks; the uplink location report is
a bare 32-byte struct (the header fields are folded into it).  Bitmap
payloads carry the pyramid geometry needed to decode them (base-cell
reference and bit count) followed by the packed bits.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import List, Tuple

from ..geometry import Point, Rect
from ..index import Pyramid
from ..saferegion.bitmap import PyramidBitmap, decode_bitstring

_UPLINK = struct.Struct("<IIddff")          # 32 bytes
_HEADER = struct.Struct("<BBHId")           # 16 bytes
_RECT = struct.Struct("<dddd")              # 32 bytes
_SAFE_PERIOD = struct.Struct("<d")          # 8 bytes
_ALARM_FIXED = struct.Struct("<Qdddd")      # 40 bytes: id + rect
_BITMAP_FIXED = struct.Struct("<QI")        # 12 bytes: cell ref + bit count


class MessageType(IntEnum):
    """Downlink message discriminators."""

    RECT_SAFE_REGION = 1
    BITMAP_SAFE_REGION = 2
    SAFE_PERIOD = 3
    ALARM_PUSH = 4


@dataclass(frozen=True)
class LocationReport:
    """Client -> server position fix."""

    user_id: int
    sequence: int
    position: Point
    heading: float
    speed: float


def encode_location(report: LocationReport) -> bytes:
    """Encode an uplink location report (32 bytes)."""
    return _UPLINK.pack(report.user_id, report.sequence,
                        report.position.x, report.position.y,
                        report.heading, report.speed)


def decode_location(payload: bytes) -> LocationReport:
    """Decode an uplink location report."""
    user_id, sequence, x, y, heading, speed = _UPLINK.unpack(payload)
    return LocationReport(user_id=user_id, sequence=sequence,
                          position=Point(x, y), heading=heading,
                          speed=speed)


def _header(message_type: MessageType, payload_length: int, sender: int,
            timestamp: float) -> bytes:
    if payload_length > 0xFFFF:
        raise ValueError("payload too large for the 16-bit length field")
    return _HEADER.pack(int(message_type), 0, payload_length, sender,
                        timestamp)


def _split_header(data: bytes) -> Tuple[MessageType, int, float, bytes]:
    message_type, _, length, sender, timestamp = _HEADER.unpack(
        data[:_HEADER.size])
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise ValueError("payload length mismatch: header says %d, got %d"
                         % (length, len(payload)))
    return MessageType(message_type), sender, timestamp, payload


# ----------------------------------------------------------------------
# Rectangular safe region
# ----------------------------------------------------------------------
def encode_rect_region(rect: Rect, sender: int = 0,
                       timestamp: float = 0.0) -> bytes:
    """Encode a rectangular safe-region downlink (16 + 32 bytes)."""
    payload = _RECT.pack(rect.min_x, rect.min_y, rect.max_x, rect.max_y)
    return _header(MessageType.RECT_SAFE_REGION, len(payload), sender,
                   timestamp) + payload


def decode_rect_region(data: bytes) -> Rect:
    message_type, _, _, payload = _split_header(data)
    if message_type is not MessageType.RECT_SAFE_REGION:
        raise ValueError("not a rectangular safe-region message")
    return Rect(*_RECT.unpack(payload))


# ----------------------------------------------------------------------
# Safe period
# ----------------------------------------------------------------------
def encode_safe_period(expiry: float, sender: int = 0,
                       timestamp: float = 0.0) -> bytes:
    """Encode a safe-period downlink (16 + 8 bytes)."""
    payload = _SAFE_PERIOD.pack(expiry)
    return _header(MessageType.SAFE_PERIOD, len(payload), sender,
                   timestamp) + payload


def decode_safe_period(data: bytes) -> float:
    message_type, _, _, payload = _split_header(data)
    if message_type is not MessageType.SAFE_PERIOD:
        raise ValueError("not a safe-period message")
    return _SAFE_PERIOD.unpack(payload)[0]


# ----------------------------------------------------------------------
# Alarm push (the OPT strategy)
# ----------------------------------------------------------------------
def encode_alarm_push(cell: Rect, alarms: List[Tuple[int, Rect]],
                      alert_payload_bytes: int = 216, sender: int = 0,
                      timestamp: float = 0.0) -> bytes:
    """Encode an OPT alarm push.

    Each alarm entry carries its id, region and ``alert_payload_bytes``
    of opaque alert content (the text/media the client must be able to
    raise without contacting the server).  The default entry size
    (40 + 216 = 256 bytes) matches ``MessageSizes.alarm_entry``.
    """
    parts = [_RECT.pack(cell.min_x, cell.min_y, cell.max_x, cell.max_y)]
    for alarm_id, region in alarms:
        parts.append(_ALARM_FIXED.pack(alarm_id, region.min_x, region.min_y,
                                       region.max_x, region.max_y))
        parts.append(bytes(alert_payload_bytes))
    payload = b"".join(parts)
    return _header(MessageType.ALARM_PUSH, len(payload), sender,
                   timestamp) + payload


def decode_alarm_push(data: bytes, alert_payload_bytes: int = 216
                      ) -> Tuple[Rect, List[Tuple[int, Rect]]]:
    message_type, _, _, payload = _split_header(data)
    if message_type is not MessageType.ALARM_PUSH:
        raise ValueError("not an alarm-push message")
    cell = Rect(*_RECT.unpack(payload[:_RECT.size]))
    cursor = _RECT.size
    entry_size = _ALARM_FIXED.size + alert_payload_bytes
    alarms: List[Tuple[int, Rect]] = []
    while cursor < len(payload):
        alarm_id, min_x, min_y, max_x, max_y = _ALARM_FIXED.unpack(
            payload[cursor:cursor + _ALARM_FIXED.size])
        alarms.append((alarm_id, Rect(min_x, min_y, max_x, max_y)))
        cursor += entry_size
    return cell, alarms


# ----------------------------------------------------------------------
# Bitmap safe region
# ----------------------------------------------------------------------
def encode_bitmap_region(cell_ref: int, bitmap: PyramidBitmap,
                         sender: int = 0, timestamp: float = 0.0) -> bytes:
    """Encode a bitmap safe-region downlink.

    ``cell_ref`` identifies the base grid cell (the client derives the
    cell rectangle and pyramid geometry from its grid parameters).  The
    bit count travels explicitly so the final partial byte is
    unambiguous; total size is 16 + 12 + ceil(bits/8) bytes, matching
    ``MessageSizes.bitmap_message``.
    """
    bits = bitmap.to_bitstring()
    packed = bytearray((len(bits) + 7) // 8)
    for index, bit in enumerate(bits):
        if bit == "1":
            packed[index // 8] |= 1 << (7 - index % 8)
    payload = _BITMAP_FIXED.pack(cell_ref, len(bits)) + bytes(packed)
    return _header(MessageType.BITMAP_SAFE_REGION, len(payload), sender,
                   timestamp) + payload


def decode_bitmap_region(data: bytes, pyramid: Pyramid
                         ) -> Tuple[int, PyramidBitmap]:
    """Decode a bitmap downlink against the client's pyramid geometry."""
    message_type, _, _, payload = _split_header(data)
    if message_type is not MessageType.BITMAP_SAFE_REGION:
        raise ValueError("not a bitmap safe-region message")
    cell_ref, bit_count = _BITMAP_FIXED.unpack(
        payload[:_BITMAP_FIXED.size])
    packed = payload[_BITMAP_FIXED.size:]
    bits: List[str] = []
    for index in range(bit_count):
        byte = packed[index // 8]
        bits.append("1" if byte & (1 << (7 - index % 8)) else "0")
    return cell_ref, decode_bitstring(pyramid, "".join(bits))


def peek_type(data: bytes) -> MessageType:
    """Message type of an encoded downlink without full decoding."""
    return MessageType(data[0])
