"""Wire-format codec for the typed protocol messages.

This module owns the byte layout of every message in
:mod:`repro.protocol.messages` and is the *source of truth* for message
sizes: :class:`~repro.engine.network.MessageSizes` defaults are derived
from the struct sizes exported here, and :meth:`WireCodec.size_of_request`
/ :meth:`WireCodec.size_of_response` compute a payload's accounted byte
cost from the same layout that :meth:`WireCodec.encode_response`
serializes — so "bytes charged" equals "bytes on the wire" by
construction (a property the wire-fidelity suite asserts by encoding).

Layout conventions: little-endian, fixed-width header of
``(message_type: u8, reserved: u8, length: u16, sender: u32,
timestamp: f64)`` = 16 bytes on downlinks; the uplink location report is
a bare 32-byte struct (the header fields are folded into it).  A
region-exit report is wire-identical to a location report except for the
top bit of the sequence field (:data:`EXIT_FLAG`).  Bitmap payloads
carry the pyramid geometry needed to decode them (base-cell reference
and bit count) followed by the packed bits.
"""

from __future__ import annotations

import dataclasses
import struct
from enum import IntEnum
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..geometry import Rect, Point
from .messages import (AlarmNotification, AlarmRecord, InstallAlarmList,
                       InstallSafePeriod, InstallSafeRegion,
                       InvalidateState, LocationReport, RegionExitReport,
                       Request, Response)

if TYPE_CHECKING:  # typing only: the codec stays import-light at runtime
    from ..engine.network import MessageSizes
    from ..index import Pyramid
    from ..saferegion.bitmap import PyramidBitmap

_UPLINK = struct.Struct("<IIddff")          # 32 bytes
_HEADER = struct.Struct("<BBHId")           # 16 bytes
_RECT = struct.Struct("<dddd")              # 32 bytes
_SAFE_PERIOD = struct.Struct("<d")          # 8 bytes
_ALARM_FIXED = struct.Struct("<Qdddd")      # 40 bytes: id + rect
_BITMAP_FIXED = struct.Struct("<QI")        # 12 bytes: cell ref + bit count

#: Struct-derived sizes.  ``MessageSizes`` defaults point here, so the
#: accounting constants cannot drift from the actual encoding.
UPLINK_LOCATION_SIZE = _UPLINK.size
DOWNLINK_HEADER_SIZE = _HEADER.size
RECT_PAYLOAD_SIZE = _RECT.size
SAFE_PERIOD_PAYLOAD_SIZE = _SAFE_PERIOD.size
ALARM_FIXED_SIZE = _ALARM_FIXED.size
BITMAP_FIXED_SIZE = _BITMAP_FIXED.size

#: Opaque alert content shipped with each OPT alarm entry (the
#: text/media a client must raise without contacting the server); the
#: default makes one entry 40 + 216 = 256 bytes.
DEFAULT_ALERT_PAYLOAD_BYTES = 216
DEFAULT_ALARM_ENTRY_SIZE = ALARM_FIXED_SIZE + DEFAULT_ALERT_PAYLOAD_BYTES

#: Top bit of the uplink sequence field: set on region-exit reports.
EXIT_FLAG = 0x8000_0000

#: Declarative per-message field layout: for every protocol message
#: class, the wire values it serializes, in wire order, named by the
#: dataclass field they come from (``position.x`` is the ``x``
#: component of field ``position``).  Dropping the component suffixes
#: and deduplicating yields the dataclass's declared field order —
#: :func:`verify_field_layouts` asserts exactly that, plus, for the
#: fixed-layout messages, that the value count matches the struct.
#: The PA001 analyzer checks the same table statically, so a field
#: added to a dataclass without a layout (or vice versa) fails both
#: the unit suite and ``repro analyze``.
FIELD_LAYOUTS: Dict[str, Tuple[str, ...]] = {
    "LocationReport": ("user_id", "sequence", "position.x",
                       "position.y", "heading", "speed"),
    "RegionExitReport": ("user_id", "sequence", "position.x",
                         "position.y", "heading", "speed"),
    "InstallSafeRegion": ("rect", "cell_ref", "bitmap"),
    "InstallSafePeriod": ("expiry",),
    "AlarmRecord": ("alarm_id", "region.min_x", "region.min_y",
                    "region.max_x", "region.max_y"),
    "InstallAlarmList": ("cell", "alarms"),
    "AlarmNotification": ("alarm_id",),
    "InvalidateState": (),
}

#: The fixed struct serializing each fixed-layout message (variable
#: or multi-representation payloads — bitmaps, alarm lists — have no
#: single struct and are checked by the wire-fidelity suite instead).
_LAYOUT_STRUCTS: Dict[str, struct.Struct] = {
    "LocationReport": _UPLINK,
    "RegionExitReport": _UPLINK,
    "InstallSafePeriod": _SAFE_PERIOD,
    "AlarmRecord": _ALARM_FIXED,
}


def _layout_field_order(layout: Tuple[str, ...]) -> Tuple[str, ...]:
    """Dataclass field order implied by a layout's dotted names."""
    order: List[str] = []
    for name in layout:
        first = name.split(".", 1)[0]
        if first not in order:
            order.append(first)
    return tuple(order)


def verify_field_layouts(
        layouts: Optional[Dict[str, Tuple[str, ...]]] = None
) -> List[str]:
    """Cross-check :data:`FIELD_LAYOUTS` against the message classes.

    Returns a list of human-readable problems (empty when the layouts
    agree).  Three properties are checked per entry: the named class
    exists and is a dataclass, the layout's implied field order equals
    the dataclass's declared order, and — for fixed-layout messages —
    the layout's value count matches the struct's.  Additionally every
    ``Request``/``Response`` union member must have an entry.

    ``layouts`` defaults to the module table; tests inject corrupted
    tables to assert the comparison actually bites.
    """
    from typing import get_args

    from . import messages

    table = layouts if layouts is not None else FIELD_LAYOUTS
    problems: List[str] = []
    for name, layout in sorted(table.items()):
        cls = getattr(messages, name, None)
        if cls is None or not dataclasses.is_dataclass(cls):
            problems.append("FIELD_LAYOUTS names %s, which is not a "
                            "message dataclass" % name)
            continue
        declared = tuple(f.name for f in dataclasses.fields(cls))
        implied = _layout_field_order(layout)
        if implied != declared:
            problems.append(
                "%s layout orders fields %s but the dataclass "
                "declares %s" % (name, list(implied), list(declared)))
        fixed = _LAYOUT_STRUCTS.get(name)
        if fixed is not None:
            count = len(fixed.unpack(bytes(fixed.size)))
            if count != len(layout):
                problems.append(
                    "%s layout lists %d wire values but its struct "
                    "packs %d" % (name, len(layout), count))
    for union in (messages.Request, messages.Response):
        for member in get_args(union):
            if member.__name__ not in table:
                problems.append("message class %s has no FIELD_LAYOUTS "
                                "entry" % member.__name__)
    return problems


class MessageType(IntEnum):
    """Downlink message discriminators."""

    RECT_SAFE_REGION = 1
    BITMAP_SAFE_REGION = 2
    SAFE_PERIOD = 3
    ALARM_PUSH = 4
    INVALIDATE = 5


def pack_cell_ref(col: int, row: int) -> int:
    """Pack grid-cell coordinates into the 64-bit wire cell reference."""
    if col < 0 or row < 0 or col > 0xFFFF_FFFF or row > 0xFFFF_FFFF:
        raise ValueError("cell coordinates out of range for the wire")
    return (col << 32) | row


def unpack_cell_ref(cell_ref: int) -> Tuple[int, int]:
    """Unpack a wire cell reference into ``(col, row)``."""
    return cell_ref >> 32, cell_ref & 0xFFFF_FFFF


# ----------------------------------------------------------------------
# Uplink: location / region-exit reports
# ----------------------------------------------------------------------
def encode_location(report: Request) -> bytes:
    """Encode an uplink report (32 bytes; exit flag in the sequence)."""
    sequence = report.sequence
    if sequence & EXIT_FLAG:
        raise ValueError("sequence overflows into the exit-flag bit")
    if isinstance(report, RegionExitReport):
        sequence |= EXIT_FLAG
    return _UPLINK.pack(report.user_id, sequence,
                        report.position.x, report.position.y,
                        report.heading, report.speed)


def decode_location(payload: bytes) -> Request:
    """Decode an uplink report (exit flag selects the request type)."""
    user_id, sequence, x, y, heading, speed = _UPLINK.unpack(payload)
    cls = RegionExitReport if sequence & EXIT_FLAG else LocationReport
    return cls(user_id=user_id, sequence=sequence & ~EXIT_FLAG,
               position=Point(x, y), heading=heading, speed=speed)


def _header(message_type: MessageType, payload_length: int, sender: int,
            timestamp: float) -> bytes:
    if payload_length > 0xFFFF:
        raise ValueError("payload too large for the 16-bit length field")
    return _HEADER.pack(int(message_type), 0, payload_length, sender,
                        timestamp)


def _split_header(data: bytes) -> Tuple[MessageType, int, float, bytes]:
    message_type, _, length, sender, timestamp = _HEADER.unpack(
        data[:_HEADER.size])
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise ValueError("payload length mismatch: header says %d, got %d"
                         % (length, len(payload)))
    return MessageType(message_type), sender, timestamp, payload


# ----------------------------------------------------------------------
# Rectangular safe region
# ----------------------------------------------------------------------
def encode_rect_region(rect: Rect, sender: int = 0,
                       timestamp: float = 0.0) -> bytes:
    """Encode a rectangular safe-region downlink (16 + 32 bytes)."""
    payload = _RECT.pack(rect.min_x, rect.min_y, rect.max_x, rect.max_y)
    return _header(MessageType.RECT_SAFE_REGION, len(payload), sender,
                   timestamp) + payload


def decode_rect_region(data: bytes) -> Rect:
    message_type, _, _, payload = _split_header(data)
    if message_type is not MessageType.RECT_SAFE_REGION:
        raise ValueError("not a rectangular safe-region message")
    return Rect(*_RECT.unpack(payload))


# ----------------------------------------------------------------------
# Safe period
# ----------------------------------------------------------------------
def encode_safe_period(expiry: float, sender: int = 0,
                       timestamp: float = 0.0) -> bytes:
    """Encode a safe-period downlink (16 + 8 bytes)."""
    payload = _SAFE_PERIOD.pack(expiry)
    return _header(MessageType.SAFE_PERIOD, len(payload), sender,
                   timestamp) + payload


def decode_safe_period(data: bytes) -> float:
    message_type, _, _, payload = _split_header(data)
    if message_type is not MessageType.SAFE_PERIOD:
        raise ValueError("not a safe-period message")
    return float(_SAFE_PERIOD.unpack(payload)[0])


# ----------------------------------------------------------------------
# Alarm push (the OPT strategy)
# ----------------------------------------------------------------------
def encode_alarm_push(cell: Rect, alarms: List[Tuple[int, Rect]],
                      alert_payload_bytes: int = DEFAULT_ALERT_PAYLOAD_BYTES,
                      sender: int = 0, timestamp: float = 0.0) -> bytes:
    """Encode an OPT alarm push.

    Each alarm entry carries its id, region and ``alert_payload_bytes``
    of opaque alert content (the text/media the client must be able to
    raise without contacting the server).  The default entry size
    (40 + 216 = 256 bytes) matches ``MessageSizes.alarm_entry``.
    """
    parts = [_RECT.pack(cell.min_x, cell.min_y, cell.max_x, cell.max_y)]
    for alarm_id, region in alarms:
        parts.append(_ALARM_FIXED.pack(alarm_id, region.min_x, region.min_y,
                                       region.max_x, region.max_y))
        parts.append(bytes(alert_payload_bytes))
    payload = b"".join(parts)
    return _header(MessageType.ALARM_PUSH, len(payload), sender,
                   timestamp) + payload


def decode_alarm_push(data: bytes,
                      alert_payload_bytes: int = DEFAULT_ALERT_PAYLOAD_BYTES
                      ) -> Tuple[Rect, List[Tuple[int, Rect]]]:
    message_type, _, _, payload = _split_header(data)
    if message_type is not MessageType.ALARM_PUSH:
        raise ValueError("not an alarm-push message")
    cell = Rect(*_RECT.unpack(payload[:_RECT.size]))
    cursor = _RECT.size
    entry_size = _ALARM_FIXED.size + alert_payload_bytes
    alarms: List[Tuple[int, Rect]] = []
    while cursor < len(payload):
        alarm_id, min_x, min_y, max_x, max_y = _ALARM_FIXED.unpack(
            payload[cursor:cursor + _ALARM_FIXED.size])
        alarms.append((alarm_id, Rect(min_x, min_y, max_x, max_y)))
        cursor += entry_size
    return cell, alarms


# ----------------------------------------------------------------------
# Bitmap safe region
# ----------------------------------------------------------------------
def encode_bitmap_region(cell_ref: int, bitmap: "PyramidBitmap",
                         sender: int = 0, timestamp: float = 0.0) -> bytes:
    """Encode a bitmap safe-region downlink.

    ``cell_ref`` identifies the base grid cell (the client derives the
    cell rectangle and pyramid geometry from its grid parameters).  The
    bit count travels explicitly so the final partial byte is
    unambiguous; total size is 16 + 12 + ceil(bits/8) bytes, matching
    ``MessageSizes.bitmap_message``.
    """
    bits = bitmap.to_bitstring()
    packed = bytearray((len(bits) + 7) // 8)
    for index, bit in enumerate(bits):
        if bit == "1":
            packed[index // 8] |= 1 << (7 - index % 8)
    payload = _BITMAP_FIXED.pack(cell_ref, len(bits)) + bytes(packed)
    return _header(MessageType.BITMAP_SAFE_REGION, len(payload), sender,
                   timestamp) + payload


def decode_bitmap_region(data: bytes, pyramid: "Pyramid"
                         ) -> Tuple[int, "PyramidBitmap"]:
    """Decode a bitmap downlink against the client's pyramid geometry."""
    from ..saferegion.bitmap import decode_bitstring

    message_type, _, _, payload = _split_header(data)
    if message_type is not MessageType.BITMAP_SAFE_REGION:
        raise ValueError("not a bitmap safe-region message")
    cell_ref, bit_count = _BITMAP_FIXED.unpack(
        payload[:_BITMAP_FIXED.size])
    packed = payload[_BITMAP_FIXED.size:]
    bits: List[str] = []
    for index in range(bit_count):
        byte = packed[index // 8]
        bits.append("1" if byte & (1 << (7 - index % 8)) else "0")
    return cell_ref, decode_bitstring(pyramid, "".join(bits))


def encode_invalidate(sender: int = 0, timestamp: float = 0.0) -> bytes:
    """Encode a header-only state-invalidation push (16 bytes)."""
    return _header(MessageType.INVALIDATE, 0, sender, timestamp)


def decode_invalidate(data: bytes) -> InvalidateState:
    message_type, _, _, payload = _split_header(data)
    if message_type is not MessageType.INVALIDATE:
        raise ValueError("not an invalidation message")
    return InvalidateState()


def peek_type(data: bytes) -> MessageType:
    """Message type of an encoded downlink without full decoding."""
    return MessageType(data[0])


def peek_bitmap_cell_ref(data: bytes) -> int:
    """Wire cell reference of an encoded bitmap downlink.

    Reads only the fixed prefix — the framed client uses this to build
    the pyramid geometry *before* the full decode, which needs it.
    """
    if peek_type(data) is not MessageType.BITMAP_SAFE_REGION:
        raise ValueError("not a bitmap safe-region message")
    cell_ref, _ = _BITMAP_FIXED.unpack_from(data, _HEADER.size)
    return cell_ref


# ----------------------------------------------------------------------
# The codec object: typed message <-> bytes, with derived sizes
# ----------------------------------------------------------------------
class WireCodec:
    """Serializer for protocol messages with struct-derived sizing.

    The transport charges every exchange through :meth:`size_of_request`
    and :meth:`size_of_response`; both are computed from the struct
    layouts above, and the wire-fidelity tests additionally assert
    ``size_of_response(m) == len(encode_response(m))`` for every payload
    a simulation ships.
    """

    __slots__ = ("alert_payload_bytes",)

    def __init__(self,
                 alert_payload_bytes: int = DEFAULT_ALERT_PAYLOAD_BYTES
                 ) -> None:
        if alert_payload_bytes < 0:
            raise ValueError("alert payload size must be non-negative")
        self.alert_payload_bytes = alert_payload_bytes

    @classmethod
    def from_sizes(cls, sizes: "MessageSizes") -> "WireCodec":
        """Codec matching a ``MessageSizes`` accounting table.

        Only the alarm-entry size is a free parameter (its alert
        payload); every other field of ``sizes`` must equal the struct
        sizes this codec encodes, or the accounting could not match the
        wire.  Beyond the per-message totals, the per-field layouts
        themselves are verified (:func:`verify_field_layouts`) — two
        messages can agree on total bytes while disagreeing on field
        order, and that drift must not decode silently.
        """
        problems = verify_field_layouts()
        if problems:
            raise ValueError(
                "wire field layouts disagree with the message "
                "dataclasses: %s" % "; ".join(problems))
        fixed = {"uplink_location": UPLINK_LOCATION_SIZE,
                 "downlink_header": DOWNLINK_HEADER_SIZE,
                 "rect_payload": RECT_PAYLOAD_SIZE,
                 "safe_period_payload": SAFE_PERIOD_PAYLOAD_SIZE,
                 "bitmap_fixed": BITMAP_FIXED_SIZE}
        for field, expected in fixed.items():
            if getattr(sizes, field) != expected:
                raise ValueError(
                    "MessageSizes.%s=%d does not match the wire layout "
                    "(%d bytes); the codec cannot account it faithfully"
                    % (field, getattr(sizes, field), expected))
        alert = sizes.alarm_entry - ALARM_FIXED_SIZE
        if alert < 0:
            raise ValueError("alarm_entry smaller than its fixed part")
        return cls(alert_payload_bytes=alert)

    # -- sizing --------------------------------------------------------
    def size_of_request(self, request: Request) -> int:
        """Accounted bytes of an uplink report (fixed 32)."""
        return UPLINK_LOCATION_SIZE

    def size_of_response(self, message: Response) -> int:
        """Accounted bytes of a downlink payload (0 for in-band)."""
        if isinstance(message, InstallSafeRegion):
            if message.rect is not None:
                return DOWNLINK_HEADER_SIZE + RECT_PAYLOAD_SIZE
            assert message.bitmap is not None
            return (DOWNLINK_HEADER_SIZE + BITMAP_FIXED_SIZE
                    + (message.bitmap.bit_length() + 7) // 8)
        if isinstance(message, InstallSafePeriod):
            return DOWNLINK_HEADER_SIZE + SAFE_PERIOD_PAYLOAD_SIZE
        if isinstance(message, InstallAlarmList):
            entry = ALARM_FIXED_SIZE + self.alert_payload_bytes
            return (DOWNLINK_HEADER_SIZE + RECT_PAYLOAD_SIZE
                    + len(message.alarms) * entry)
        if isinstance(message, InvalidateState):
            return DOWNLINK_HEADER_SIZE
        if isinstance(message, AlarmNotification):
            return 0  # in-band with the reply; never a downlink payload
        raise TypeError("unknown response message: %r" % (message,))

    # -- encoding ------------------------------------------------------
    def encode_request(self, request: Request) -> bytes:
        """Serialize an uplink report."""
        return encode_location(request)

    def decode_request(self, payload: bytes) -> Request:
        """Deserialize an uplink report."""
        return decode_location(payload)

    def encode_response(self, message: Response, sender: int = 0,
                        timestamp: float = 0.0) -> bytes:
        """Serialize a downlink payload (empty for in-band messages)."""
        if isinstance(message, InstallSafeRegion):
            if message.rect is not None:
                return encode_rect_region(message.rect, sender, timestamp)
            assert message.cell_ref is not None
            assert message.bitmap is not None
            return encode_bitmap_region(message.cell_ref, message.bitmap,
                                        sender, timestamp)
        if isinstance(message, InstallSafePeriod):
            return encode_safe_period(message.expiry, sender, timestamp)
        if isinstance(message, InstallAlarmList):
            entries = [(record.alarm_id, record.region)
                       for record in message.alarms]
            return encode_alarm_push(message.cell, entries,
                                     self.alert_payload_bytes, sender,
                                     timestamp)
        if isinstance(message, InvalidateState):
            return encode_invalidate(sender, timestamp)
        if isinstance(message, AlarmNotification):
            return b""  # rides the reply; nothing crosses the downlink
        raise TypeError("unknown response message: %r" % (message,))

    def decode_response(self, data: bytes,
                        pyramid: Optional["Pyramid"] = None) -> Response:
        """Deserialize a downlink payload into its typed message."""
        message_type = peek_type(data)
        if message_type is MessageType.RECT_SAFE_REGION:
            return InstallSafeRegion(rect=decode_rect_region(data))
        if message_type is MessageType.BITMAP_SAFE_REGION:
            if pyramid is None:
                raise ValueError("bitmap decoding needs the client's "
                                 "pyramid geometry")
            cell_ref, bitmap = decode_bitmap_region(data, pyramid)
            return InstallSafeRegion(cell_ref=cell_ref, bitmap=bitmap)
        if message_type is MessageType.SAFE_PERIOD:
            return InstallSafePeriod(expiry=decode_safe_period(data))
        if message_type is MessageType.ALARM_PUSH:
            cell, entries = decode_alarm_push(data,
                                              self.alert_payload_bytes)
            return InstallAlarmList(
                cell=cell,
                alarms=tuple(AlarmRecord(alarm_id=a, region=r)
                             for a, r in entries))
        if message_type is MessageType.INVALIDATE:
            return decode_invalidate(data)
        raise ValueError("undecodable message type: %r" % (message_type,))
