"""Transports: where protocol messages cross and where bytes are charged.

A :class:`Transport` carries typed protocol messages between a client
session and the server's request handler.  The transport boundary is the
*single* place the simulation accounts traffic — every ``Metrics``
uplink/downlink increment and every ``location_report`` /
``downlink_sent`` telemetry event originates here, sized by the
:class:`~repro.protocol.wire.WireCodec` from the message being carried.
Strategies and server policies never touch ``Metrics``; what they ship
is what gets charged, and charged amounts equal encoded lengths by
construction (``verify_wire=True`` asserts it per message).

Two implementations:

* :class:`InProcessTransport` — the reliable fast path used by the
  engines.  Messages are handed over as Python objects (no copy); only
  the accounting consults the codec.
* :class:`LossyTransport` — a simulated unreliable link: seeded random
  drop probabilities per direction, a virtual delivery delay, and
  stop-and-wait retransmission with exponential backoff and a bounded
  attempt budget.  Every attempt — dropped or delivered — is charged,
  so the cost of unreliability is visible in the same counters the
  paper's figures report; drops are additionally counted in the
  ``Metrics`` drop fields.  The accuracy contract survives loss as long
  as every exchange completes within its attempt budget (exhaustion
  raises :class:`TransportError`) — the retry tests pin this.
"""

from __future__ import annotations

import random
import time
from typing import TYPE_CHECKING, Callable, Optional

from ..telemetry.facade import DISABLED
from ..telemetry.spans import (ROOT_SPAN_ID, SPAN_LOSSY_REQUEST,
                               STATUS_ERROR, STATUS_OK, make_trace_id)
from .handlers import ServerPolicy, handle_request
from .messages import Request, Response, ServerReply, downlink_kind
from .wire import WireCodec

if TYPE_CHECKING:  # runtime import would cycle through engine.server
    from ..engine.metrics import Metrics
    from ..engine.server import AlarmServer
    from ..index import GridOverlay
    from ..strategies.base import ProcessingStrategy
    from ..telemetry.facade import Telemetry


class TransportError(RuntimeError):
    """An exchange could not be completed within the attempt budget."""


class WireFidelityError(AssertionError):
    """An accounted size disagreed with the codec-serialized length."""


class Transport:
    """Carrier of protocol messages between one session and the server."""

    def request(self, request: Request, time_s: float) -> ServerReply:
        """Deliver an uplink request; return the server's reply."""
        raise NotImplementedError

    def push(self, user_id: int, message: Response,
             time_s: float) -> None:
        """Server-initiated downlink (invalidations outside any reply)."""
        raise NotImplementedError


class InProcessTransport(Transport):
    """Reliable in-process fast path.

    Wraps an :class:`~repro.engine.server.AlarmServer` plus the
    strategy's :class:`~repro.protocol.handlers.ServerPolicy`; charges
    each request and each sized response exactly once against the
    server's ``Metrics`` and telemetry.
    """

    __slots__ = ("server", "policy", "codec", "verify_wire")

    def __init__(self, server: "AlarmServer", policy: ServerPolicy,
                 codec: Optional[WireCodec] = None,
                 verify_wire: bool = False) -> None:
        self.server = server
        self.policy = policy
        self.codec = (codec if codec is not None
                      else WireCodec.from_sizes(server.sizes))
        self.verify_wire = verify_wire

    # ------------------------------------------------------------------
    def request(self, request: Request, time_s: float) -> ServerReply:
        server = self.server
        nbytes = self._charge_uplink(request, time_s)
        telemetry = server.telemetry
        cost_started = time.perf_counter() if telemetry.enabled else 0.0
        reply = handle_request(server, self.policy, request, time_s)
        if telemetry.enabled:
            telemetry.location_report(
                time_s, request.user_id, nbytes,
                (time.perf_counter() - cost_started) * 1e6)
        for message in reply:
            self._charge_downlink(message, request.user_id, time_s)
        return reply

    def push(self, user_id: int, message: Response,
             time_s: float) -> None:
        self._charge_downlink(message, user_id, time_s)

    # ------------------------------------------------------------------
    # Accounting (the only writers of the traffic counters)
    # ------------------------------------------------------------------
    def _charge_uplink(self, request: Request, time_s: float) -> int:
        server = self.server
        nbytes = self.codec.size_of_request(request)
        if self.verify_wire:
            encoded = self.codec.encode_request(request)
            if len(encoded) != nbytes:
                raise WireFidelityError(
                    "uplink charged %d bytes but encodes to %d"
                    % (nbytes, len(encoded)))
        server.metrics.uplink_messages += 1
        server.metrics.uplink_bytes += nbytes
        return nbytes

    def _charge_downlink(self, message: Response, user_id: int,
                         time_s: float) -> int:
        """Charge one sized downlink payload; in-band messages are free.

        Returns the accounted byte count (0 for in-band messages, which
        are not charged and emit no event).
        """
        kind = downlink_kind(message)
        if kind is None:
            return 0
        server = self.server
        with server.profiled("encoding"):
            nbytes = self.codec.size_of_response(message)
            if self.verify_wire:
                encoded = self.codec.encode_response(message,
                                                     sender=user_id,
                                                     timestamp=time_s)
                if len(encoded) != nbytes:
                    raise WireFidelityError(
                        "downlink %s charged %d bytes but encodes to %d"
                        % (kind, nbytes, len(encoded)))
        server.metrics.downlink_messages += 1
        server.metrics.downlink_bytes += nbytes
        telemetry = server.telemetry
        if telemetry.enabled:
            telemetry.downlink_sent(time_s, user_id, nbytes, kind)
        return nbytes


class LossyTransport(InProcessTransport):
    """Simulated unreliable link with bounded stop-and-wait retry.

    ``uplink_drop`` / ``downlink_drop`` are per-attempt loss
    probabilities drawn from a seeded private RNG (runs are exactly
    reproducible).  ``delay_s`` is the one-way delivery latency charged
    per attempt; retransmission ``attempt`` additionally waits
    ``backoff_s * 2**(attempt-1)`` before resending.  The accumulated
    virtual latency of the worst exchange is exposed as
    ``max_exchange_latency_s`` so scenarios can assert it stays below
    the sampling interval — the condition under which stop-and-wait
    retry preserves the accuracy contract (the reply installs state
    before the next fix is taken).

    Dropped attempts are charged like delivered ones (bandwidth is
    consumed either way) and counted in ``Metrics.uplink_drops`` /
    ``downlink_drops``; a request whose uplink or any of whose reply
    payloads exhausts ``max_attempts`` raises :class:`TransportError`.

    With telemetry enabled each exchange is additionally wrapped in a
    ``lossy_request`` root span that closes ``"ok"`` on delivery and
    ``"error"`` on attempt-budget exhaustion — the retry loop may
    abandon an exchange, but it may never leak its span (``repro trace
    validate`` checks the ledger balances); ``_trace_count`` is the
    per-transport trace-id counter behind those spans.
    """

    __slots__ = ("uplink_drop", "downlink_drop", "delay_s", "backoff_s",
                 "max_attempts", "max_exchange_latency_s", "_rng",
                 "_trace_count")

    def __init__(self, server: "AlarmServer", policy: ServerPolicy,
                 codec: Optional[WireCodec] = None,
                 verify_wire: bool = False, *,
                 uplink_drop: float = 0.0, downlink_drop: float = 0.0,
                 delay_s: float = 0.0, backoff_s: float = 0.05,
                 max_attempts: int = 8, seed: int = 0) -> None:
        super().__init__(server, policy, codec, verify_wire)
        for name, probability in (("uplink_drop", uplink_drop),
                                  ("downlink_drop", downlink_drop)):
            if not 0.0 <= probability < 1.0:
                raise ValueError("%s must be in [0, 1)" % name)
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        self.uplink_drop = uplink_drop
        self.downlink_drop = downlink_drop
        self.delay_s = delay_s
        self.backoff_s = backoff_s
        self.max_attempts = max_attempts
        self.max_exchange_latency_s = 0.0
        self._rng = random.Random(seed)
        self._trace_count = 0

    # ------------------------------------------------------------------
    def request(self, request: Request, time_s: float) -> ServerReply:
        telemetry = self.server.telemetry
        if not telemetry.enabled:
            return self._exchange(request, time_s)
        self._trace_count += 1
        trace_id = make_trace_id(0, self._trace_count)
        started = time.perf_counter()
        telemetry.span_open(time_s, trace_id, ROOT_SPAN_ID, 0,
                            SPAN_LOSSY_REQUEST)
        try:
            reply = self._exchange(request, time_s)
        except TransportError:
            # Attempt-budget exhaustion (uplink or any reply payload)
            # abandons the exchange but must not leak its span.
            telemetry.span_close(time_s, trace_id, ROOT_SPAN_ID,
                                 STATUS_ERROR,
                                 (time.perf_counter() - started) * 1e6)
            raise
        telemetry.span_close(time_s, trace_id, ROOT_SPAN_ID, STATUS_OK,
                             (time.perf_counter() - started) * 1e6)
        return reply

    def _exchange(self, request: Request, time_s: float) -> ServerReply:
        server = self.server
        telemetry = server.telemetry
        latency = 0.0
        for attempt in range(self.max_attempts):
            nbytes = self._charge_uplink(request, time_s)
            latency += self._attempt_latency(attempt)
            if self._rng.random() < self.uplink_drop:
                server.metrics.uplink_drops += 1
                if telemetry.enabled:
                    telemetry.location_report(time_s, request.user_id,
                                              nbytes, 0.0)
                    telemetry.transport_drop(time_s, request.user_id,
                                             "uplink")
                continue
            cost_started = (time.perf_counter() if telemetry.enabled
                            else 0.0)
            reply = handle_request(server, self.policy, request, time_s)
            if telemetry.enabled:
                telemetry.location_report(
                    time_s, request.user_id, nbytes,
                    (time.perf_counter() - cost_started) * 1e6)
            for message in reply:
                latency += self._deliver_downlink(message,
                                                  request.user_id, time_s)
            self.max_exchange_latency_s = max(self.max_exchange_latency_s,
                                              latency)
            return reply
        raise TransportError(
            "uplink report of user %d undeliverable after %d attempts"
            % (request.user_id, self.max_attempts))

    def push(self, user_id: int, message: Response,
             time_s: float) -> None:
        self._deliver_downlink(message, user_id, time_s)

    # ------------------------------------------------------------------
    def _deliver_downlink(self, message: Response, user_id: int,
                          time_s: float) -> float:
        """Retransmit one payload until delivered; return its latency."""
        if downlink_kind(message) is None:
            return 0.0  # in-band: rides the (already delivered) reply
        server = self.server
        latency = 0.0
        for attempt in range(self.max_attempts):
            self._charge_downlink(message, user_id, time_s)
            latency += self._attempt_latency(attempt)
            if self._rng.random() < self.downlink_drop:
                server.metrics.downlink_drops += 1
                if server.telemetry.enabled:
                    server.telemetry.transport_drop(time_s, user_id,
                                                    "downlink")
                continue
            return latency
        raise TransportError(
            "downlink payload for user %d undeliverable after %d attempts"
            % (user_id, self.max_attempts))

    def _attempt_latency(self, attempt: int) -> float:
        """Virtual seconds attempt number ``attempt`` (0-based) costs."""
        if attempt == 0:
            return self.delay_s
        return self.delay_s + self.backoff_s * (2.0 ** (attempt - 1))


#: Builds the transport for one (server, policy) pair.  Must be
#: picklable for the sharded engine — classes and ``functools.partial``
#: of classes qualify, lambdas do not.
TransportFactory = Callable[["AlarmServer", ServerPolicy], Transport]


class ClientSession:
    """The client endpoint of the protocol.

    Everything a strategy's client half may do goes through here: send
    typed requests (:meth:`send`) and account its own local monitoring
    work (:meth:`charge_probe`).  The session also carries the pieces
    of shared configuration a real device would hold — the grid
    geometry (to resolve wire cell references) — and the run's
    telemetry facade for client-side events.
    """

    __slots__ = ("transport", "grid", "telemetry", "_metrics")

    def __init__(self, transport: Transport, metrics: "Metrics",
                 grid: "GridOverlay",
                 telemetry: Optional["Telemetry"] = None) -> None:
        self.transport = transport
        self.grid = grid
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self._metrics = metrics

    def send(self, request: Request, time_s: float) -> ServerReply:
        """One stop-and-wait exchange: uplink in, typed responses out."""
        return self.transport.request(request, time_s)

    def charge_probe(self, ops: int) -> None:
        """Account one local containment check of ``ops`` comparisons.

        The only sanctioned path from strategy code to the energy
        counters (lintkit RL008 forbids direct ``Metrics`` access from
        strategies).
        """
        self._metrics.containment_checks += 1
        self._metrics.containment_ops += ops
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.probe_scalar(1, ops)

    def charge_probe_batch(self, checks: int, ops: int) -> None:
        """Account a batch kernel's silent run in one call.

        ``checks`` scalar probes totalling ``ops`` comparisons land on
        the same ``Metrics`` fields as :meth:`charge_probe` — the
        totals are identical whichever path charged them, which is the
        batch engine's bit-identity contract.  Traced runs additionally
        split the work by kernel so ``repro report`` can prove the
        charges agree.
        """
        self._metrics.containment_checks += checks
        self._metrics.containment_ops += ops
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.probe_batch(checks, ops)


def connect(server: "AlarmServer", strategy: "ProcessingStrategy",
            transport_factory: Optional[TransportFactory] = None
            ) -> ClientSession:
    """Wire a strategy to a server: policy, transport, session, attach.

    The one construction path the engines share: the strategy supplies
    its server-side policy, ``transport_factory`` (default: the reliable
    in-process transport) supplies the link, and the returned session is
    already attached to the strategy.
    """
    policy = strategy.server_policy()
    factory = (transport_factory if transport_factory is not None
               else InProcessTransport)
    transport = factory(server, policy)
    session = ClientSession(transport, server.metrics, server.grid,
                            server.telemetry)
    strategy.attach(session)
    return session
