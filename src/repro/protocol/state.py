"""The explicit server-side state store behind the request handlers.

The refactored server is *stateless request handlers over explicit
state*: every mutable thing the server knows — per-user one-shot fired
sets, the optional per-cell alarm cache, the optional shared safe-region
memo, and per-policy scratch state — lives in one :class:`ServerState`
object that the handlers receive and operate on.  Nothing hides in
handler closures, which is what makes the handlers shardable (the
parallel engine builds one state per shard) and the state inspectable
in tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, Dict, Optional, Set

from ..alarms import AlarmRegistry
from ..index import GridOverlay

if TYPE_CHECKING:  # imported lazily at runtime (only when caching is on)
    from ..alarms.cellcache import CellAlarmCache
    from ..saferegion.cache import SafeRegionCache


class ServerState:
    """All mutable server-side state for one simulation run.

    ``fired`` is a ``defaultdict`` so the per-user one-shot set
    materializes on first touch; ``scratch`` is a namespaced dict for
    per-policy server-side memory (e.g. the rectangular policy's
    last-reported positions) so policies stay free of instance state;
    the two caches are optional accelerators that subscribe to registry
    mutations and must be detached at end of run — :meth:`close` does
    that and is idempotent, so engine ``finally`` blocks and explicit
    teardown can both call it safely.
    """

    __slots__ = ("registry", "grid", "fired", "cell_cache", "region_cache",
                 "scratch", "_closed")

    def __init__(self, registry: AlarmRegistry, grid: GridOverlay,
                 use_cell_cache: bool = False,
                 use_region_cache: bool = False) -> None:
        self.registry = registry
        self.grid = grid
        # One-shot bookkeeping: alarm ids already fired, per user.
        self.fired: Dict[int, Set[int]] = defaultdict(set)
        self.cell_cache: Optional["CellAlarmCache"] = None
        if use_cell_cache:
            from ..alarms.cellcache import CellAlarmCache
            self.cell_cache = CellAlarmCache(registry, grid)
        self.region_cache: Optional["SafeRegionCache"] = None
        if use_region_cache:
            from ..saferegion.cache import SafeRegionCache
            self.region_cache = SafeRegionCache(registry, grid)
        self.scratch: Dict[str, Any] = {}
        self._closed = False

    def fired_for(self, user_id: int) -> Set[int]:
        """Alarm ids already fired for ``user_id`` (mutable view)."""
        return self.fired[user_id]

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release run-scoped resources; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        if self.cell_cache is not None:
            self.cell_cache.detach()
            self.cell_cache = None
        if self.region_cache is not None:
            self.region_cache.detach()
            self.region_cache = None
        self.scratch.clear()
