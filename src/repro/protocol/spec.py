"""The declared client↔server session contract, as data.

The framed protocol (:mod:`repro.protocol.framing`, served by
:mod:`repro.net.daemon`, spoken by :mod:`repro.net.sockets`) is an
automaton: a connection starts unauthenticated, a HELLO establishes
it, and only then may requests flow.  This module declares that
automaton — and the per-strategy downlink causality contract — as
plain data, so three consumers can share one source of truth:

* the **PA008** checker extracts the *implemented* automaton from the
  dispatch chains in ``net/daemon.py``/``net/sockets.py`` and diffs it
  against :data:`SESSION_TRANSITIONS`;
* the **PA010** checker cross-references each strategy's server-half
  emissions and client-half handling against
  :data:`STRATEGY_CAUSALITY`;
* the **runtime sanitizer** (:meth:`repro.sanitize.Sanitizer.
  check_session_transition`) asserts the daemon's per-connection state
  walk stays inside the automaton while serving.

Both tables are *literal* dicts on purpose: the analyzers read them
with ``ast.literal_eval`` from the analyzed tree (so miniature fixture
trees can carry their own spec), and the runtime imports this module —
one declaration, two read paths.  Frame kinds are referred to by their
:class:`~repro.protocol.framing.FrameKind` member *names* to keep this
module import-light (it must not drag the framing layer into every
sanitizer user).

The state order in :data:`SESSION_STATES` is semantic: index 0 is the
pre-handshake state, index 1 the established state, index 2 the
terminal teardown state.  PA008's guard extraction relies on it.

See ``docs/NETWORKING.md`` ("The session automaton") for the diagram.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Connection states, ordered pre-handshake → established → teardown.
#: A *literal* tuple — the analyzers read it with ``ast.literal_eval``.
SESSION_STATES: Tuple[str, str, str] = (
    "AWAIT_HELLO", "READY", "CLOSING")

STATE_AWAIT_HELLO = SESSION_STATES[0]
STATE_READY = SESSION_STATES[1]
STATE_CLOSING = SESSION_STATES[2]

#: Frame directions: client→server uplink, server→client downlink.
DIR_CLIENT_TO_SERVER = "c2s"
DIR_SERVER_TO_CLIENT = "s2c"

#: The session automaton: ``(state, FrameKind name, direction)`` →
#: next state.  A pair absent from this table is a protocol violation
#: — the daemon answers it with an ERROR frame and drops the
#: connection; the client surfaces a ``TransportError``.  ERROR is the
#: only transition into the terminal CLOSING state: the server never
#: continues a conversation it has rejected.
SESSION_TRANSITIONS: Dict[Tuple[str, str, str], str] = {
    # Handshake: exactly one HELLO, first, from the client.
    ("AWAIT_HELLO", "HELLO", "c2s"): "READY",
    # The operator channel works pre-handshake too: `repro bench-net
    # --shutdown` must be able to stop a daemon unconditionally.
    ("AWAIT_HELLO", "SHUTDOWN", "c2s"): "AWAIT_HELLO",
    ("AWAIT_HELLO", "ERROR", "s2c"): "CLOSING",
    # Established traffic.
    ("READY", "REQUEST", "c2s"): "READY",
    ("READY", "STATS", "c2s"): "READY",
    ("READY", "SHUTDOWN", "c2s"): "READY",
    ("READY", "REPLY", "s2c"): "READY",
    ("READY", "PUSH", "s2c"): "READY",
    ("READY", "STATS", "s2c"): "READY",
    ("READY", "ERROR", "s2c"): "CLOSING",
}

#: Downlink message kinds the *shared* handler layer may attach to any
#: reply regardless of strategy (:func:`repro.protocol.handlers.
#: handle_request` converts firings into ``AlarmNotification``; the
#: churn engines invalidate with ``InvalidateState``).  PA010 exempts
#: them from the per-strategy emitted↔handled symmetry check.
BASELINE_DOWNLINKS: Tuple[str, ...] = (
    "AlarmNotification", "InvalidateState")

#: Per-strategy causality: which downlink message classes each
#: strategy's :class:`~repro.protocol.handlers.ServerPolicy` may emit,
#: and which its client half must recognize.  Keys are strategy module
#: stems under ``strategies/`` (``base``/``__init__`` carry no
#: strategy).  A strategy inheriting its policy (``adaptive`` reuses
#: the rectangular policy) declares the inherited emissions — PA010
#: follows the one-hop base-class import when extracting.
STRATEGY_CAUSALITY: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "adaptive": {"emits": ("InstallSafeRegion",),
                 "handles": ("InstallSafeRegion",)},
    "bitmap": {"emits": ("InstallSafeRegion",),
               "handles": ("InstallSafeRegion",)},
    "optimal": {"emits": ("InstallAlarmList",),
                "handles": ("InstallAlarmList", "AlarmNotification")},
    "periodic": {"emits": (), "handles": ()},
    "rectangular": {"emits": ("InstallSafeRegion",),
                    "handles": ("InstallSafeRegion",)},
    "safeperiod": {"emits": ("InstallSafePeriod",),
                   "handles": ("InstallSafePeriod",)},
}


def session_next_state(state: str, kind_name: str,
                       direction: str) -> Optional[str]:
    """The state after one frame, or ``None`` when it is forbidden."""
    return SESSION_TRANSITIONS.get((state, kind_name, direction))


def allowed_kinds(state: str, direction: str) -> Tuple[str, ...]:
    """Frame kind names legal in ``state`` for ``direction``, sorted."""
    return tuple(sorted(
        kind for (st, kind, dirn) in SESSION_TRANSITIONS
        if st == state and dirn == direction))
