"""Stateless request handlers: one uplink in, typed responses out.

:func:`handle_request` is the server's single entry point for uplink
traffic.  It owns the strategy-independent half of every exchange —
evaluate the report against the alarm index, fire one-shot triggers,
convert each firing into an :class:`AlarmNotification` — and delegates
the strategy-specific half to a :class:`ServerPolicy`, the server-side
counterpart of a processing strategy (compute a safe region, a safe
period, or an alarm list, and decide when to ship it).

Handlers and policies are *stateless*: everything mutable lives in the
server's :class:`~repro.protocol.state.ServerState` (one-shot fired
sets, caches, per-policy scratch), which is what makes the handler
shardable — the parallel engine simply builds one state per shard.
Policies never touch ``Metrics`` or the transport: byte accounting
happens at the transport boundary from the sizes of the responses they
return (lintkit rule RL008 enforces the same boundary on the client
side).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from .messages import (AlarmNotification, RegionExitReport, Request,
                       Response, ServerReply)

if TYPE_CHECKING:  # runtime import would cycle through engine.server
    from ..alarms import SpatialAlarm
    from ..engine.server import AlarmServer


class ServerPolicy:
    """Strategy-specific server behaviour behind :func:`handle_request`.

    ``triggered`` is the list of alarms the report just fired (their
    notifications are already queued by the handler).  A hook returns
    the additional responses the strategy's server side ships — install
    messages, typically.  The default policy is evaluate-only: the
    server answers location reports with nothing but notifications,
    which is exactly the periodic baseline's server.
    """

    def on_location_report(self, server: "AlarmServer", request: Request,
                           time_s: float,
                           triggered: Sequence["SpatialAlarm"]
                           ) -> Sequence[Response]:
        """An ordinary report: the client did not leave installed state."""
        return ()

    def on_region_exit(self, server: "AlarmServer", request: Request,
                       time_s: float,
                       triggered: Sequence["SpatialAlarm"]
                       ) -> Sequence[Response]:
        """The client left its safe region / base cell (or first report)."""
        return ()


#: Shared evaluate-only policy (the periodic baseline's server side).
EVALUATE_ONLY = ServerPolicy()


def handle_request(server: "AlarmServer", policy: ServerPolicy,
                   request: Request, time_s: float) -> ServerReply:
    """Process one uplink request into its reply.

    Strategy-independent part first: evaluate the position against the
    pending relevant alarms, fire matches one-shot, queue a notification
    per firing.  Then the policy contributes its install messages, keyed
    on whether the client reported an exit (renew monitoring state) or
    an in-place condition (evaluate, possibly quick-update).
    """
    triggered = server.process_location(request.user_id, time_s,
                                        request.position)
    responses: List[Response] = [AlarmNotification(alarm.alarm_id)
                                 for alarm in triggered]
    if isinstance(request, RegionExitReport):
        responses.extend(policy.on_region_exit(server, request, time_s,
                                               triggered))
    else:
        responses.extend(policy.on_location_report(server, request, time_s,
                                                   triggered))
    return tuple(responses)
