"""Typed wire-protocol messages (the client/server contract).

The paper's distributed architecture (§2, §5) is a division of labor
across a network link: clients send position fixes, the server answers
with installable monitoring state (a safe region, a safe period, an
alarm list).  This module is that contract as *types*: every value that
crosses the wire is one of the frozen dataclasses below, every payload's
byte cost is derived from its codec encoding (:mod:`repro.protocol.wire`)
rather than asserted by hand, and both endpoints — the strategies'
client halves and the server-side policies — speak only these messages.

Client -> server requests
    :class:`LocationReport`    an ordinary position fix (the client's
                               silence condition failed, or the strategy
                               reports every fix);
    :class:`RegionExitReport`  a position fix sent *because* the client
                               left its installed safe region / base
                               cell.  Wire-identical to a location
                               report except for a flag bit; the
                               distinction lets server policies renew
                               monitoring state only when the client's
                               residency actually ended.

Server -> client responses
    :class:`InstallSafeRegion`  a rectangular or bitmap safe region;
    :class:`InstallSafePeriod`  a safe-period expiry timestamp;
    :class:`InstallAlarmList`   the OPT push: a cell's full alarm set;
    :class:`AlarmNotification`  an alarm fired for this subscriber
                                (rides the reply to the triggering
                                report — no separate downlink payload);
    :class:`InvalidateState`    server push: installed state is stale
                                (dynamic/tracking alarm churn).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple, Union

from ..geometry import Point, Rect

if TYPE_CHECKING:  # typing only: keeps the protocol package import-light
    from ..saferegion.bitmap import LazyPyramidBitmap, PyramidBitmap

    BitmapPayload = Union[PyramidBitmap, LazyPyramidBitmap]

#: Downlink payload kinds as reported in telemetry (``downlink_sent``
#: events and the per-kind ``downlink_messages_<kind>`` counters).  One
#: kind per protocol payload, plus the push-invalidation of the
#: dynamic/tracking engines and a generic fallback.
DOWNLINK_RECT = "rect"
DOWNLINK_SAFE_PERIOD = "safe_period"
DOWNLINK_BITMAP = "bitmap"
DOWNLINK_ALARM_PUSH = "alarm_push"
DOWNLINK_INVALIDATE = "invalidate"
DOWNLINK_PUSH = "push"

DOWNLINK_KINDS: Tuple[str, ...] = (DOWNLINK_RECT, DOWNLINK_SAFE_PERIOD,
                                   DOWNLINK_BITMAP, DOWNLINK_ALARM_PUSH,
                                   DOWNLINK_INVALIDATE, DOWNLINK_PUSH)


# ----------------------------------------------------------------------
# Client -> server
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LocationReport:
    """Client -> server position fix."""

    user_id: int
    sequence: int
    position: Point
    heading: float
    speed: float


@dataclass(frozen=True)
class RegionExitReport:
    """Client -> server position fix reported on safe-region/cell exit.

    Same wire layout (and byte cost) as :class:`LocationReport`; the
    exit flag travels in the sequence field's top bit.  Server policies
    use the distinction to decide between *renew monitoring state* (the
    client's residency ended) and *evaluate only* (the client is merely
    reporting from an unsafe area or a locally-detected trigger).
    """

    user_id: int
    sequence: int
    position: Point
    heading: float
    speed: float


Request = Union[LocationReport, RegionExitReport]


# ----------------------------------------------------------------------
# Server -> client
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InstallSafeRegion:
    """Install a safe region: a rectangle, or a cell-scoped bitmap.

    Exactly one representation is present: ``rect`` (the MWPSR
    rectangle, four float64s on the wire) or ``cell_ref`` + ``bitmap``
    (the GBSR/PBSR pyramid bitmap; the client derives the cell rectangle
    and pyramid geometry from ``cell_ref`` and its grid configuration).
    """

    rect: Optional[Rect] = None
    cell_ref: Optional[int] = None
    bitmap: Optional["BitmapPayload"] = None

    def __post_init__(self) -> None:
        has_rect = self.rect is not None
        has_bitmap = self.cell_ref is not None and self.bitmap is not None
        if has_rect == has_bitmap:
            raise ValueError("InstallSafeRegion carries either rect or "
                             "(cell_ref, bitmap), exactly one")

    @property
    def kind(self) -> str:
        return DOWNLINK_RECT if self.rect is not None else DOWNLINK_BITMAP


@dataclass(frozen=True)
class InstallSafePeriod:
    """Install a safe period: the client stays silent until ``expiry``."""

    expiry: float


@dataclass(frozen=True)
class AlarmRecord:
    """One alarm in an OPT push: id + region (+ opaque alert content).

    The alert content (text/media the client must be able to raise
    without contacting the server) is accounted by the codec's
    per-entry alert payload size; its bytes are opaque to the
    simulation.
    """

    alarm_id: int
    region: Rect


@dataclass(frozen=True)
class InstallAlarmList:
    """Install a grid cell's full pending alarm set (the OPT push)."""

    cell: Rect
    alarms: Tuple[AlarmRecord, ...]


@dataclass(frozen=True)
class AlarmNotification:
    """An alarm fired (one-shot) for the reporting subscriber.

    Notifications ride the reply to the uplink that triggered them; the
    protocol charges no separate downlink payload for them (matching
    the paper's accounting, where trigger delivery is counted as a
    notification, not bandwidth).
    """

    alarm_id: int


@dataclass(frozen=True)
class InvalidateState:
    """Server push: drop installed monitoring state and re-sync.

    Header-only on the wire.  Sent by the dynamic/tracking engines when
    alarm churn (install/remove/relocate) makes a client's installed
    safe region, safe period or alarm list unsafe to keep.
    """


Response = Union[InstallSafeRegion, InstallSafePeriod, InstallAlarmList,
                 AlarmNotification, InvalidateState]

#: What one uplink exchange returns to the client.
ServerReply = Tuple[Response, ...]


def downlink_kind(message: Response) -> Optional[str]:
    """Telemetry kind of a response, or ``None`` for in-band messages.

    ``None`` means the message is delivered in-band with the reply and
    is not charged as a downlink payload (:class:`AlarmNotification`).
    """
    if isinstance(message, InstallSafeRegion):
        return message.kind
    if isinstance(message, InstallSafePeriod):
        return DOWNLINK_SAFE_PERIOD
    if isinstance(message, InstallAlarmList):
        return DOWNLINK_ALARM_PUSH
    if isinstance(message, InvalidateState):
        return DOWNLINK_INVALIDATE
    return None
