"""Length-prefixed frame codec for the socket transport (sans-IO).

The :class:`~repro.protocol.wire.WireCodec` defines what one *message*
looks like in bytes; this module defines how messages travel over a
*byte stream* (TCP or a Unix domain socket), where the peer's reads may
split the stream at any boundary.  Every frame is a fixed 32-byte
header followed by a length-prefixed payload::

    magic:    u8   (0xF7 — rejects peers speaking another protocol)
    kind:     u8   (:class:`FrameKind`)
    reserved: u16  (zero on the wire)
    length:   u32  (payload bytes; capped at :data:`MAX_FRAME_PAYLOAD`)
    time:     f64  (simulation-clock seconds of the exchange)
    trace:    u64  (client-assigned trace id; 0 = untraced)
    span:     u64  (sender's span id within the trace; 0 = untraced)

The simulation clock and the trace context ride the *envelope*, never
a charged payload: an uplink report carries no timestamp field of its
own (the 32-byte :class:`~repro.protocol.messages.LocationReport`
layout is unchanged), so the framed path charges exactly the bytes the
in-process path charges — the conformance suite pins the equality
against the wire goldens.  A REPLY echoes the REQUEST's trace and span
ids, which is how a client follows one uplink from its own span
through the daemon's child spans to the answer
(``docs/OBSERVABILITY.md``).

:class:`FrameDecoder` is deliberately incremental — feed it chunks as
they arrive and it yields complete frames, buffering any tail —
because the property suite replays encodings split at every byte
boundary.  Nothing in this module touches a socket; both the asyncio
daemon and the blocking client transport (:mod:`repro.net`) drive it.

A REPLY frame carries a whole :data:`~repro.protocol.messages.ServerReply`
batch: a u16 message count, then per message a tag byte — tag 0 is an
in-band :class:`~repro.protocol.messages.AlarmNotification` (u64 alarm
id, charged zero bytes like the in-process path), tag 1 is a sized
payload (u32 length + the codec's ``encode_response`` bytes, the only
part that counts as downlink traffic).
"""

from __future__ import annotations

import json
import struct
from enum import IntEnum
from typing import (TYPE_CHECKING, Callable, Dict, List, Mapping,
                    NamedTuple, Optional, Tuple)

from .messages import AlarmNotification, Response, ServerReply
from .wire import MessageType, WireCodec, peek_bitmap_cell_ref, peek_type

if TYPE_CHECKING:  # typing only: keeps the module import-light
    from ..index import Pyramid

#: First byte of every frame; anything else is a foreign protocol.
FRAME_MAGIC = 0xF7

#: Hard cap on one frame's payload.  Large enough for any OPT alarm
#: push the 16-bit downlink length field can express, small enough
#: that a corrupt length prefix cannot make a peer buffer gigabytes.
MAX_FRAME_PAYLOAD = 1 << 20

#: Version carried by HELLO; bumped on any layout change.  Version 2
#: widened the header from 16 to 32 bytes for the trace/span ids.
PROTOCOL_VERSION = 2

_FRAME_HEADER = struct.Struct("<BBHIdQQ")   # 32 bytes
FRAME_HEADER_SIZE = _FRAME_HEADER.size

_HELLO = struct.Struct("<H")
_REPLY_COUNT = struct.Struct("<H")
_REPLY_NOTIFICATION = struct.Struct("<Q")
_REPLY_LENGTH = struct.Struct("<I")

#: REPLY batch entry tags.
_TAG_NOTIFICATION = 0
_TAG_PAYLOAD = 1


class FrameKind(IntEnum):
    """Frame discriminators of the socket protocol."""

    HELLO = 1      # client -> server: protocol version handshake
    REQUEST = 2    # client -> server: one encoded uplink report
    REPLY = 3      # server -> client: the request's ServerReply batch
    PUSH = 4       # server -> client: one encoded downlink outside a reply
    ERROR = 5      # server -> client: UTF-8 reason, connection closing
    SHUTDOWN = 6   # client -> server: stop the daemon (operator channel)
    STATS = 7      # both ways: operator scrape of the live registry


#: Value -> member map for the decoder's hot path (an ``IntEnum`` call
#: costs about a microsecond; at frame rates that is real money).
_FRAME_KINDS = {member.value: member for member in FrameKind}


class FramingError(ValueError):
    """A byte stream violated the frame layout (garbage, oversize)."""


class TruncatedFrameError(FramingError):
    """The stream ended mid-frame (header or payload incomplete)."""


class Frame(NamedTuple):
    """One decoded frame: kind, envelope timestamp, raw payload.

    A ``NamedTuple`` rather than a frozen dataclass: the decoder builds
    one per frame on the serving hot path, and tuple construction skips
    the per-field ``object.__setattr__`` a frozen dataclass pays.

    ``trace_id``/``span_id`` are the envelope's trace context; both are
    zero on untraced frames, so pre-tracing callers that build frames
    positionally keep working unchanged.
    """

    kind: FrameKind
    time_s: float
    payload: bytes
    trace_id: int = 0
    span_id: int = 0


def encode_frame(kind: FrameKind, payload: bytes, time_s: float = 0.0,
                 trace_id: int = 0, span_id: int = 0) -> bytes:
    """Serialize one frame (header + payload)."""
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise FramingError("frame payload of %d bytes exceeds the %d-byte "
                           "cap" % (len(payload), MAX_FRAME_PAYLOAD))
    return _FRAME_HEADER.pack(FRAME_MAGIC, int(kind), 0, len(payload),
                              time_s, trace_id, span_id) + payload


class FrameDecoder:
    """Incremental frame parser tolerant of arbitrary read boundaries.

    Feed it byte chunks exactly as they came off the socket; it returns
    every frame completed by the chunk and buffers the remainder.  A
    malformed header (wrong magic, unknown kind, oversized length)
    raises :class:`FramingError` immediately — the connection is not
    recoverable past a framing violation.  Call :meth:`finish` at
    end-of-stream to distinguish a clean close from a mid-frame one.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held waiting for the rest of an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Absorb one chunk; return the frames it completed."""
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buffer:
            raise TruncatedFrameError(
                "stream ended mid-frame with %d buffered byte(s)"
                % len(self._buffer))

    def _next_frame(self) -> Optional[Frame]:
        buffer = self._buffer
        if len(buffer) < FRAME_HEADER_SIZE:
            return None
        (magic, kind, _, length, time_s, trace_id,
         span_id) = _FRAME_HEADER.unpack_from(buffer)
        if magic != FRAME_MAGIC:
            raise FramingError("bad frame magic 0x%02X (expected 0x%02X)"
                               % (magic, FRAME_MAGIC))
        frame_kind = _FRAME_KINDS.get(kind)
        if frame_kind is None:
            raise FramingError("unknown frame kind %d" % kind)
        if length > MAX_FRAME_PAYLOAD:
            raise FramingError(
                "frame announces a %d-byte payload, above the %d-byte cap"
                % (length, MAX_FRAME_PAYLOAD))
        end = FRAME_HEADER_SIZE + length
        if len(buffer) < end:
            return None
        payload = bytes(buffer[FRAME_HEADER_SIZE:end])
        del buffer[:end]
        return Frame(kind=frame_kind, time_s=time_s, payload=payload,
                     trace_id=trace_id, span_id=span_id)


# ----------------------------------------------------------------------
# HELLO / ERROR payloads
# ----------------------------------------------------------------------
def encode_hello() -> bytes:
    """The version-handshake payload a client sends first."""
    return _HELLO.pack(PROTOCOL_VERSION)


def decode_hello(payload: bytes) -> int:
    """Validate a HELLO payload; returns the peer's version."""
    if len(payload) != _HELLO.size:
        raise FramingError("HELLO payload must be %d bytes, got %d"
                           % (_HELLO.size, len(payload)))
    (version,) = _HELLO.unpack(payload)
    if version != PROTOCOL_VERSION:
        raise FramingError("peer speaks protocol version %d, this end "
                           "speaks %d" % (version, PROTOCOL_VERSION))
    return version


def encode_error(reason: str) -> bytes:
    """The payload of an ERROR frame (UTF-8 reason)."""
    return reason.encode("utf-8")


def decode_error(payload: bytes) -> str:
    return payload.decode("utf-8", errors="replace")


# ----------------------------------------------------------------------
# STATS payloads (operator channel)
# ----------------------------------------------------------------------
def encode_stats(snapshot: Mapping[str, object]) -> bytes:
    """Serialize one stats snapshot (the daemon's STATS answer).

    Canonical JSON (sorted keys, no whitespace) so two scrapes of the
    same registry state are byte-identical — ``repro stats`` and the
    Prometheus byte-compare tests rely on that determinism.  A STATS
    *request* carries an empty payload; only the answer uses this.
    """
    encoded = json.dumps(snapshot, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(encoded) > MAX_FRAME_PAYLOAD:
        raise FramingError("stats snapshot of %d bytes exceeds the "
                           "%d-byte frame cap"
                           % (len(encoded), MAX_FRAME_PAYLOAD))
    return encoded


def decode_stats(payload: bytes) -> Dict[str, object]:
    """Deserialize a STATS answer back into its snapshot mapping."""
    try:
        snapshot = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise FramingError("undecodable STATS payload: %s" % error)
    if not isinstance(snapshot, dict):
        raise FramingError("STATS payload must be a JSON object, got %s"
                           % type(snapshot).__name__)
    return snapshot


# ----------------------------------------------------------------------
# REPLY batches
# ----------------------------------------------------------------------
def encode_reply(codec: WireCodec, reply: ServerReply, sender: int,
                 timestamp: float) -> bytes:
    """Serialize one ``ServerReply`` batch into a REPLY payload.

    In-band notifications take the 9-byte tag-0 form (they encode to
    ``b""`` under the codec and are charged zero bytes, matching the
    in-process transport); every other response is a tag-1 entry whose
    sized payload is exactly ``codec.encode_response(...)`` — the bytes
    the transport charged.
    """
    if len(reply) > 0xFFFF:
        raise FramingError("reply batch of %d messages overflows the "
                           "u16 count" % len(reply))
    parts = [_REPLY_COUNT.pack(len(reply))]
    for message in reply:
        if isinstance(message, AlarmNotification):
            parts.append(bytes((_TAG_NOTIFICATION,)))
            parts.append(_REPLY_NOTIFICATION.pack(message.alarm_id))
            continue
        encoded = codec.encode_response(message, sender=sender,
                                        timestamp=timestamp)
        parts.append(bytes((_TAG_PAYLOAD,)))
        parts.append(_REPLY_LENGTH.pack(len(encoded)))
        parts.append(encoded)
    return b"".join(parts)


#: Resolves a bitmap downlink's wire cell reference to the pyramid
#: geometry the client derives from its grid configuration.
PyramidResolver = Callable[[int], "Pyramid"]


def decode_reply(codec: WireCodec, payload: bytes,
                 pyramid_for: Optional[PyramidResolver] = None
                 ) -> ServerReply:
    """Deserialize a REPLY payload back into typed responses.

    ``pyramid_for`` supplies the client-side pyramid geometry for
    bitmap safe regions (see
    :func:`~repro.protocol.wire.decode_bitmap_region`); replies without
    bitmap payloads need none.
    """
    if len(payload) < _REPLY_COUNT.size:
        raise FramingError("reply payload shorter than its count field")
    (count,) = _REPLY_COUNT.unpack_from(payload)
    cursor = _REPLY_COUNT.size
    messages: List[Response] = []
    for _ in range(count):
        if cursor >= len(payload):
            raise FramingError("reply batch truncated before entry %d"
                               % len(messages))
        tag = payload[cursor]
        cursor += 1
        if tag == _TAG_NOTIFICATION:
            end = cursor + _REPLY_NOTIFICATION.size
            if end > len(payload):
                raise FramingError("notification entry truncated")
            (alarm_id,) = _REPLY_NOTIFICATION.unpack_from(payload, cursor)
            messages.append(AlarmNotification(alarm_id=alarm_id))
            cursor = end
            continue
        if tag != _TAG_PAYLOAD:
            raise FramingError("unknown reply entry tag %d" % tag)
        end = cursor + _REPLY_LENGTH.size
        if end > len(payload):
            raise FramingError("payload entry length truncated")
        (length,) = _REPLY_LENGTH.unpack_from(payload, cursor)
        cursor = end
        end = cursor + length
        if end > len(payload):
            raise FramingError("payload entry truncated: announced %d "
                               "bytes, %d available"
                               % (length, len(payload) - cursor))
        encoded = payload[cursor:end]
        cursor = end
        pyramid = None
        if peek_type(encoded) is MessageType.BITMAP_SAFE_REGION:
            if pyramid_for is None:
                raise FramingError("reply carries a bitmap safe region "
                                   "but no pyramid resolver was given")
            pyramid = pyramid_for(peek_bitmap_cell_ref(encoded))
        messages.append(codec.decode_response(encoded, pyramid))
    if cursor != len(payload):
        raise FramingError("%d trailing byte(s) after the last reply "
                           "entry" % (len(payload) - cursor))
    return tuple(messages)


def reply_summary(payload: bytes) -> Tuple[int, int, int]:
    """``(messages, notifications, charged_bytes)`` of a REPLY payload.

    Walks the batch envelope without decoding any message — the load
    generator's fast accounting path, and the sanitizer's cross-check
    that a reply frame carries exactly the downlink bytes the server
    charged (tag-0 notifications are in-band and charge nothing).
    """
    if len(payload) < _REPLY_COUNT.size:
        raise FramingError("reply payload shorter than its count field")
    (count,) = _REPLY_COUNT.unpack_from(payload)
    cursor = _REPLY_COUNT.size
    notifications = 0
    charged = 0
    for _ in range(count):
        if cursor >= len(payload):
            raise FramingError("reply batch truncated")
        tag = payload[cursor]
        cursor += 1
        if tag == _TAG_NOTIFICATION:
            notifications += 1
            cursor += _REPLY_NOTIFICATION.size
        elif tag == _TAG_PAYLOAD:
            if cursor + _REPLY_LENGTH.size > len(payload):
                raise FramingError("payload entry length truncated")
            (length,) = _REPLY_LENGTH.unpack_from(payload, cursor)
            cursor += _REPLY_LENGTH.size + length
            charged += length
        else:
            raise FramingError("unknown reply entry tag %d" % tag)
    if cursor != len(payload):
        raise FramingError("reply batch length mismatch")
    return count, notifications, charged
