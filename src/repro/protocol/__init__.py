"""The typed client/server wire protocol.

Layering (see ``docs/ARCHITECTURE.md``):

* :mod:`~repro.protocol.messages` — the typed requests and responses
  (the contract both endpoints speak);
* :mod:`~repro.protocol.wire` — their byte layout and the
  :class:`~repro.protocol.wire.WireCodec` that derives every accounted
  size from it;
* :mod:`~repro.protocol.state` — the explicit
  :class:`~repro.protocol.state.ServerState` store behind the handlers;
* :mod:`~repro.protocol.handlers` — stateless request handling plus the
  per-strategy :class:`~repro.protocol.handlers.ServerPolicy` hooks;
* :mod:`~repro.protocol.transport` — pluggable carriers (reliable
  in-process, simulated lossy) where all byte accounting happens, and
  the :class:`~repro.protocol.transport.ClientSession` endpoint
  strategies talk to.

This package intentionally re-exports only the message types and the
flat downlink-kind constants: they are import-light (geometry only) and
safe to pull from anywhere.  The heavier layers — codec, transport,
handlers — are imported as submodules by the engine and the strategies,
which keeps the import graph acyclic (``engine.network`` derives its
size defaults from :mod:`~repro.protocol.wire` while the transport in
turn types against ``engine.server``).
"""

from .messages import (DOWNLINK_ALARM_PUSH, DOWNLINK_BITMAP,
                       DOWNLINK_INVALIDATE, DOWNLINK_KINDS, DOWNLINK_PUSH,
                       DOWNLINK_RECT, DOWNLINK_SAFE_PERIOD,
                       AlarmNotification, AlarmRecord, InstallAlarmList,
                       InstallSafePeriod, InstallSafeRegion,
                       InvalidateState, LocationReport, RegionExitReport,
                       Request, Response, ServerReply, downlink_kind)

__all__ = [
    "AlarmNotification", "AlarmRecord", "InstallAlarmList",
    "InstallSafePeriod", "InstallSafeRegion", "InvalidateState",
    "LocationReport", "RegionExitReport", "Request", "Response",
    "ServerReply", "downlink_kind",
    "DOWNLINK_ALARM_PUSH", "DOWNLINK_BITMAP", "DOWNLINK_INVALIDATE",
    "DOWNLINK_KINDS", "DOWNLINK_PUSH", "DOWNLINK_RECT",
    "DOWNLINK_SAFE_PERIOD",
]
