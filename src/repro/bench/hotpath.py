"""``repro bench-hotpath``: scalar-vs-vectorized hot-path timings.

Three microbenchmarks time one kernel against its scalar oracle on the
same data — rectangle containment (:func:`repro.geometry.batch.contains`
vs :meth:`~repro.geometry.rect.Rect.contains_point`), pyramid bitmap
probing (:meth:`repro.saferegion.packed.PackedBitmap.probe_batch` vs
:meth:`~repro.saferegion.bitmap.PyramidBitmap.probe`) and bitmap
bitstring packing/unpacking (:func:`repro.saferegion.packed.pack_bitstring`
vs a pure-Python reference).  Each microbench *verifies* agreement
before it times anything: a kernel that drifted from its oracle fails
the run instead of producing a meaningless speedup number.

The end-to-end section replays one workload through the engines four
ways — serial scalar, serial batch, sharded scalar, sharded batch —
and records wall times plus whether every deterministic counter and the
trigger sequence agreed (the batch contract).  Timings use
``time.perf_counter`` deltas only (RL006's sanctioned duration form);
this module never prints (RL007) — the CLI renders
:meth:`HotpathBenchResult.to_dict` as JSON, manifest-embedded like
``repro bench-net``.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..geometry import Point, Rect
from ..geometry.batch import PointBatch, contains
from ..index import Pyramid
from ..saferegion.bitmap import PyramidBitmap, build_pyramid_bitmap
from ..saferegion.packed import (PackedBitmap, pack_bitstring,
                                 unpack_bitstring)
from ..telemetry.manifest import RunManifest

if TYPE_CHECKING:
    from ..engine.parallel import StrategyFactory
    from ..engine.simulation import World


@dataclass
class MicroBench:
    """One kernel-vs-oracle timing: same inputs, verified-equal outputs."""

    name: str
    items: int
    scalar_s: float
    batch_s: float

    @property
    def speedup(self) -> float:
        return self.scalar_s / self.batch_s if self.batch_s > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "items": self.items,
            "scalar_s": round(self.scalar_s, 6),
            "batch_s": round(self.batch_s, 6),
            "speedup": round(self.speedup, 1),
        }


@dataclass
class HotpathBenchResult:
    """What one ``bench-hotpath`` run measured."""

    micro: List[MicroBench] = field(default_factory=list)
    strategy: str = ""
    vehicles: int = 0
    samples: int = 0
    workers: int = 1
    serial_scalar_s: float = 0.0
    serial_batch_s: float = 0.0
    sharded_scalar_s: float = 0.0
    sharded_batch_s: float = 0.0
    #: Did serial-batch and sharded-batch reproduce the serial-scalar
    #: run's deterministic counters and trigger sequence exactly?  The
    #: batch contract — ``False`` fails the CLI with a non-zero exit.
    counters_match: bool = False

    def to_dict(self, manifest: Optional[RunManifest] = None
                ) -> Dict[str, object]:
        """JSON-ready summary (the ``repro bench-hotpath`` output).

        With ``manifest`` the run's provenance is embedded under
        ``run_manifest``, the same record ``BENCH_net.json`` carries, so
        the committed ``BENCH_hotpath.json`` baseline states what
        produced it.
        """
        payload: Dict[str, object] = {
            "micro": [bench.to_dict() for bench in self.micro],
            "end_to_end": {
                "strategy": self.strategy,
                "vehicles": self.vehicles,
                "samples": self.samples,
                "workers": self.workers,
                "serial_scalar_s": round(self.serial_scalar_s, 4),
                "serial_batch_s": round(self.serial_batch_s, 4),
                "sharded_scalar_s": round(self.sharded_scalar_s, 4),
                "sharded_batch_s": round(self.sharded_batch_s, 4),
                "serial_speedup": round(
                    self.serial_scalar_s / self.serial_batch_s, 2)
                if self.serial_batch_s > 0 else 0.0,
                "counters_match": self.counters_match,
            },
        }
        if manifest is not None:
            payload["run_manifest"] = manifest.to_dict()
        return payload


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best wall time of ``repeats`` calls (noise-resistant minimum)."""
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


# ----------------------------------------------------------------------
# Microbenchmarks
# ----------------------------------------------------------------------
def _bench_containment(rng: random.Random, points: int,
                       repeats: int) -> MicroBench:
    """Closed rectangle containment: scalar loop vs broadcast kernel."""
    rect = Rect(200.0, 300.0, 1800.0, 1500.0)
    xs = [rng.uniform(0.0, 2000.0) for _ in range(points)]
    ys = [rng.uniform(0.0, 2000.0) for _ in range(points)]
    scalar_points = [Point(x, y) for x, y in zip(xs, ys)]
    batch = PointBatch(np.array(xs, dtype=np.float64),
                       np.array(ys, dtype=np.float64))

    expected = [rect.contains_point(p) for p in scalar_points]
    if contains(rect, batch).tolist() != expected:
        raise AssertionError("containment kernel disagrees with "
                             "Rect.contains_point")
    scalar_s = _best_of(
        lambda: [rect.contains_point(p) for p in scalar_points], repeats)
    batch_s = _best_of(lambda: contains(rect, batch), repeats)
    return MicroBench("containment", points, scalar_s, batch_s)


def _probe_fixture(rng: random.Random, points: int
                   ) -> Tuple[PyramidBitmap, List[Point], PointBatch]:
    """A busy height-5 pyramid bitmap plus probe points over its base."""
    base = Rect(0.0, 0.0, 900.0, 900.0)
    obstacles = []
    for _ in range(24):
        x = rng.uniform(0.0, 850.0)
        y = rng.uniform(0.0, 850.0)
        side = rng.uniform(20.0, 120.0)
        obstacles.append(Rect(x, y, x + side, y + side))
    pyramid = Pyramid(base, height=5)
    bitmap, _ = build_pyramid_bitmap(pyramid, obstacles)
    xs = [rng.uniform(-10.0, 910.0) for _ in range(points)]
    ys = [rng.uniform(-10.0, 910.0) for _ in range(points)]
    scalar_points = [Point(x, y) for x, y in zip(xs, ys)]
    batch = PointBatch(np.array(xs, dtype=np.float64),
                       np.array(ys, dtype=np.float64))
    return bitmap, scalar_points, batch


def _bench_bitmap_probe(rng: random.Random, points: int,
                        repeats: int) -> MicroBench:
    """Pyramid probes: per-point dict walk vs packed active-set kernel."""
    bitmap, scalar_points, batch = _probe_fixture(rng, points)
    packed = PackedBitmap.from_bitmap(bitmap)

    expected = [bitmap.probe(p) for p in scalar_points]
    inside, probes = packed.probe_batch(batch)
    got = list(zip(inside.tolist(), probes.tolist()))
    if [(bool(i), int(n)) for i, n in got] != expected:
        raise AssertionError("packed probe kernel disagrees with "
                             "PyramidBitmap.probe")
    scalar_s = _best_of(
        lambda: [bitmap.probe(p) for p in scalar_points], repeats)
    batch_s = _best_of(lambda: packed.probe_batch(batch), repeats)
    return MicroBench("bitmap_probe", points, scalar_s, batch_s)


def _pack_scalar(bits: str) -> List[int]:
    """Pure-Python oracle of :func:`pack_bitstring`'s word layout."""
    words: List[int] = []
    for start in range(0, len(bits), 64):
        word = 0
        for offset, char in enumerate(bits[start:start + 64]):
            if char == "1":
                word |= 1 << offset
            elif char != "0":
                raise ValueError("bitstring must contain only 0 and 1")
        words.append(word)
    return words


def _unpack_scalar(words: List[int], bit_length: int) -> str:
    """Pure-Python oracle of :func:`unpack_bitstring`."""
    chars: List[str] = []
    for index in range(bit_length):
        word = words[index // 64]
        chars.append("1" if (word >> (index % 64)) & 1 else "0")
    return "".join(chars)


def _bench_bitmap_codec(rng: random.Random, points: int,
                        repeats: int) -> MicroBench:
    """Bitstring pack+unpack round trip: Python loop vs packbits."""
    bitmap, _, _ = _probe_fixture(rng, max(points // 16, 64))
    # One busy pyramid serialization, tiled to the requested item count
    # so the codec benches the same order of magnitude of bits as the
    # other microbenches do points.
    bits = bitmap.to_bitstring()
    bits = bits * max(1, points // max(len(bits), 1))

    words, bit_length = pack_bitstring(bits)
    if words.tolist() != _pack_scalar(bits):
        raise AssertionError("pack_bitstring disagrees with the "
                             "pure-Python packer")
    if (unpack_bitstring(words, bit_length) != bits
            or _unpack_scalar(words.tolist(), bit_length) != bits):
        raise AssertionError("bitstring unpack round trip failed")

    def scalar_codec() -> None:
        packed = _pack_scalar(bits)
        _unpack_scalar(packed, len(bits))

    def batch_codec() -> None:
        packed, length = pack_bitstring(bits)
        unpack_bitstring(packed, length)

    scalar_s = _best_of(scalar_codec, repeats)
    batch_s = _best_of(batch_codec, repeats)
    return MicroBench("bitmap_codec", len(bits), scalar_s, batch_s)


# ----------------------------------------------------------------------
# End-to-end engine comparison
# ----------------------------------------------------------------------
def _run_end_to_end(world: "World", strategy_factory: "StrategyFactory",
                    workers: int, result: HotpathBenchResult) -> None:
    """Replay the workload four ways; record walls and the equivalence."""
    from ..engine.parallel import run_parallel_simulation
    from ..engine.simulation import run_simulation

    serial_scalar = run_simulation(world, strategy_factory())
    serial_batch = run_simulation(world, strategy_factory(),
                                  use_batch=True)
    sharded_scalar = run_parallel_simulation(world, strategy_factory,
                                             workers=workers)
    sharded_batch = run_parallel_simulation(world, strategy_factory,
                                            workers=workers,
                                            use_batch=True)
    reference = serial_scalar.metrics
    result.strategy = serial_scalar.strategy_name
    result.vehicles = serial_scalar.client_count
    result.samples = serial_scalar.total_samples
    result.workers = sharded_batch.workers
    result.serial_scalar_s = serial_scalar.wall_time_s
    result.serial_batch_s = serial_batch.wall_time_s
    result.sharded_scalar_s = sharded_scalar.wall_time_s
    result.sharded_batch_s = sharded_batch.wall_time_s
    result.counters_match = all(
        run.metrics.counters() == reference.counters()
        and run.metrics.triggers == reference.triggers
        for run in (serial_batch, sharded_scalar, sharded_batch))


def run_hotpath_bench(world: "World",
                      strategy_factory: "StrategyFactory",
                      workers: int = 2,
                      points: int = 100_000,
                      repeats: int = 3,
                      seed: int = 11) -> HotpathBenchResult:
    """Measure the vectorized hot paths against their scalar oracles.

    ``points`` sizes the microbench populations; ``repeats`` runs each
    timed section that many times and keeps the best (minimum) wall
    time; ``seed`` feeds the private RNG that lays out the microbench
    geometry, so two runs on the same machine bench identical inputs.
    The end-to-end section replays ``world`` through
    ``strategy_factory`` with and without ``use_batch``, serial and
    sharded over ``workers`` processes.
    """
    if points < 1:
        raise ValueError("points must be positive")
    if repeats < 1:
        raise ValueError("repeats must be positive")
    rng = random.Random(seed)
    result = HotpathBenchResult()
    result.micro.append(_bench_containment(rng, points, repeats))
    result.micro.append(_bench_bitmap_probe(rng, points, repeats))
    result.micro.append(_bench_bitmap_codec(rng, points, repeats))
    _run_end_to_end(world, strategy_factory, workers, result)
    return result
