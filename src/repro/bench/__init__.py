"""Benchmark harnesses for the vectorized hot paths.

``repro bench-hotpath`` drives :func:`repro.bench.hotpath.run_hotpath_bench`
and renders its result as JSON; the committed baseline lives in
``BENCH_hotpath.json``.  Everything here is importable engine code
(RL007: no printing) and reads no clock other than
``time.perf_counter`` duration deltas (RL006's sanctioned form).
"""

from .hotpath import HotpathBenchResult, MicroBench, run_hotpath_bench

__all__ = ["HotpathBenchResult", "MicroBench", "run_hotpath_bench"]
