"""Distributed processing with bitmap-encoded safe regions (GBSR/PBSR).

The server ships a bitmap safe region covering the client's current base
grid cell (an :class:`~repro.protocol.messages.InstallSafeRegion`
carrying a cell reference plus the pyramid bitmap); the client derives
the cell rectangle from the reference and its grid configuration, then
walks the pyramid (O(h) bit probes per fix) to monitor itself.  Protocol
events:

* client leaves the base cell -> :class:`RegionExitReport`; the server
  evaluates triggers, builds the bitmap for the new cell, ships it
  (this is the only event that *requires* recomputation — Section 4.2);
* client inside the cell but in an unsafe (bit 0) area ->
  :class:`LocationReport` every fix while there; the server evaluates
  triggers and, only when an alarm actually fired, folds the fired
  alarm back into the safe region and ships the updated bitmap (the
  paper's quick-update path);
* client in a safe (bit 1) area -> silence.

The frequent reports from unsafe areas are exactly why coarse bitmaps
(GBSR) flood the server with messages while tall pyramids approach the
rectangular strategies' message counts at higher client energy — the
trade-off of Fig. 5.

**Computation sharing** (paper §4): a bitmap depends only on the cell
and the pending alarm set over it — not on which subscriber asked — so
with the server's region cache enabled
(``AlarmServer(use_region_cache=True)``) the policy consults the
cell-keyed memo before computing and stores what it computes.  Per-user
divergence (already-fired alarms, private alarms) lands on a different
fingerprint and misses, so sharing never leaks another user's region;
message and byte totals are unchanged because caching short-circuits
only the *computation*, never the downlink.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, List, Optional, Protocol, Sequence,
                    Tuple)

from ..alarms import AlarmScope, SpatialAlarm
from ..geometry import Rect
from ..index import CellId
from ..mobility import TraceSample
from ..protocol.handlers import ServerPolicy
from ..protocol.messages import (InstallSafeRegion, Request, Response,
                                 ServerReply)
from ..protocol.wire import pack_cell_ref, unpack_cell_ref
from ..saferegion import BitmapSafeRegion, PBSRComputer
from ..saferegion.cache import fingerprint
from .base import ClientState, ProcessingStrategy

if TYPE_CHECKING:
    from ..engine.server import AlarmServer
    from ..mobility.batch import SampleBatch


class BitmapComputer(Protocol):
    """Structural interface of GBSR/PBSR safe-region computers."""

    def compute(self, cell: Rect, public_obstacles: Sequence[Rect],
                personal_obstacles: Sequence[Rect] = ()
                ) -> BitmapSafeRegion:
        ...


class BitmapPolicy(ServerPolicy):
    """Server half of GBSR/PBSR: cell bitmaps, with optional sharing."""

    #: ``ServerState.scratch`` key mapping user id -> the cell id whose
    #: bitmap that user currently holds (needed on the quick-update
    #: path, where the *installed* cell — not the cell of the reported
    #: position, which may sit on a shared boundary — must be rebuilt).
    SCRATCH_KEY = "bitmap.installed_cell"

    def __init__(self, computer: BitmapComputer) -> None:
        self.computer = computer

    def on_region_exit(self, server: "AlarmServer", request: Request,
                       time_s: float,
                       triggered: Sequence[SpatialAlarm]
                       ) -> Sequence[Response]:
        cell_id = server.grid.cell_of(request.position)
        installed = server.state.scratch.setdefault(self.SCRATCH_KEY, {})
        installed[request.user_id] = cell_id
        return (self._build(server, request.user_id, time_s, cell_id),)

    def on_location_report(self, server: "AlarmServer", request: Request,
                           time_s: float,
                           triggered: Sequence[SpatialAlarm]
                           ) -> Sequence[Response]:
        # Unsafe-area report: only a firing changes the bitmap, so only
        # then is a re-ship worth its bytes (quick-update, Section 4.2).
        if not triggered:
            return ()
        installed = server.state.scratch.get(self.SCRATCH_KEY, {})
        cell_id = installed.get(request.user_id)
        if cell_id is None:  # no bitmap installed: nothing to update
            return ()
        return (self._build(server, request.user_id, time_s, cell_id),)

    # ------------------------------------------------------------------
    def _build(self, server: "AlarmServer", user_id: int, time_s: float,
               cell_id: CellId) -> InstallSafeRegion:
        """The install message for one cell's bitmap, memo-aware.

        The pending-alarm lookup is timed into the safe-region bucket
        but does not count a computation (``count=False``): on a cache
        hit no region is actually computed, and on a miss the counting
        context around the computation proper increments exactly once —
        so ``safe_region_computations`` measures real work with or
        without the cache, while message accounting is untouched.
        """
        cell = server.grid.cell_rect(cell_id)
        with server.timed_saferegion(count=False):
            pending = server.pending_alarms_in(user_id, cell)
            public, personal = _split_by_scope(pending)
        key = fingerprint(cell_id, public, personal)
        region = server.cached_region(user_id, time_s, key)
        if region is None:
            with server.timed_saferegion(user_id, time_s):
                with server.profiled("saferegion_compute"):
                    region = self.computer.compute(
                        cell, [alarm.region for alarm in public],
                        [alarm.region for alarm in personal])
            server.store_region(key, region)
        return InstallSafeRegion(
            cell_ref=pack_cell_ref(cell_id.col, cell_id.row),
            bitmap=region.bitmap)


class BitmapSafeRegionStrategy(ProcessingStrategy):
    """Safe region-based processing with pyramid bitmaps.

    ``computer`` must provide ``compute(cell, public_obstacles,
    personal_obstacles)`` — :class:`~repro.saferegion.PBSRComputer` (any
    height; height 1 is the GBSR configuration) or
    :class:`~repro.saferegion.GBSRComputer`.
    """

    def __init__(self, computer: Optional[BitmapComputer] = None,
                 name: str = "PBSR") -> None:
        self.computer = computer if computer is not None else PBSRComputer()
        self.name = name

    def server_policy(self) -> BitmapPolicy:
        return BitmapPolicy(self.computer)

    def on_sample(self, client: ClientState, sample: TraceSample) -> None:
        if (client.cell_rect is not None
                and client.cell_rect.contains_point(sample.position)):
            # A cell_rect is only ever installed together with a region.
            assert client.safe_region is not None
            inside, ops = client.safe_region.probe(sample.position)
            self._charge_probe(ops)
            if inside:
                return
            # Unsafe area within the cell: plain report; the server
            # re-ships only when a firing actually changed the bitmap.
            reply = self._send_report(client, sample)
            self._install(client, sample, reply)
            return

        # Entered a new base cell (or first fix): full recomputation.
        # Leaving the cell ends the residency of the region scoped to it.
        self._note_region_exit(client, sample.time)
        reply = self._send_report(client, sample, exit=True)
        self._install(client, sample, reply)

    def on_batch(self, client: ClientState, batch: "SampleBatch") -> None:
        """Vectorized pyramid probes between reports.

        While a bitmap is installed, the silent run — in the cell *and*
        probing safe — is scanned by the packed kernel
        (:func:`repro.saferegion.packed.bitmap_silent_run`), which also
        returns the run's exact per-sample probe-op total for the bulk
        charge.  Cell exits and unsafe-area fixes (where the protocol
        actually speaks) go through the scalar path unchanged.
        """
        from ..saferegion.packed import bitmap_silent_run
        samples = batch.samples
        length = len(samples)
        index = 0
        while index < length:
            cell = client.cell_rect
            if cell is None:
                self.on_sample(client, samples[index])
                index += 1
                continue
            region = client.safe_region
            assert isinstance(region, BitmapSafeRegion)
            stop, ops = bitmap_silent_run(region, cell, batch.points,
                                          index)
            if stop > index:
                self._charge_probe_batch(stop - index, ops)
            if stop >= length:
                return
            self.on_sample(client, samples[stop])
            index = stop + 1

    # ------------------------------------------------------------------
    def _install(self, client: ClientState, sample: TraceSample,
                 reply: ServerReply) -> None:
        for message in reply:
            if isinstance(message, InstallSafeRegion):
                assert message.cell_ref is not None
                assert message.bitmap is not None
                col, row = unpack_cell_ref(message.cell_ref)
                client.cell_rect = self.session.grid.cell_rect(
                    CellId(col, row))
                client.safe_region = BitmapSafeRegion(message.bitmap)
                self._mark_region_installed(client, sample.time)


def _split_by_scope(alarms: List[SpatialAlarm]
                    ) -> Tuple[List[SpatialAlarm], List[SpatialAlarm]]:
    """Partition pending alarms into (public, private/shared) lists."""
    public: List[SpatialAlarm] = []
    personal: List[SpatialAlarm] = []
    for alarm in alarms:
        if alarm.scope is AlarmScope.PUBLIC:
            public.append(alarm)
        else:
            personal.append(alarm)
    return public, personal
