"""Distributed processing with bitmap-encoded safe regions (GBSR/PBSR).

The server ships a bitmap safe region covering the client's current base
grid cell; the client walks the pyramid (O(h) bit probes per fix) to
monitor itself.  Protocol events:

* client leaves the base cell -> report; server evaluates triggers,
  builds the bitmap for the new cell, ships it (this is the only event
  that *requires* recomputation — Section 4.2);
* client inside the cell but in an unsafe (bit 0) area -> report every
  fix while there; the server evaluates triggers and, only when an alarm
  actually fired, folds the fired alarm back into the safe region and
  ships the updated bitmap (the paper's quick-update path);
* client in a safe (bit 1) area -> silence.

The frequent reports from unsafe areas are exactly why coarse bitmaps
(GBSR) flood the server with messages while tall pyramids approach the
rectangular strategies' message counts at higher client energy — the
trade-off of Fig. 5.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple

from ..alarms import AlarmScope, SpatialAlarm
from ..engine.network import DOWNLINK_BITMAP
from ..geometry import Rect
from ..mobility import TraceSample
from ..saferegion import BitmapSafeRegion, PBSRComputer
from .base import ClientState, ProcessingStrategy


class BitmapComputer(Protocol):
    """Structural interface of GBSR/PBSR safe-region computers."""

    def compute(self, cell: Rect, public_obstacles: Sequence[Rect],
                personal_obstacles: Sequence[Rect] = ()
                ) -> BitmapSafeRegion:
        ...


class BitmapSafeRegionStrategy(ProcessingStrategy):
    """Safe region-based processing with pyramid bitmaps.

    ``computer`` must provide ``compute(cell, public_obstacles,
    personal_obstacles)`` — :class:`~repro.saferegion.PBSRComputer` (any
    height; height 1 is the GBSR configuration) or
    :class:`~repro.saferegion.GBSRComputer`.
    """

    def __init__(self, computer: Optional[BitmapComputer] = None,
                 name: str = "PBSR") -> None:
        self.computer = computer if computer is not None else PBSRComputer()
        self.name = name

    def on_sample(self, client: ClientState, sample: TraceSample) -> None:
        if (client.cell_rect is not None
                and client.cell_rect.contains_point(sample.position)):
            # A cell_rect is only ever installed together with a region.
            assert client.safe_region is not None
            inside, ops = client.safe_region.probe(sample.position)
            self._charge_probe(ops)
            if inside:
                return
            # Unsafe area within the cell: report, but only re-ship the
            # bitmap when a firing actually changed it.
            self._uplink_location()
            fired = self.server.process_location(client.user_id, sample.time,
                                                 sample.position)
            if fired:
                self._ship_region(client, sample, client.cell_rect)
            return

        # Entered a new base cell (or first fix): full recomputation.
        # Leaving the cell ends the residency of the region scoped to it.
        self._note_region_exit(client, sample.time)
        self._uplink_location()
        self.server.process_location(client.user_id, sample.time,
                                     sample.position)
        cell = self.server.current_cell(sample.position)
        self._ship_region(client, sample, cell)

    # ------------------------------------------------------------------
    def _ship_region(self, client: ClientState, sample: TraceSample,
                     cell: Rect) -> None:
        server = self.server
        with server.timed_saferegion(client.user_id, sample.time):
            pending = server.pending_alarms_in(client.user_id, cell)
            public, personal = _split_by_scope(pending)
            with self._profiled("saferegion_compute"):
                region = self.computer.compute(cell, public, personal)
        client.safe_region = region
        client.cell_rect = cell
        self._mark_region_installed(client, sample.time)
        with self._profiled("encoding"):
            payload = server.sizes.bitmap_message(region.size_bits())
        server.send_downlink(payload, user_id=client.user_id,
                             time_s=sample.time, kind=DOWNLINK_BITMAP)


def _split_by_scope(alarms: List[SpatialAlarm]
                    ) -> Tuple[List[Rect], List[Rect]]:
    """Partition pending alarms into (public, private/shared) regions."""
    public: List[Rect] = []
    personal: List[Rect] = []
    for alarm in alarms:
        if alarm.scope is AlarmScope.PUBLIC:
            public.append(alarm.region)
        else:
            personal.append(alarm.region)
    return public, personal
