"""Processing-strategy interface.

A *strategy* is one of the paper's alarm-processing approaches, split
along the paper's own client/server line: the strategy object is the
**client half** (what the device does on every position fix, and when it
speaks), and its :meth:`ProcessingStrategy.server_policy` supplies the
**server half** (a :class:`~repro.protocol.handlers.ServerPolicy` that
computes safe regions, safe periods or alarm lists in response to
requests).  The two halves communicate exclusively through the typed
protocol messages of :mod:`repro.protocol.messages`, carried by the
:class:`~repro.protocol.transport.ClientSession` the engine attaches —
never by sharing Python state — so any transport (in-process, lossy)
can sit between them and the byte accounting at the transport boundary
covers everything they exchange.

Strategies must uphold the accuracy contract: every ground-truth trigger
is delivered, at the sample where it occurs (verified by the engine).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..geometry import Rect
from ..mobility import TraceSample
from ..protocol.handlers import EVALUATE_ONLY, ServerPolicy
from ..protocol.messages import (AlarmRecord, LocationReport,
                                 RegionExitReport, ServerReply)

if TYPE_CHECKING:
    from ..mobility.batch import SampleBatch
    from ..protocol.transport import ClientSession
    from ..saferegion.base import SafeRegion


class ClientState:
    """Per-vehicle client-side state.

    Strategies stash whatever the mobile device would hold — the current
    safe region, a safe-period expiry, a local alarm list — on this
    object; the attributes below cover all built-in strategies.
    """

    __slots__ = ("user_id", "sequence", "safe_region", "cell_rect",
                 "expiry", "local_alarms", "region_installed_at")

    def __init__(self, user_id: int) -> None:
        self.user_id = user_id
        # Uplink sequence number; increments per report sent.
        self.sequence: int = 0
        self.safe_region: Optional[SafeRegion] = None
        self.cell_rect: Optional[Rect] = None
        self.expiry: float = float("-inf")  # safe-period strategy
        self.local_alarms: List[AlarmRecord] = []  # optimal strategy
        # Simulation time the current safe region (or safe period, or
        # OPT alarm set) began its residency; None between residencies.
        # Telemetry-only: drives the saferegion_exit residence metric.
        self.region_installed_at: Optional[float] = None

    def __repr__(self) -> str:
        return "ClientState(user_id=%d)" % self.user_id


class ProcessingStrategy:
    """Client half of an alarm-processing approach."""

    #: Short identifier used in reports ("PRD", "SP", "MWPSR", ...).
    name: str = "?"

    def server_policy(self) -> ServerPolicy:
        """The server half this strategy needs behind the transport.

        The default is the shared evaluate-only policy: the server
        answers reports with nothing but alarm notifications (the
        periodic baseline).  Strategies that install monitoring state
        return their own policy object, constructed per call so each
        run (and each shard) gets an independent instance.
        """
        return EVALUATE_ONLY

    def attach(self, session: "ClientSession") -> None:
        """Bind the client half to the run's session before any sample.

        The engines call :func:`repro.protocol.connect`, which builds
        the policy and transport and then attaches the session here.
        """
        self.session = session

    def on_sample(self, client: ClientState, sample: TraceSample) -> None:
        """Handle one position fix of one client."""
        raise NotImplementedError

    def on_batch(self, client: ClientState, batch: "SampleBatch") -> None:
        """Handle one client's whole trace (the ``--batch`` engine path).

        The default replays the scalar path sample by sample, so every
        strategy works unmodified until it opts in.  Overrides must be
        *observationally identical* to that loop: same messages in the
        same order with the same timestamps, and the same
        containment-check/op totals (bulk-charged via
        :meth:`_charge_probe_batch`).  The standard shape is: scan the
        silent run with a vectorized kernel, bulk-charge it, then hand
        the first non-silent sample to the unchanged
        :meth:`on_sample`.
        """
        on_sample = self.on_sample
        for sample in batch.samples:
            on_sample(client, sample)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _send_report(self, client: ClientState, sample: TraceSample,
                     exit: bool = False) -> ServerReply:
        """One uplink exchange for this fix; returns the typed replies.

        ``exit=True`` sends a :class:`RegionExitReport` (the client's
        installed state ended), telling the server policy to renew
        monitoring state rather than merely evaluate.
        """
        request_type = RegionExitReport if exit else LocationReport
        request = request_type(user_id=client.user_id,
                               sequence=client.sequence,
                               position=sample.position,
                               heading=sample.heading,
                               speed=sample.speed)
        client.sequence += 1
        return self.session.send(request, sample.time)

    def _mark_region_installed(self, client: ClientState,
                               time_s: float) -> None:
        """Start a residency clock unless one is already running.

        A quick-update re-ship (bitmap fired path) replaces the region
        without the client ever leaving it, so the original residency
        keeps running; only a ship after an exit starts a new clock.
        """
        if client.region_installed_at is None:
            client.region_installed_at = time_s

    def _note_region_exit(self, client: ClientState,
                          time_s: float) -> None:
        """End the client's residency; emit ``saferegion_exit`` if traced."""
        installed_at = client.region_installed_at
        if installed_at is None:
            return
        client.region_installed_at = None
        telemetry = self.session.telemetry
        if telemetry.enabled:
            telemetry.saferegion_exit(time_s, client.user_id,
                                      time_s - installed_at)

    def _charge_probe(self, ops: int) -> None:
        self.session.charge_probe(ops)

    def _charge_probe_batch(self, checks: int, ops: int) -> None:
        """Charge a silent run's probes in one call.

        ``checks`` is the number of samples the run's kernel cleared
        (one scalar probe each), ``ops`` their summed op counts — the
        exact totals the scalar loop would have accumulated one
        :meth:`_charge_probe` at a time.
        """
        self.session.charge_probe_batch(checks, ops)
