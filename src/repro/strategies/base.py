"""Processing-strategy interface.

A *strategy* is one of the paper's alarm-processing approaches: it
defines what the client does on every position fix, what it sends to the
server, and what the server computes and ships back.  Both sides run
in-process against the shared :class:`~repro.engine.server.AlarmServer`,
whose metrics object records every message, probe and timed computation.

Strategies must uphold the accuracy contract: every ground-truth trigger
is delivered, at the sample where it occurs (verified by the engine).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ContextManager, List, Optional

from ..engine.server import AlarmServer
from ..geometry import Rect
from ..mobility import TraceSample

if TYPE_CHECKING:
    from ..alarms import SpatialAlarm
    from ..saferegion.base import SafeRegion


class ClientState:
    """Per-vehicle client-side state.

    Strategies stash whatever the mobile device would hold — the current
    safe region, a safe-period expiry, a local alarm list — on this
    object; the attributes below cover all built-in strategies.
    """

    __slots__ = ("user_id", "safe_region", "cell_rect", "expiry",
                 "local_alarms", "region_installed_at")

    def __init__(self, user_id: int) -> None:
        self.user_id = user_id
        self.safe_region: Optional[SafeRegion] = None
        self.cell_rect: Optional[Rect] = None
        self.expiry: float = float("-inf")  # safe-period strategy
        self.local_alarms: List[SpatialAlarm] = []  # optimal strategy
        # Simulation time the current safe region (or safe period, or
        # OPT alarm set) began its residency; None between residencies.
        # Telemetry-only: drives the saferegion_exit residence metric.
        self.region_installed_at: Optional[float] = None

    def __repr__(self) -> str:
        return "ClientState(user_id=%d)" % self.user_id


class ProcessingStrategy:
    """Interface implemented by every alarm-processing approach."""

    #: Short identifier used in reports ("PRD", "SP", "MWPSR", ...).
    name: str = "?"

    def attach(self, server: AlarmServer) -> None:
        """Bind the strategy to the run's server before the first sample."""
        self.server = server

    def on_sample(self, client: ClientState, sample: TraceSample) -> None:
        """Handle one position fix of one client."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _profiled(self, phase: str) -> ContextManager[None]:
        """Per-phase profiling context (no-op unless the run profiles).

        Strategies wrap their safe-region computation proper in
        ``self._profiled("saferegion_compute")`` and their downlink
        payload production in ``self._profiled("encoding")``; the
        server's own methods mark ``alarm_processing`` and
        ``index_lookup`` internally.
        """
        return self.server.profiled(phase)

    def _uplink_location(self) -> None:
        self.server.receive_location(self.server.sizes.uplink_location)

    def _mark_region_installed(self, client: ClientState,
                               time_s: float) -> None:
        """Start a residency clock unless one is already running.

        A quick-update re-ship (bitmap fired path) replaces the region
        without the client ever leaving it, so the original residency
        keeps running; only a ship after an exit starts a new clock.
        """
        if client.region_installed_at is None:
            client.region_installed_at = time_s

    def _note_region_exit(self, client: ClientState,
                          time_s: float) -> None:
        """End the client's residency; emit ``saferegion_exit`` if traced."""
        installed_at = client.region_installed_at
        if installed_at is None:
            return
        client.region_installed_at = None
        telemetry = self.server.telemetry
        if telemetry.enabled:
            telemetry.saferegion_exit(time_s, client.user_id,
                                      time_s - installed_at)

    def _charge_probe(self, ops: int) -> None:
        metrics = self.server.metrics
        metrics.containment_checks += 1
        metrics.containment_ops += ops
