"""Distributed processing with rectangular safe regions (MWPSR).

The server computes a maximum (weighted) perimeter rectangular safe
region for the client's current grid cell; the client monitors its own
position against the rectangle (one comparison per fix) and contacts the
server only when it exits.  Because the rectangle's interior excludes
every pending relevant alarm region, the first sample inside any alarm
region is necessarily outside the safe region — the client reports at
exactly that sample, so accuracy is 100% with on-time triggers.

Heading for the motion-weighted perimeter can come from either side of
the protocol (``heading_source``): ``"client"`` ships the device's own
heading in the location report (GPS chipsets provide it); ``"server"``
derives it from the two most recent recorded positions — exactly the
``l_s(t')`` to ``l_s(t)`` construction of the paper's Fig. 1(a) — and
needs nothing beyond the position fix.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..engine.network import DOWNLINK_RECT
from ..engine.server import AlarmServer
from ..geometry import Point
from ..mobility import TraceSample
from ..saferegion import MWPSRComputer
from .base import ClientState, ProcessingStrategy


class RectangularSafeRegionStrategy(ProcessingStrategy):
    """Safe region-based processing with MWPSR rectangles.

    ``computer`` selects the variant: weighted (steady-motion model) or
    non-weighted (uniform model), greedy or exhaustive.
    """

    def __init__(self, computer: Optional[MWPSRComputer] = None,
                 name: str = "MWPSR",
                 heading_source: str = "client") -> None:
        if heading_source not in ("client", "server"):
            raise ValueError("heading_source must be 'client' or 'server'")
        self.computer = computer if computer is not None else MWPSRComputer()
        self.name = name
        self.heading_source = heading_source
        self._last_reported: Dict[int, Point] = {}

    def attach(self, server: AlarmServer) -> None:
        super().attach(server)
        self._last_reported = {}  # per-run server-side state

    def on_sample(self, client: ClientState, sample: TraceSample) -> None:
        if client.safe_region is not None:
            inside, ops = client.safe_region.probe(sample.position)
            self._charge_probe(ops)
            if inside:
                return
            self._note_region_exit(client, sample.time)

        self._uplink_location()
        server = self.server
        server.process_location(client.user_id, sample.time, sample.position)
        heading = self._heading_for(client.user_id, sample)
        with server.timed_saferegion(client.user_id, sample.time):
            cell = server.current_cell(sample.position)
            pending = server.pending_alarms_in(client.user_id, cell)
            with self._profiled("saferegion_compute"):
                result = self.computer.compute(sample.position, heading,
                                               cell,
                                               [alarm.region
                                                for alarm in pending])
        client.safe_region = result.to_safe_region()
        client.cell_rect = cell
        self._mark_region_installed(client, sample.time)
        with self._profiled("encoding"):
            payload = server.sizes.rect_message()
        server.send_downlink(payload, user_id=client.user_id,
                             time_s=sample.time, kind=DOWNLINK_RECT)

    def _heading_for(self, user_id: int, sample: TraceSample) -> float:
        """Heading per the configured source.

        Server-side estimation uses the previous *reported* position
        (Fig. 1(a)); the first report of a client, having no history,
        falls back to the device heading.
        """
        if self.heading_source == "client":
            return sample.heading
        previous = self._last_reported.get(user_id)
        self._last_reported[user_id] = sample.position
        if previous is None or previous == sample.position:
            return sample.heading
        return previous.heading_to(sample.position)
