"""Distributed processing with rectangular safe regions (MWPSR).

The server computes a maximum (weighted) perimeter rectangular safe
region for the client's current grid cell and ships it as an
:class:`~repro.protocol.messages.InstallSafeRegion`; the client monitors
its own position against the rectangle (one comparison per fix) and
contacts the server only when it exits — a
:class:`~repro.protocol.messages.RegionExitReport`, which is what tells
the server policy to renew rather than merely evaluate.  Because the
rectangle's interior excludes every pending relevant alarm region, the
first sample inside any alarm region is necessarily outside the safe
region — the client reports at exactly that sample, so accuracy is 100%
with on-time triggers.

Heading for the motion-weighted perimeter can come from either side of
the protocol (``heading_source``): ``"client"`` ships the device's own
heading in the location report (GPS chipsets provide it); ``"server"``
derives it from the two most recent reported positions — exactly the
``l_s(t')`` to ``l_s(t)`` construction of the paper's Fig. 1(a) — and
needs nothing beyond the position fix.  The reported-position history
is server-side state and lives in the run's
:class:`~repro.protocol.state.ServerState` scratch space, never on the
policy object.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from ..geometry import Point
from ..mobility import TraceSample
from ..protocol.handlers import ServerPolicy
from ..protocol.messages import (InstallSafeRegion, Request, Response,
                                 ServerReply)
from ..saferegion import MWPSRComputer, RectangularSafeRegion
from .base import ClientState, ProcessingStrategy

if TYPE_CHECKING:
    from ..alarms import SpatialAlarm
    from ..engine.server import AlarmServer
    from ..mobility.batch import SampleBatch


class RectangularPolicy(ServerPolicy):
    """Server half of MWPSR: a fresh rectangle per region-exit report."""

    #: ``ServerState.scratch`` key of the per-user last-reported
    #: positions (server-side heading estimation).
    SCRATCH_KEY = "rect.last_reported"

    def __init__(self, computer: MWPSRComputer,
                 heading_source: str = "client") -> None:
        self.computer = computer
        self.heading_source = heading_source

    def on_region_exit(self, server: "AlarmServer", request: Request,
                       time_s: float,
                       triggered: Sequence["SpatialAlarm"]
                       ) -> Sequence[Response]:
        heading = self._heading_for(server, request)
        with server.timed_saferegion(request.user_id, time_s):
            cell = server.current_cell(request.position)
            pending = server.pending_alarms_in(request.user_id, cell)
            with server.profiled("saferegion_compute"):
                # Batch mode also vectorizes the server-side candidate
                # pruning; the computed rectangle is bit-identical.
                result = self.computer.compute(request.position, heading,
                                               cell,
                                               [alarm.region
                                                for alarm in pending],
                                               batched=server.use_batch)
        return (InstallSafeRegion(rect=result.rect),)

    def _heading_for(self, server: "AlarmServer",
                     request: Request) -> float:
        """Heading per the configured source.

        Server-side estimation uses the previous *reported* position
        (Fig. 1(a)); the first report of a client, having no history,
        falls back to the device heading carried in the report.
        """
        if self.heading_source == "client":
            return request.heading
        last_reported: Dict[int, Point] = server.state.scratch.setdefault(
            self.SCRATCH_KEY, {})
        previous = last_reported.get(request.user_id)
        last_reported[request.user_id] = request.position
        if previous is None or previous == request.position:
            return request.heading
        return previous.heading_to(request.position)


class RectangularSafeRegionStrategy(ProcessingStrategy):
    """Safe region-based processing with MWPSR rectangles.

    ``computer`` selects the variant: weighted (steady-motion model) or
    non-weighted (uniform model), greedy or exhaustive.
    """

    def __init__(self, computer: Optional[MWPSRComputer] = None,
                 name: str = "MWPSR",
                 heading_source: str = "client") -> None:
        if heading_source not in ("client", "server"):
            raise ValueError("heading_source must be 'client' or 'server'")
        self.computer = computer if computer is not None else MWPSRComputer()
        self.name = name
        self.heading_source = heading_source

    def server_policy(self) -> RectangularPolicy:
        return RectangularPolicy(self.computer, self.heading_source)

    def on_sample(self, client: ClientState, sample: TraceSample) -> None:
        if client.safe_region is not None:
            inside, ops = client.safe_region.probe(sample.position)
            self._charge_probe(ops)
            if inside:
                return
            self._note_region_exit(client, sample.time)

        reply = self._send_report(client, sample, exit=True)
        self._install(client, sample, reply)

    def on_batch(self, client: ClientState, batch: "SampleBatch") -> None:
        """Vectorized silent runs between region exits.

        While a rectangle is installed, the silent condition is plain
        closed containment — one :func:`first_outside` scan replaces
        the per-sample probes, bulk-charging one check and one op per
        cleared sample (``RectangularSafeRegion.probe`` costs 1 op).
        The exit sample goes through the scalar :meth:`on_sample`,
        which charges its own probe and renews the region.
        """
        from ..geometry.batch import first_outside
        samples = batch.samples
        length = len(samples)
        index = 0
        while index < length:
            region = client.safe_region
            if region is None:
                self.on_sample(client, samples[index])
                index += 1
                continue
            assert isinstance(region, RectangularSafeRegion)
            stop = first_outside(region.rect, batch.points, index)
            if stop > index:
                self._charge_probe_batch(stop - index, stop - index)
            if stop >= length:
                return
            self.on_sample(client, samples[stop])
            index = stop + 1

    def _install(self, client: ClientState, sample: TraceSample,
                 reply: ServerReply) -> None:
        for message in reply:
            if isinstance(message, InstallSafeRegion):
                assert message.rect is not None
                client.safe_region = RectangularSafeRegion(message.rect)
                self._mark_region_installed(client, sample.time)
