"""The optimal approach (OPT) — the paper's resource-unconstrained bound.

The server pushes *all* pending relevant alarms of the client's current
grid cell (an :class:`~repro.protocol.messages.InstallAlarmList`); the
client then evaluates its own position against the full list on every
fix.  The client contacts the server only when it crosses into a new
grid cell (a :class:`RegionExitReport` — it needs the new alarm set) or
when an alarm actually triggers locally (a plain
:class:`LocationReport` — the server must record and propagate the
firing; the reply's in-band :class:`AlarmNotification` messages tell the
client which alarms to retire from its local list) — "transmit updates
only when the spatial constraints for one or more relevant alarms are
met".

OPT transmits the fewest client-to-server messages of all approaches but
pays for it twice: the downstream push of whole alarm sets dominates
bandwidth (Fig. 6(b)), and evaluating every alarm on every fix dominates
client energy (Fig. 6(c)) — it "is based on the assumption that clients
have very high capacity".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..mobility import TraceSample

if TYPE_CHECKING:
    from ..geometry import Rect
    from ..geometry.batch import BoolArray
    from ..mobility.batch import SampleBatch
from ..protocol.handlers import ServerPolicy
from ..protocol.messages import (AlarmNotification, AlarmRecord,
                                 InstallAlarmList, Request, Response,
                                 ServerReply)
from .base import ClientState, ProcessingStrategy

if TYPE_CHECKING:
    from ..alarms import SpatialAlarm
    from ..engine.server import AlarmServer


class OptimalPolicy(ServerPolicy):
    """Server half of OPT: push the cell's alarm set on every exit."""

    def on_region_exit(self, server: "AlarmServer", request: Request,
                       time_s: float,
                       triggered: Sequence["SpatialAlarm"]
                       ) -> Sequence[Response]:
        # OPT's "safe-region computation" is pure alarm-list assembly, so
        # the server's internal index_lookup profiling already covers it.
        with server.timed_saferegion(request.user_id, time_s):
            cell = server.current_cell(request.position)
            pending = server.pending_alarms_in(request.user_id, cell)
        return (InstallAlarmList(
            cell=cell,
            alarms=tuple(AlarmRecord(alarm_id=alarm.alarm_id,
                                     region=alarm.region)
                         for alarm in pending)),)


class OptimalStrategy(ProcessingStrategy):
    """Full client-side knowledge of the current cell's alarms."""

    name = "OPT"

    def server_policy(self) -> OptimalPolicy:
        return OptimalPolicy()

    def on_sample(self, client: ClientState, sample: TraceSample) -> None:
        if (client.cell_rect is None
                or not client.cell_rect.contains_point(sample.position)):
            self._refresh_cell(client, sample)
            return

        # Local evaluation: one comparison for the cell bound plus one per
        # locally-held alarm region.
        entered = [record for record in client.local_alarms
                   if record.region.interior_contains_point(sample.position)]
        self._charge_probe(ops=1 + len(client.local_alarms))
        if not entered:
            return

        # A trigger occurred: report it so the server fires the alarms;
        # the in-band notifications name the alarms to retire locally.
        reply = self._send_report(client, sample)
        fired_ids = {message.alarm_id for message in reply
                     if isinstance(message, AlarmNotification)}
        client.local_alarms = [record for record in client.local_alarms
                               if record.alarm_id not in fired_ids]

    def on_batch(self, client: ClientState, batch: "SampleBatch") -> None:
        """Vectorize the per-fix alarm-list evaluation.

        The silent condition is "inside the cell and strictly inside no
        local alarm" — one closed-containment kernel plus one
        rects-vs-points broadcast per scan block, replacing ``1 + k``
        scalar comparisons per sample.  Each silent sample is charged
        exactly those ``1 + k`` ops; cell crossings and triggers fall
        through to the scalar path (which recomputes the alarm list, so
        the batch rebuilds its SoA per run).
        """
        from ..geometry.batch import (RectBatch, any_interior_contains,
                                      contains, first_violation)
        samples = batch.samples
        length = len(samples)
        index = 0
        while index < length:
            cell = client.cell_rect
            if cell is None:
                self.on_sample(client, samples[index])
                index += 1
                continue
            alarms = RectBatch.from_rects(
                [record.region for record in client.local_alarms])
            ops_each = 1 + len(client.local_alarms)

            def silent(start: int, stop: int, cell: Rect = cell,
                       alarms: RectBatch = alarms) -> "BoolArray":
                view = batch.points.slice(start, stop)
                return contains(cell, view) & ~any_interior_contains(
                    alarms, view)

            stop = first_violation(silent, length, index)
            if stop > index:
                self._charge_probe_batch(stop - index,
                                         (stop - index) * ops_each)
            if stop >= length:
                return
            self.on_sample(client, samples[stop])
            index = stop + 1

    # ------------------------------------------------------------------
    def _refresh_cell(self, client: ClientState,
                      sample: TraceSample) -> None:
        """Cell crossing: report, fetch the new cell's alarm set."""
        # Leaving the previous cell ends its alarm set's residency.
        self._note_region_exit(client, sample.time)
        reply = self._send_report(client, sample, exit=True)
        for message in reply:
            if isinstance(message, InstallAlarmList):
                client.cell_rect = message.cell
                client.local_alarms = list(message.alarms)
                self._mark_region_installed(client, sample.time)
