"""The optimal approach (OPT) — the paper's resource-unconstrained bound.

The server pushes *all* pending relevant alarms of the client's current
grid cell to the client, which then evaluates its own position against
the full list on every fix.  The client contacts the server only when it
crosses into a new grid cell (it needs the new alarm set) or when an
alarm actually triggers (the server must record and propagate the
firing) — "transmit updates only when the spatial constraints for one or
more relevant alarms are met".

OPT transmits the fewest client-to-server messages of all approaches but
pays for it twice: the downstream push of whole alarm sets dominates
bandwidth (Fig. 6(b)), and evaluating every alarm on every fix dominates
client energy (Fig. 6(c)) — it "is based on the assumption that clients
have very high capacity".
"""

from __future__ import annotations

from ..engine.network import DOWNLINK_ALARM_PUSH
from ..mobility import TraceSample
from .base import ClientState, ProcessingStrategy


class OptimalStrategy(ProcessingStrategy):
    """Full client-side knowledge of the current cell's alarms."""

    name = "OPT"

    def on_sample(self, client: ClientState, sample: TraceSample) -> None:
        if (client.cell_rect is None
                or not client.cell_rect.contains_point(sample.position)):
            self._refresh_cell(client, sample)
            return

        # Local evaluation: one comparison for the cell bound plus one per
        # locally-held alarm region.
        entered = [alarm for alarm in client.local_alarms
                   if alarm.region.interior_contains_point(sample.position)]
        self._charge_probe(ops=1 + len(client.local_alarms))
        if not entered:
            return

        # A trigger occurred: report it so the server fires the alarms.
        self._uplink_location()
        fired = self.server.process_location(client.user_id, sample.time,
                                             sample.position)
        fired_ids = {alarm.alarm_id for alarm in fired}
        client.local_alarms = [alarm for alarm in client.local_alarms
                               if alarm.alarm_id not in fired_ids]

    # ------------------------------------------------------------------
    def _refresh_cell(self, client: ClientState,
                      sample: TraceSample) -> None:
        """Cell crossing: report, fetch the new cell's alarm set."""
        # Leaving the previous cell ends its alarm set's residency.
        self._note_region_exit(client, sample.time)
        self._uplink_location()
        server = self.server
        server.process_location(client.user_id, sample.time, sample.position)
        # OPT's "safe-region computation" is pure alarm-list assembly, so
        # the server's internal index_lookup profiling already covers it.
        with server.timed_saferegion(client.user_id, sample.time):
            cell = server.current_cell(sample.position)
            client.local_alarms = server.pending_alarms_in(client.user_id,
                                                           cell)
        client.cell_rect = cell
        self._mark_region_installed(client, sample.time)
        with self._profiled("encoding"):
            payload = server.sizes.alarm_push_message(
                len(client.local_alarms))
        server.send_downlink(payload, user_id=client.user_id,
                             time_s=sample.time, kind=DOWNLINK_ALARM_PUSH)
