"""Periodic evaluation (PRD) — the naive server-centric baseline.

Every position fix is sent to the server and evaluated against the alarm
index.  Trivially accurate (the evaluation frequency equals the trace
frequency, so no alarm can be missed) and trivially non-scalable: the
paper's full-scale workload produces about 60 million location messages
per one-hour trace, every one of them processed by the server.

The server half is the shared evaluate-only policy: every reply carries
at most the in-band alarm notifications, never an install message.
"""

from __future__ import annotations

from ..mobility import TraceSample
from .base import ClientState, ProcessingStrategy


class PeriodicStrategy(ProcessingStrategy):
    """Send every fix; the server evaluates every fix."""

    name = "PRD"

    def on_sample(self, client: ClientState, sample: TraceSample) -> None:
        self._send_report(client, sample)
