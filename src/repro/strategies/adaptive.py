"""Adaptive containment scheduling for rectangular safe regions.

The plain rectangular strategy probes the safe region on every position
fix.  But a client 900 m from every edge of its region, capped at
30 m/s, provably cannot exit for 30 s — probing meanwhile is wasted
energy.  This extension (in the spirit of the paper's "fast containment
check" requirement, Section 2.1) applies the safe-period idea *inside*
the client: after a probe finds the client at distance ``d`` from the
region boundary, the next probe is scheduled ``d / v_max`` seconds out.

Accuracy is unharmed, by the same induction as the safe-period
baseline: no sample before the scheduled probe can lie outside the
region, every alarm region is outside the region, so the first sample
that could trigger an alarm is at or after a scheduled probe — and
probes chain forward until they land on it.

The server half is the plain :class:`RectangularPolicy` — adaptivity is
purely a client-side scheduling decision, which the protocol split
makes literal: the server cannot tell the two strategies apart.

The energy ablation benchmark measures the probe reduction; the test
suite asserts the accuracy contract is intact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..mobility import TraceSample

if TYPE_CHECKING:
    from ..mobility.batch import SampleBatch
from ..protocol.messages import InstallSafeRegion, ServerReply
from ..saferegion import MWPSRComputer, RectangularSafeRegion
from .base import ClientState
from .rectangular import RectangularSafeRegionStrategy


class AdaptiveRectangularStrategy(RectangularSafeRegionStrategy):
    """MWPSR processing with self-scheduled containment probes.

    ``max_speed`` bounds the client's own velocity (a device knows its
    vehicle class; the system-wide cap is always sound).  The strategy
    reuses :class:`ClientState.expiry` as the next scheduled probe time.
    """

    def __init__(self, max_speed: float,
                 computer: Optional[MWPSRComputer] = None,
                 name: str = "MWPSR-adaptive") -> None:
        super().__init__(computer, name=name)
        if max_speed <= 0:
            raise ValueError("max_speed must be positive")
        self.max_speed = max_speed

    def on_sample(self, client: ClientState, sample: TraceSample) -> None:
        if client.safe_region is not None and sample.time < client.expiry:
            return  # provably still inside; not even a probe is needed

        if client.safe_region is not None:
            region = client.safe_region
            inside, ops = region.probe(sample.position)
            self._charge_probe(ops)
            if inside:
                # This strategy only ever installs rectangular regions.
                assert isinstance(region, RectangularSafeRegion)
                # schedule the next probe by the distance to the boundary
                slack = region.rect.boundary_distance(sample.position)
                client.expiry = sample.time + slack / self.max_speed
                return
            self._note_region_exit(client, sample.time)

        reply = self._send_report(client, sample, exit=True)
        self._install(client, sample, reply)

    def on_batch(self, client: ClientState, batch: "SampleBatch") -> None:
        """Skip scheduled-out samples with one sorted lookup.

        The adaptive silent run costs *nothing* on the scalar path (no
        probe before the scheduled time), so the batch form charges
        nothing either: ``searchsorted`` jumps straight to the first
        sample at or after the expiry — the array form of the strict
        ``time < expiry`` skip — and everything else (probe,
        rescheduling, exits) stays scalar.
        """
        samples = batch.samples
        times = batch.times
        length = len(samples)
        index = 0
        while index < length:
            if (client.safe_region is not None
                    and times[index] < client.expiry):
                index = int(times.searchsorted(client.expiry, side="left"))
                continue
            self.on_sample(client, samples[index])
            index += 1

    def _install(self, client: ClientState, sample: TraceSample,
                 reply: ServerReply) -> None:
        for message in reply:
            if isinstance(message, InstallSafeRegion):
                assert message.rect is not None
                client.safe_region = RectangularSafeRegion(message.rect)
                client.expiry = sample.time + (
                    message.rect.boundary_distance(sample.position)
                    / self.max_speed)
                self._mark_region_installed(client, sample.time)
