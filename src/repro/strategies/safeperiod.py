"""Safe period-based evaluation (SP) — the server-centric baseline of
Bamba et al., HiPC 2008 (reference [3] of the paper).

On every location report the server computes a *safe period*: a lower
bound on the time before the subscriber could possibly enter any pending
relevant alarm region.  The client stays silent until the period
expires.  The bound must be pessimistic to guarantee zero misses — the
distance to the nearest pending alarm region divided by the maximum
speed any subscriber can attain — which is exactly why SP sends the
paper's observed 2-3x more messages than the safe-region approaches:
near alarms the pessimistic period collapses to (almost) zero and the
client effectively reverts to periodic reporting.

No-miss argument: at report time ``t`` the nearest pending alarm is at
distance ``d``, so the subscriber cannot be inside any alarm region
before ``t + d/v_max``; the client reports again at the first sample at
or after that instant, and by induction a report lands on every sample
at which a trigger occurs.
"""

from __future__ import annotations

import math

from ..engine.network import DOWNLINK_SAFE_PERIOD
from ..mobility import TraceSample
from .base import ClientState, ProcessingStrategy


class SafePeriodStrategy(ProcessingStrategy):
    """Safe-period processing with a system-wide maximum-speed bound."""

    name = "SP"

    def __init__(self, max_speed: float) -> None:
        if max_speed <= 0:
            raise ValueError("max_speed must be positive")
        self.max_speed = max_speed

    def on_sample(self, client: ClientState, sample: TraceSample) -> None:
        # The client's only work while waiting is a timer comparison.
        self._charge_probe(ops=1)
        if sample.time < client.expiry:
            return
        self._note_region_exit(client, sample.time)

        self._uplink_location()
        server = self.server
        server.process_location(client.user_id, sample.time, sample.position)
        with server.timed_saferegion(client.user_id, sample.time):
            distance = server.pending_nearest_distance(client.user_id,
                                                       sample.position)
            with self._profiled("saferegion_compute"):
                if math.isinf(distance):
                    expiry = math.inf
                else:
                    expiry = sample.time + distance / self.max_speed
        client.expiry = expiry
        self._mark_region_installed(client, sample.time)
        with self._profiled("encoding"):
            payload = server.sizes.safe_period_message()
        server.send_downlink(payload, user_id=client.user_id,
                             time_s=sample.time, kind=DOWNLINK_SAFE_PERIOD)
