"""Safe period-based evaluation (SP) — the server-centric baseline of
Bamba et al., HiPC 2008 (reference [3] of the paper).

On every region-exit report (the previous period expired) the server
computes a *safe period*: a lower bound on the time before the
subscriber could possibly enter any pending relevant alarm region, and
ships it as an :class:`~repro.protocol.messages.InstallSafePeriod`.  The
client stays silent until the period expires.  The bound must be
pessimistic to guarantee zero misses — the distance to the nearest
pending alarm region divided by the maximum speed any subscriber can
attain — which is exactly why SP sends the paper's observed 2-3x more
messages than the safe-region approaches: near alarms the pessimistic
period collapses to (almost) zero and the client effectively reverts to
periodic reporting.

No-miss argument: at report time ``t`` the nearest pending alarm is at
distance ``d``, so the subscriber cannot be inside any alarm region
before ``t + d/v_max``; the client reports again at the first sample at
or after that instant, and by induction a report lands on every sample
at which a trigger occurs.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from ..mobility.batch import SampleBatch

from ..mobility import TraceSample
from ..protocol.handlers import ServerPolicy
from ..protocol.messages import (InstallSafePeriod, Request, Response,
                                 ServerReply)
from .base import ClientState, ProcessingStrategy

if TYPE_CHECKING:
    from ..alarms import SpatialAlarm
    from ..engine.server import AlarmServer


class SafePeriodPolicy(ServerPolicy):
    """Server half of SP: answer every exit report with a fresh period."""

    def __init__(self, max_speed: float) -> None:
        self.max_speed = max_speed

    def on_region_exit(self, server: "AlarmServer", request: Request,
                       time_s: float,
                       triggered: Sequence["SpatialAlarm"]
                       ) -> Sequence[Response]:
        with server.timed_saferegion(request.user_id, time_s):
            distance = server.pending_nearest_distance(request.user_id,
                                                       request.position)
            with server.profiled("saferegion_compute"):
                if math.isinf(distance):
                    expiry = math.inf
                else:
                    expiry = time_s + distance / self.max_speed
        return (InstallSafePeriod(expiry=expiry),)


class SafePeriodStrategy(ProcessingStrategy):
    """Safe-period processing with a system-wide maximum-speed bound."""

    name = "SP"

    def __init__(self, max_speed: float) -> None:
        if max_speed <= 0:
            raise ValueError("max_speed must be positive")
        self.max_speed = max_speed

    def server_policy(self) -> SafePeriodPolicy:
        return SafePeriodPolicy(self.max_speed)

    def on_sample(self, client: ClientState, sample: TraceSample) -> None:
        # The client's only work while waiting is a timer comparison.
        self._charge_probe(ops=1)
        if sample.time < client.expiry:
            return
        self._note_region_exit(client, sample.time)

        reply = self._send_report(client, sample, exit=True)
        self._install(client, sample, reply)

    def on_batch(self, client: ClientState, batch: "SampleBatch") -> None:
        """Jump each waiting period with one sorted lookup.

        ``searchsorted(expiry, side='left')`` lands on the first sample
        with ``time >= expiry`` — the exact complement of the scalar
        strict ``time < expiry`` wait.  The skipped samples each cost
        the scalar path one timer comparison, so the run bulk-charges
        one check and one op per sample; the expiring sample reports
        through the scalar path.
        """
        samples = batch.samples
        times = batch.times
        length = len(samples)
        index = 0
        while index < length:
            stop = int(times.searchsorted(client.expiry, side="left"))
            if stop < index:
                stop = index
            if stop > index:
                self._charge_probe_batch(stop - index, stop - index)
            if stop >= length:
                return
            self.on_sample(client, samples[stop])
            index = stop + 1

    def _install(self, client: ClientState, sample: TraceSample,
                 reply: ServerReply) -> None:
        for message in reply:
            if isinstance(message, InstallSafePeriod):
                client.expiry = message.expiry
                self._mark_region_installed(client, sample.time)
