"""Alarm-processing strategies: the paper's approaches plus baselines."""

from .adaptive import AdaptiveRectangularStrategy
from .base import ClientState, ProcessingStrategy
from .bitmap import BitmapSafeRegionStrategy
from .optimal import OptimalStrategy
from .periodic import PeriodicStrategy
from .rectangular import RectangularSafeRegionStrategy
from .safeperiod import SafePeriodStrategy

__all__ = [
    "AdaptiveRectangularStrategy",
    "BitmapSafeRegionStrategy",
    "ClientState",
    "OptimalStrategy",
    "PeriodicStrategy",
    "ProcessingStrategy",
    "RectangularSafeRegionStrategy",
    "SafePeriodStrategy",
]
