"""The whole-program project model the checkers analyze.

:class:`ProjectModel` parses every ``.py`` file under one root exactly
once and exposes the cross-module facts single-file lint rules cannot
see: the module graph (resolved imports), the class/attribute table
(dataclass field order per class), the function table (one level of the
call graph), and the string-literal tables (module-level string
constants, resolvable through imports).  Checkers locate the modules
they care about by *package-relative path suffix* — e.g.
``protocol/messages.py`` — so the same checker runs unchanged over the
shipped tree and over the miniature fixture trees in
``tests/analysis/fixtures/``.

Resolution is deliberately best-effort: a name that cannot be resolved
statically (computed imports, ``*`` imports, attribute chains) resolves
to ``None`` and checkers decide whether that is a finding or a shrug.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, FrozenSet, Iterator, List,
                    Optional, Tuple, Union)

from ..lintkit.pragmas import collect_pragmas
from ..lintkit.rules.rl004_fork_safety import _module_level_mutables

if TYPE_CHECKING:  # import cycle: concurrency builds on this module
    from .concurrency import ConcurrencyModel

#: Either def flavor — most model code treats them uniformly.
AnyFunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class AnalysisError(Exception):
    """Unrecoverable analysis failure (unreadable or unparsable input)."""


@dataclass
class ClassInfo:
    """One class definition: bases and annotated-field order."""

    name: str
    node: ast.ClassDef
    #: Terminal names of the base expressions (``ServerPolicy`` for both
    #: ``ServerPolicy`` and ``handlers.ServerPolicy``).
    bases: Tuple[str, ...]
    #: Annotated class-level fields in declaration order — for the
    #: frozen protocol dataclasses this *is* the dataclass field order.
    fields: Tuple[str, ...]


@dataclass
class FunctionInfo:
    """One function or method, with its concurrency-relevant facts.

    Collected for *every* def in a module — module level, methods,
    nested — unlike :attr:`ModuleInfo.functions`, which keeps only the
    module-level sync defs the original resolvers were built around.
    """

    #: Dotted position in the module (``AlarmDaemon.aclose``,
    #: ``outer.inner`` for nested defs).
    qualname: str
    name: str
    node: AnyFunctionDef
    #: Immediately-enclosing class name, ``None`` outside class bodies.
    class_name: Optional[str]
    is_async: bool
    #: Suspension points (``await`` / ``async for`` / ``async with``)
    #: in source order, excluding nested defs — ``()`` for sync defs.
    awaits: Tuple[Tuple[int, int], ...]


def own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func``'s own body, not descending into nested defs.

    The concurrency analyses ask "what does *this* function do when
    called"; statements inside a nested ``def``/``lambda`` only run
    when the nested callable is invoked, so they belong to the nested
    function's own entry in the model.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def await_points(func: AnyFunctionDef) -> Tuple[Tuple[int, int], ...]:
    """Positions of every suspension point in ``func``, source order.

    ``await`` expressions plus ``async for`` / ``async with`` headers;
    suspension points inside nested defs belong to the nested def.
    """
    points = [(node.lineno, node.col_offset)
              for node in own_nodes(func)
              if isinstance(node, (ast.Await, ast.AsyncFor,
                                   ast.AsyncWith))]
    return tuple(sorted(points))


@dataclass
class ModuleInfo:
    """Everything the model knows about one parsed module."""

    display_path: str
    rel_path: str
    #: Dotted module name relative to the analysis root (``""`` for the
    #: root package's ``__init__``).
    name: str
    source: str
    tree: ast.Module
    #: ``# lint: allow=`` pragmas by line (used for suppression).
    allowed: Dict[int, FrozenSet[str]]
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-level functions by name.
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: Every def in the module (methods and nested defs included),
    #: keyed by qualname — the concurrency checkers' function table.
    all_functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Module-level ``NAME = "literal"`` string constants.
    constants: Dict[str, str] = field(default_factory=dict)
    #: ``from X import a as b`` edges: local name -> (dotted source
    #: module, original name).  Plain ``import X`` edges are omitted —
    #: no checker needs them.
    imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: Module-level names bound to mutable containers (lists, dicts,
    #: sets and their factory calls) — the state PA003 guards.
    mutables: FrozenSet[str] = frozenset()

    def union_members(self, alias: str) -> Optional[Tuple[str, ...]]:
        """Member class names of ``alias = Union[A, B, ...]``, if any.

        A single-name alias (``Request = LocationReport``) resolves to
        that one name; anything unrecognizable resolves to ``None``.
        """
        for stmt in self.tree.body:
            if not (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == alias):
                continue
            value = stmt.value
            if (isinstance(value, ast.Subscript)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "Union"
                    and isinstance(value.slice, ast.Tuple)):
                names = [elt.id for elt in value.slice.elts
                         if isinstance(elt, ast.Name)]
                if len(names) == len(value.slice.elts):
                    return tuple(names)
                return None
            if isinstance(value, ast.Name):
                return (value.id,)
            return None
        return None


@dataclass
class ResolvedStrings:
    """Outcome of resolving one expression to string values.

    ``full`` holds completely-resolved values; ``prefixes``/``suffixes``
    hold the literal halves of partially-dynamic concatenations
    (``"downlink_messages_" + kind`` yields one prefix).  ``unresolved``
    is set when some branch produced no literal at all.
    """

    full: List[str] = field(default_factory=list)
    prefixes: List[str] = field(default_factory=list)
    suffixes: List[str] = field(default_factory=list)
    unresolved: bool = False

    @property
    def empty(self) -> bool:
        return not (self.full or self.prefixes or self.suffixes)


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _class_info(node: ast.ClassDef) -> ClassInfo:
    bases = tuple(name for name in (_terminal_name(base)
                                    for base in node.bases)
                  if name is not None)
    fields_: List[str] = []
    for stmt in node.body:
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            fields_.append(stmt.target.id)
    return ClassInfo(name=node.name, node=node, bases=bases,
                     fields=tuple(fields_))


#: Minimum tree size before ``--jobs`` forks a parse pool.  Below it,
#: pool spin-up plus result pickling costs more than the parses.
PARALLEL_THRESHOLD = 50


def _parse_path(root: Path, path: Path, rel_path: str) -> "ModuleInfo":
    """Read and parse one file into its :class:`ModuleInfo`."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError("cannot read %s: %s" % (path, exc)) from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError("cannot parse %s: %s" % (path, exc)) from exc
    return ProjectModel._module_info(root, path, rel_path, source, tree)


def _parse_one(work: Tuple[str, str, str]) -> Tuple[str, "ModuleInfo"]:
    """Process-pool worker: one ``(root, path, rel_path)`` → module.

    Module-level and pure (no state beyond its argument) so it pickles
    to worker processes and a parallel build is bit-identical to a
    serial one.  :class:`AnalysisError` pickles too — a worker's parse
    failure surfaces in the parent exactly as the serial loop's would.
    """
    root_s, path_s, rel_path = work
    return rel_path, _parse_path(Path(root_s), Path(path_s), rel_path)


class ProjectModel:
    """All modules under one root, parsed once, with resolved imports."""

    def __init__(self, root: Path,
                 modules: Dict[str, ModuleInfo]) -> None:
        self.root = root
        #: Modules keyed by root-relative POSIX path.
        self.modules = modules
        self._by_name: Dict[str, ModuleInfo] = {
            info.name: info for info in modules.values()}
        self._concurrency: Optional["ConcurrencyModel"] = None

    # -- construction --------------------------------------------------
    @classmethod
    def build(cls, root: Path, jobs: int = 0) -> "ProjectModel":
        """Parse every ``.py`` file under ``root`` into a model.

        ``jobs`` > 1 parses with that many worker processes once the
        tree is large enough to amortize the pool spin-up (see
        :data:`PARALLEL_THRESHOLD`); the resulting model is identical
        to a serial build — workers are pure path→``ModuleInfo``
        functions and results are collected in the same sorted-path
        order.

        Raises :class:`AnalysisError` when the root is missing, is not
        a directory, or any file fails to read or parse — the analyzer
        refuses to report "clean" over a tree it could not see.
        """
        root = Path(root)
        if not root.is_dir():
            raise AnalysisError("no such directory: %s" % root)
        paths = sorted(root.rglob("*.py"))
        modules: Dict[str, ModuleInfo] = {}
        if jobs > 1 and len(paths) > PARALLEL_THRESHOLD:
            from concurrent.futures import ProcessPoolExecutor
            work = [(str(root), str(path),
                     path.relative_to(root).as_posix())
                    for path in paths]
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for rel_path, info in pool.map(_parse_one, work):
                    modules[rel_path] = info
            return cls(root, modules)
        for path in paths:
            rel_path = path.relative_to(root).as_posix()
            modules[rel_path] = _parse_path(root, path, rel_path)
        return cls(root, modules)

    @classmethod
    def _module_info(cls, root: Path, path: Path, rel_path: str,
                     source: str, tree: ast.Module) -> ModuleInfo:
        parts = rel_path[:-len(".py")].split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        info = ModuleInfo(display_path=str(path), rel_path=rel_path,
                          name=".".join(parts), source=source, tree=tree,
                          allowed=collect_pragmas(source),
                          mutables=frozenset(
                              _module_level_mutables(tree)))
        package = rel_path.split("/")[:-1]
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                info.classes[stmt.name] = _class_info(stmt)
            elif isinstance(stmt, ast.FunctionDef):
                info.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign):
                cls._record_constant(info, stmt)
            elif isinstance(stmt, ast.ImportFrom):
                cls._record_import(info, stmt, package, root.name)
        cls._collect_functions(info, tree.body, prefix="",
                               class_name=None)
        return info

    @classmethod
    def _collect_functions(cls, info: ModuleInfo,
                           body: List[ast.stmt], prefix: str,
                           class_name: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + stmt.name
                info.all_functions[qualname] = FunctionInfo(
                    qualname=qualname, name=stmt.name, node=stmt,
                    class_name=class_name,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    awaits=await_points(stmt))
                # Nested defs are plain closures, not methods.
                cls._collect_functions(info, stmt.body,
                                       prefix=qualname + ".",
                                       class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                cls._collect_functions(info, stmt.body,
                                       prefix=prefix + stmt.name + ".",
                                       class_name=stmt.name)

    @staticmethod
    def _record_constant(info: ModuleInfo, stmt: ast.Assign) -> None:
        if (len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)):
            info.constants[stmt.targets[0].id] = stmt.value.value

    @staticmethod
    def _record_import(info: ModuleInfo, stmt: ast.ImportFrom,
                       package: List[str], root_name: str) -> None:
        if stmt.level > 0:
            if stmt.level - 1 > len(package):
                return  # escapes the analysis root
            base = package[:len(package) - (stmt.level - 1)]
        else:
            base = []
        module = stmt.module or ""
        # Absolute imports of the root package itself resolve as if
        # relative to the root (``repro.geometry`` -> ``geometry``).
        if stmt.level == 0:
            if module == root_name:
                module = ""
            elif module.startswith(root_name + "."):
                module = module[len(root_name) + 1:]
        dotted = ".".join(base + (module.split(".") if module else []))
        for alias in stmt.names:
            local = alias.asname or alias.name
            info.imports[local] = (dotted, alias.name)

    # -- lookup --------------------------------------------------------
    def find(self, suffix: str) -> Optional[ModuleInfo]:
        """The module whose rel path is ``suffix`` or ends with it."""
        exact = self.modules.get(suffix)
        if exact is not None:
            return exact
        for rel_path in sorted(self.modules):
            if rel_path.endswith("/" + suffix):
                return self.modules[rel_path]
        return None

    def module_by_name(self, dotted: str) -> Optional[ModuleInfo]:
        """The module with this root-relative dotted name, if parsed."""
        return self._by_name.get(dotted)

    def iter_modules(self) -> Iterator[ModuleInfo]:
        for rel_path in sorted(self.modules):
            yield self.modules[rel_path]

    def by_display_path(self, display_path: str) -> Optional[ModuleInfo]:
        for info in self.modules.values():
            if info.display_path == display_path:
                return info
        return None

    def concurrency(self) -> "ConcurrencyModel":
        """The (cached) concurrency view: call graph, domains, roots.

        Built lazily so trees analyzed only by the structural checkers
        never pay for it, and cached so PA005-PA007 share one build.
        """
        if self._concurrency is None:
            from .concurrency import ConcurrencyModel
            self._concurrency = ConcurrencyModel.build(self)
        return self._concurrency

    # -- cross-module resolution ---------------------------------------
    def resolve_function(self, module: ModuleInfo, name: str
                         ) -> Optional[Tuple[ModuleInfo, ast.FunctionDef]]:
        """Resolve a called name to its defining module and def node."""
        if name in module.functions:
            return module, module.functions[name]
        imported = module.imports.get(name)
        if imported is None:
            return None
        source_module = self.module_by_name(imported[0])
        if source_module is None:
            return None
        func = source_module.functions.get(imported[1])
        if func is None:
            return None
        return source_module, func

    def resolve_constant(self, module: ModuleInfo,
                         name: str) -> Optional[str]:
        """Resolve a name to a module-level string constant's value."""
        if name in module.constants:
            return module.constants[name]
        imported = module.imports.get(name)
        if imported is None:
            return None
        source_module = self.module_by_name(imported[0])
        if source_module is None:
            return None
        return source_module.constants.get(imported[1])

    def resolve_strings(self, module: ModuleInfo,
                        node: ast.expr) -> ResolvedStrings:
        """Resolve an expression to the string values it can take.

        Handles literals, module-level constants (through one import
        hop), conditional expressions (both branches) and binary
        concatenation with one dynamic side (recorded as a prefix or a
        suffix).  Anything else marks the result ``unresolved``.
        """
        result = ResolvedStrings()
        self._resolve_into(module, node, result)
        return result

    def _resolve_into(self, module: ModuleInfo, node: ast.expr,
                      result: ResolvedStrings) -> None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            result.full.append(node.value)
            return
        if isinstance(node, ast.Name):
            value = self.resolve_constant(module, node.id)
            if value is None:
                result.unresolved = True
            else:
                result.full.append(value)
            return
        if isinstance(node, ast.IfExp):
            self._resolve_into(module, node.body, result)
            self._resolve_into(module, node.orelse, result)
            return
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left = self.resolve_strings(module, node.left)
            right = self.resolve_strings(module, node.right)
            if left.full and right.full and not left.unresolved \
                    and not right.unresolved:
                result.full.extend(lhs + rhs for lhs in left.full
                                   for rhs in right.full)
            elif left.full and not left.unresolved:
                result.prefixes.extend(left.full)
            elif right.full and not right.unresolved:
                result.suffixes.extend(right.full)
            else:
                result.unresolved = True
            return
        result.unresolved = True
