"""The ``repro analyze`` subcommand.

Exit codes mirror ``repro lint`` (CI keys off them):

* ``0`` — every selected checker passed over the analyzed tree;
* ``1`` — one or more diagnostics (printed as
  ``file:line:col: PAxxx message``, or as the JSON/SARIF report);
* ``2`` — usage or input error (unknown checker id, missing root,
  syntax error in an analyzed file).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from ..lintkit.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS
from ..lintkit.sarif import RuleMetadata, to_sarif
from .base import ALL_CHECKERS, get_checker
from .model import AnalysisError
from .runner import run_analysis


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the analyze options to a (sub)parser."""
    parser.add_argument("root", nargs="?", type=Path, default=None,
                        help="directory to analyze "
                             "(default: the repro package tree)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="output_format",
                        help="report format (default: text)")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="ID", dest="rule_ids",
                        help="run only this checker id (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered checkers and exit")
    parser.add_argument("--debt", type=Path, default=None,
                        metavar="PATH",
                        help="pragma-debt ledger for PA004 "
                             "(default: lint_debt.json found from the "
                             "root upward)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="parse with N worker processes when the "
                             "tree is large enough (default: serial)")
    parser.add_argument("--sarif-base-uri", default=None,
                        metavar="URL", dest="sarif_base_uri",
                        help="prefix rule helpUris with this URL in "
                             "SARIF output (e.g. a repository blob "
                             "URL)")


def run_analyze_command(args: argparse.Namespace) -> int:
    """Execute the analyze subcommand; returns the process exit code."""
    if args.list_rules:
        for cls in ALL_CHECKERS():
            print("%s  %s" % (cls.checker_id, cls.title))
        return EXIT_CLEAN
    checker_classes = None
    if args.rule_ids:
        try:
            checker_classes = [get_checker(rule_id.upper())
                               for rule_id in args.rule_ids]
        except KeyError as exc:
            print("error: unknown checker id %s (try --list-rules)"
                  % exc)
            return EXIT_ERROR
    try:
        report = run_analysis(root=args.root,
                              checker_classes=checker_classes,
                              debt_path=args.debt, jobs=args.jobs)
    except AnalysisError as exc:
        print("error: %s" % exc)
        return EXIT_ERROR
    if args.output_format == "json":
        print(report.to_json())
    elif args.output_format == "sarif":
        print(to_sarif(report, "repro-analyze",
                       [RuleMetadata.of(cls.checker_id, cls.title, cls)
                        for cls in ALL_CHECKERS()],
                       base_uri=args.sarif_base_uri))
    else:
        print(report.render_text())
    return EXIT_CLEAN if report.ok else EXIT_FINDINGS


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Whole-program contract analyzer for the repro "
                    "codebase (see docs/STATIC_ANALYSIS.md)")
    add_analyze_arguments(parser)
    return run_analyze_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - via `repro analyze`
    import sys
    sys.exit(main())
