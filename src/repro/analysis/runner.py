"""Model construction, checker dispatch and report assembly.

The analysis runner is the whole-program counterpart of
:mod:`repro.lintkit.runner`: build one :class:`ProjectModel` over the
analysis root, run every selected checker against it, filter the
diagnostics through the same line pragmas the linter honors, and
return the shared :class:`~repro.lintkit.runner.LintReport` — so text,
JSON and SARIF rendering, counting and exit-code mapping are one
implementation for both tools.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Type

from ..lintkit.diagnostics import Diagnostic
from ..lintkit.pragmas import is_allowed
from ..lintkit.runner import LintReport
from .base import ALL_CHECKERS, Checker
from .model import AnalysisError, ProjectModel


def package_root() -> Path:
    """Directory of the ``repro`` package (the default analysis root)."""
    return Path(__file__).resolve().parent.parent


def run_analysis(root: Optional[Path] = None,
                 checker_classes: Optional[Sequence[Type[Checker]]]
                 = None,
                 debt_path: Optional[Path] = None,
                 jobs: int = 0) -> LintReport:
    """Analyze the tree under ``root`` and return the report.

    ``checker_classes`` defaults to every registered checker;
    ``debt_path`` overrides PA004's upward search for
    ``lint_debt.json``; ``jobs`` > 1 parallelizes the parse phase
    (identical findings — see :meth:`ProjectModel.build`).  Raises
    :class:`AnalysisError` on unreadable or unparsable input.
    """
    root = Path(root) if root is not None else package_root()
    model = ProjectModel.build(root, jobs=jobs)
    classes = (list(checker_classes) if checker_classes is not None
               else ALL_CHECKERS())
    diagnostics: List[Diagnostic] = []
    for cls in classes:
        instance = cls()
        if debt_path is not None:
            instance.debt_path = str(debt_path)
        for diag in instance.check(model):
            module = model.by_display_path(diag.path)
            if module is not None and is_allowed(
                    module.allowed, diag.line, diag.rule_id):
                continue
            diagnostics.append(diag)
    return LintReport(diagnostics,
                      files_checked=len(model.modules),
                      rule_ids=[cls.checker_id for cls in classes])
