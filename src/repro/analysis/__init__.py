"""Whole-program contract analysis for the repro codebase.

Where :mod:`repro.lintkit` checks invariants one file at a time, this
package parses the whole source tree once into a
:class:`~repro.analysis.model.ProjectModel` and runs interprocedural
*checkers* (PA001-PA007) over it: protocol exhaustiveness, telemetry
drift, cross-module fork safety, the pragma-debt ratchet, and — via
the :class:`~repro.analysis.concurrency.ConcurrencyModel` call graph —
blocking-call reachability from event-loop code, cross-domain shared
state races with await-atomicity, and task lifecycle hygiene — the
cross-module seams where drift previously surfaced only as a flaky
simulation.  Runnable as ``python -m repro analyze`` with the same
output formats and exit codes as the linter.

See ``docs/STATIC_ANALYSIS.md`` for the checker catalogue, the shared
``# lint: allow=PAxxx`` pragma syntax and the guide to adding checkers.
"""

from .base import ALL_CHECKERS, Checker, checker, get_checker
from .model import AnalysisError, ClassInfo, ModuleInfo, ProjectModel
from .runner import run_analysis

__all__ = [
    "ALL_CHECKERS",
    "AnalysisError",
    "Checker",
    "ClassInfo",
    "ModuleInfo",
    "ProjectModel",
    "checker",
    "get_checker",
    "run_analysis",
]
