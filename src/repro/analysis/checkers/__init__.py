"""Checker catalogue: importing this package registers every checker.

One module per checker, named after its id.  Adding a checker is:
write ``paNNN_name.py`` with a :func:`~repro.analysis.base.checker`-
decorated class, import it here, document it in
``docs/STATIC_ANALYSIS.md``.
"""

from . import (pa001_protocol, pa002_telemetry, pa003_fork,  # noqa: F401
               pa004_debt, pa005_blocking, pa006_races, pa007_tasks,
               pa008_session, pa009_leaks, pa010_causality)
