"""PA002: the telemetry vocabulary and the reconciliation table agree.

Three artifacts describe the same run — the event stream, the metrics
registry, and the engine's ``Metrics`` — and ``repro report``'s
:func:`~repro.telemetry.export.reconcile` is the runtime cross-check
that they agree.  PA002 is the static twin: it verifies that the
*vocabulary* feeding that check is closed.

* every event kind passed to a ``.emit(...)`` call resolves to a key of
  ``telemetry/events.py``'s ``EVENT_FIELDS`` (undeclared kinds would
  fail ``repro trace validate`` at runtime);
* every ``EVENT_*`` constant is a declared ``EVENT_FIELDS`` key and is
  emitted somewhere (no declared-but-never-emitted names);
* every registry counter incremented anywhere (``.counter(name)``) is
  covered by the reconciliation tables in ``telemetry/export.py`` —
  ``RECONCILE_COUNTERS``, ``RECONCILE_REGISTRY_EVENTS``, a
  ``RECONCILE_GROUP_SUMS`` member or, for dynamically-suffixed names,
  a ``RECONCILE_PREFIX_SUMS`` prefix — and vice versa, every
  reconciled name is actually incremented;
* every ``Metrics`` field and event type the tables reference exists.

Dynamic counter names are resolved through the model's string tables:
an ``IfExp`` contributes both branches, and ``"prefix" + expr`` /
``expr + "suffix"`` contribute a literal prefix/suffix matched against
the tables (a prefix must appear in ``RECONCILE_PREFIX_SUMS``; a suffix
is covered when a fully-reconciled name ends with it).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ...lintkit.diagnostics import Diagnostic
from ..base import Checker, checker
from ..model import ModuleInfo, ProjectModel


def _pairs_table(module: ModuleInfo, name: str
                 ) -> Optional[List[Tuple[str, str]]]:
    """Parse ``NAME = (("a", "b"), ...)`` from the module body."""
    for stmt in module.tree.body:
        if not (isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == name
                and isinstance(stmt.value, ast.Tuple)):
            continue
        pairs: List[Tuple[str, str]] = []
        for elt in stmt.value.elts:
            if not (isinstance(elt, ast.Tuple) and len(elt.elts) == 2
                    and all(isinstance(part, ast.Constant)
                            and isinstance(part.value, str)
                            for part in elt.elts)):
                return None
            first, second = elt.elts
            assert isinstance(first, ast.Constant)
            assert isinstance(second, ast.Constant)
            pairs.append((str(first.value), str(second.value)))
        return pairs
    return None


def _group_table(module: ModuleInfo, name: str
                 ) -> Optional[List[Tuple[Tuple[str, ...], str]]]:
    """Parse ``NAME = ((("a", "b"), "c"), ...)`` from the module body.

    Each entry pairs a tuple of registry counter names with the
    ``Metrics`` field their sum must equal (the shape of
    ``RECONCILE_GROUP_SUMS``).
    """
    for stmt in module.tree.body:
        if not (isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == name
                and isinstance(stmt.value, ast.Tuple)):
            continue
        groups: List[Tuple[Tuple[str, ...], str]] = []
        for elt in stmt.value.elts:
            if not (isinstance(elt, ast.Tuple) and len(elt.elts) == 2):
                return None
            members, field = elt.elts
            if not (isinstance(members, ast.Tuple)
                    and isinstance(field, ast.Constant)
                    and isinstance(field.value, str)
                    and all(isinstance(part, ast.Constant)
                            and isinstance(part.value, str)
                            for part in members.elts)):
                return None
            names = tuple(str(part.value) for part in members.elts
                          if isinstance(part, ast.Constant))
            groups.append((names, str(field.value)))
        return groups
    return None


def _event_fields_keys(model: ProjectModel,
                       events: ModuleInfo) -> Optional[Set[str]]:
    """The declared event kinds: resolved keys of ``EVENT_FIELDS``."""
    for stmt in events.tree.body:
        targets = (list(stmt.targets) if isinstance(stmt, ast.Assign)
                   else [stmt.target] if isinstance(stmt, ast.AnnAssign)
                   and stmt.value is not None else [])
        if not (len(targets) == 1 and isinstance(targets[0], ast.Name)
                and targets[0].id == "EVENT_FIELDS"):
            continue
        value = stmt.value if isinstance(stmt, ast.Assign) else stmt.value
        if not isinstance(value, ast.Dict):
            return None
        keys: Set[str] = set()
        for key in value.keys:
            if key is None:
                return None
            resolved = model.resolve_strings(events, key)
            if resolved.unresolved or not resolved.full:
                return None
            keys.update(resolved.full)
        return keys
    return None


@checker
class TelemetryDriftChecker(Checker):
    """Events and counters stay reconciled with their declarations."""

    checker_id = "PA002"
    title = ("telemetry-drift: emitted events declared, counters "
             "reconciled, and vice versa")

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        events = model.find("telemetry/events.py")
        if events is None:
            return
        declared = _event_fields_keys(model, events)
        if declared is None:
            yield self.file_diagnostic(
                events.display_path,
                "EVENT_FIELDS is missing or not statically resolvable; "
                "the event vocabulary cannot be checked")
            return
        yield from self._check_emits(model, events, declared)
        yield from self._check_counters(model, events, declared)

    # -- events --------------------------------------------------------
    def _check_emits(self, model: ProjectModel, events: ModuleInfo,
                     declared: Set[str]) -> Iterator[Diagnostic]:
        emitted: Set[str] = set()
        for module in model.iter_modules():
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "emit" and node.args):
                    continue
                resolved = model.resolve_strings(module, node.args[0])
                if resolved.unresolved or not resolved.full:
                    yield self.diagnostic(
                        module, node,
                        "emit() kind is not a declared event constant "
                        "or literal; the schema check cannot see it")
                    continue
                for kind in resolved.full:
                    emitted.add(kind)
                    if kind not in declared:
                        yield self.diagnostic(
                            module, node,
                            "emitted event kind %r is not declared in "
                            "EVENT_FIELDS" % kind)
        for name, value in sorted(events.constants.items()):
            if not name.startswith("EVENT_") or name == "EVENT_TYPES":
                continue
            if value not in declared:
                yield self.file_diagnostic(
                    events.display_path,
                    "event constant %s=%r has no EVENT_FIELDS entry"
                    % (name, value))
            elif value not in emitted:
                yield self.file_diagnostic(
                    events.display_path,
                    "event kind %r is declared but never emitted"
                    % value)

    # -- counters ------------------------------------------------------
    def _check_counters(self, model: ProjectModel, events: ModuleInfo,
                        declared: Set[str]) -> Iterator[Diagnostic]:
        export = model.find("telemetry/export.py")
        if export is None:
            return
        counter_pairs = _pairs_table(export, "RECONCILE_COUNTERS") or []
        event_pairs = _pairs_table(export, "RECONCILE_EVENTS") or []
        registry_event_pairs = _pairs_table(
            export, "RECONCILE_REGISTRY_EVENTS") or []
        prefix_pairs = _pairs_table(export, "RECONCILE_PREFIX_SUMS") or []
        group_pairs = _group_table(export, "RECONCILE_GROUP_SUMS") or []
        reconciled = ({name for name, _ in counter_pairs}
                      | {name for name, _ in registry_event_pairs}
                      | {name for members, _ in group_pairs
                         for name in members})
        prefixes = {prefix for prefix, _ in prefix_pairs}

        incremented: Set[str] = set()
        suffixes_used: Set[str] = set()
        for module in model.iter_modules():
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "counter" and node.args):
                    continue
                resolved = model.resolve_strings(module, node.args[0])
                incremented.update(resolved.full)
                suffixes_used.update(resolved.suffixes)
                for name in resolved.full:
                    if name not in reconciled:
                        yield self.diagnostic(
                            module, node,
                            "counter %r is incremented but no "
                            "reconciliation table covers it" % name)
                for prefix in resolved.prefixes:
                    if prefix not in prefixes:
                        yield self.diagnostic(
                            module, node,
                            "dynamically-named counters %r* are not "
                            "covered by RECONCILE_PREFIX_SUMS" % prefix)
                for suffix in resolved.suffixes:
                    if not any(name.endswith(suffix)
                               for name in reconciled):
                        yield self.diagnostic(
                            module, node,
                            "dynamically-named counters *%r match no "
                            "reconciled counter name" % suffix)
                if resolved.unresolved and resolved.empty:
                    yield self.diagnostic(
                        module, node,
                        "counter name is not statically resolvable; "
                        "reconciliation coverage cannot be checked")

        yield from self._check_tables(
            model, events, export, declared, counter_pairs, event_pairs,
            registry_event_pairs, prefix_pairs, group_pairs, incremented,
            suffixes_used)

    def _check_tables(self, model: ProjectModel, events: ModuleInfo,
                      export: ModuleInfo, declared: Set[str],
                      counter_pairs: List[Tuple[str, str]],
                      event_pairs: List[Tuple[str, str]],
                      registry_event_pairs: List[Tuple[str, str]],
                      prefix_pairs: List[Tuple[str, str]],
                      group_pairs: List[Tuple[Tuple[str, ...], str]],
                      incremented: Set[str],
                      suffixes_used: Set[str]) -> Iterator[Diagnostic]:
        metrics_fields = self._metrics_fields(model)
        for name, metrics_field in counter_pairs:
            if not (name in incremented
                    or any(name.endswith(suffix)
                           for suffix in suffixes_used)):
                yield self.file_diagnostic(
                    export.display_path,
                    "RECONCILE_COUNTERS lists %r but nothing "
                    "increments that counter" % name)
            if (metrics_fields is not None
                    and metrics_field not in metrics_fields):
                yield self.file_diagnostic(
                    export.display_path,
                    "RECONCILE_COUNTERS references unknown Metrics "
                    "field %r" % metrics_field)
        for name, event_kind in registry_event_pairs:
            if name not in incremented:
                yield self.file_diagnostic(
                    export.display_path,
                    "RECONCILE_REGISTRY_EVENTS lists %r but nothing "
                    "increments that counter" % name)
            if event_kind not in declared:
                yield self.file_diagnostic(
                    export.display_path,
                    "RECONCILE_REGISTRY_EVENTS references undeclared "
                    "event kind %r" % event_kind)
        for event_kind, metrics_field in event_pairs:
            if event_kind not in declared:
                yield self.file_diagnostic(
                    export.display_path,
                    "RECONCILE_EVENTS references undeclared event "
                    "kind %r" % event_kind)
            if (metrics_fields is not None
                    and metrics_field not in metrics_fields):
                yield self.file_diagnostic(
                    export.display_path,
                    "RECONCILE_EVENTS references unknown Metrics "
                    "field %r" % metrics_field)
        for prefix, metrics_field in prefix_pairs:
            if (metrics_fields is not None
                    and metrics_field not in metrics_fields):
                yield self.file_diagnostic(
                    export.display_path,
                    "RECONCILE_PREFIX_SUMS references unknown Metrics "
                    "field %r" % metrics_field)
        for members, metrics_field in group_pairs:
            for name in members:
                if name not in incremented:
                    yield self.file_diagnostic(
                        export.display_path,
                        "RECONCILE_GROUP_SUMS lists %r but nothing "
                        "increments that counter" % name)
            if (metrics_fields is not None
                    and metrics_field not in metrics_fields):
                yield self.file_diagnostic(
                    export.display_path,
                    "RECONCILE_GROUP_SUMS references unknown Metrics "
                    "field %r" % metrics_field)

    @staticmethod
    def _metrics_fields(model: ProjectModel) -> Optional[Set[str]]:
        metrics = model.find("engine/metrics.py")
        if metrics is None:
            return None
        info = metrics.classes.get("Metrics")
        if info is None:
            return None
        return set(info.fields)
