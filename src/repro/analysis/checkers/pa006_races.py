"""PA006: shared state never crosses concurrency domains unguarded.

Two hazard families, both invisible to single-file rules:

**Cross-domain access.**  An attribute or module-level mutable written
from one concurrency domain (event loop, thread, executor) and read or
written from another is a data race unless the handoff goes through a
recognized synchronizer (``asyncio.Queue``/``Event``/``Lock``,
``threading`` and ``queue`` equivalents — constructor-typed by the
concurrency model).  ``__init__``/``__post_init__`` writes are exempt:
construction happens-before every spawn that publishes the object.
Process-pool workers are exempt too — they run in a forked address
space where nothing is shared (PA003 owns that boundary).

**Await-atomicity.**  Within one event loop, plain attribute accesses
are atomic between suspension points — the race surface is a
read-modify-write *spanning* an ``await``::

    count = self.total          # read
    extra = await self._fetch() # suspension: another task runs here
    self.total = count + extra  # write of a stale derivation

PA006 tracks value flow through locals (taint, in statement order) and
flags any write to ``self.X`` whose value derives from a read of the
same ``self.X`` taken before an intervening ``await``.  Writes whose
value does not depend on the pre-await read (``self._server = None``
after ``await server.wait_closed()``) are the safe publish pattern and
stay clean.  Atomic single-statement mutations (``self.tasks.add(t)``)
never count as read-modify-write.
"""

from __future__ import annotations

import ast
from typing import (Dict, FrozenSet, Iterator, List, Optional, Set,
                    Tuple)

from ...lintkit.diagnostics import Diagnostic
from ...lintkit.rules.rl004_fork_safety import _MUTATOR_METHODS
from ..base import Checker, checker
from ..concurrency import DOMAIN_MAIN, ConcurrencyModel
from ..model import FunctionInfo, ModuleInfo, ProjectModel, own_nodes
from .pa003_fork import _local_bindings

#: Construction-time methods whose writes happen-before publication.
_CONSTRUCTORS = ("__init__", "__post_init__", "__new__")

#: One state access: (kind, node, accessor domains, module of node).
_Access = Tuple[str, ast.AST, FrozenSet[str], ModuleInfo]

#: A source position, comparable in document order.
_Pos = Tuple[int, int]


def _pos(node: ast.AST) -> _Pos:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def _end_pos(node: ast.AST) -> _Pos:
    line = getattr(node, "end_lineno", None)
    col = getattr(node, "end_col_offset", None)
    if line is None or col is None:
        return _pos(node)
    return (line, col)


def _is_self_attr(node: ast.AST) -> Optional[str]:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _self_accesses(func: FunctionInfo, method_names: Set[str],
                   skip: Set[str]
                   ) -> Iterator[Tuple[str, str, ast.AST]]:
    """Yield ``(attr, kind, node)`` for every ``self.X`` state access:
    kind ``read`` or ``write``.  Method references and synchronizer
    attributes are not state accesses."""
    for node in own_nodes(func.node):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (list(node.targets) if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                for sub in ast.walk(target):
                    if not isinstance(sub, ast.Attribute):
                        continue
                    attr = _is_self_attr(sub)
                    if attr is None or attr in skip:
                        continue
                    if isinstance(sub.ctx, ast.Store):
                        yield attr, "write", sub
                        if isinstance(node, ast.AugAssign):
                            yield attr, "read", sub
                # Subscript write on a self attribute mutates it.
                if isinstance(target, ast.Subscript):
                    attr = _is_self_attr(target.value)
                    if attr is not None and attr not in skip:
                        yield attr, "write", target
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if (isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in _MUTATOR_METHODS):
                attr = _is_self_attr(func_expr.value)
                if attr is not None and attr not in skip:
                    yield attr, "write", node
        elif isinstance(node, ast.Attribute):
            attr = _is_self_attr(node)
            if (attr is not None and attr not in skip
                    and attr not in method_names
                    and isinstance(node.ctx, ast.Load)):
                yield attr, "read", node


@checker
class SharedStateRaceChecker(Checker):
    """Shared state crosses domains only through synchronizers."""

    checker_id = "PA006"
    title = ("race-detection: cross-domain shared state and "
             "await-atomicity")

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        conc = model.concurrency()
        yield from self._check_attributes(conc)
        yield from self._check_globals(conc)
        yield from self._check_await_atomicity(conc)

    # -- cross-domain attributes ---------------------------------------
    def _check_attributes(self, conc: ConcurrencyModel
                          ) -> Iterator[Diagnostic]:
        for class_key in sorted(conc.methods):
            rel_path, class_name = class_key
            infos = conc.methods[class_key]
            method_names = {info.name for info in infos}
            skip = set(conc.class_synchronizers(rel_path, class_name))
            module = conc.module_of[(rel_path, infos[0].qualname)]
            accesses: Dict[str, List[_Access]] = {}
            for info in infos:
                if info.name in _CONSTRUCTORS:
                    continue
                domains = conc.effective_domains(
                    (rel_path, info.qualname))
                if not domains:
                    continue  # process-pool code: isolated memory
                for attr, kind, node in _self_accesses(
                        info, method_names, skip):
                    accesses.setdefault(attr, []).append(
                        (kind, node, domains, module))
            for attr in sorted(accesses):
                yield from self._judge_slot(
                    accesses[attr],
                    "attribute %r of class %s" % (attr, class_name))

    # -- cross-domain module globals -----------------------------------
    def _check_globals(self, conc: ConcurrencyModel
                       ) -> Iterator[Diagnostic]:
        accesses: Dict[Tuple[str, str], List[_Access]] = {}
        for key in sorted(conc.functions):
            info = conc.functions[key]
            module = conc.module_of[key]
            domains = conc.effective_domains(key)
            if not domains:
                continue
            local = _local_bindings(info.node)  # type: ignore[arg-type]
            for owner, name, kind, node in self._global_accesses(
                    conc, module, info, local):
                accesses.setdefault((owner, name), []).append(
                    (kind, node, domains, module))
        for slot in sorted(accesses):
            yield from self._judge_slot(
                accesses[slot],
                "module-level mutable %r of %s" % (slot[1], slot[0]))

    def _global_accesses(self, conc: ConcurrencyModel,
                         module: ModuleInfo, info: FunctionInfo,
                         local: Set[str]
                         ) -> Iterator[Tuple[str, str, str, ast.AST]]:
        """Yield ``(owner rel path, name, kind, node)`` for module-
        mutable accesses inside one function."""
        def owner_of(name: str) -> Optional[str]:
            if name in local:
                return None
            if name in module.mutables:
                return module.rel_path
            imported = module.imports.get(name)
            if imported is None:
                return None
            source = conc.model.module_by_name(imported[0])
            if source is not None and imported[1] in source.mutables:
                return source.rel_path
            return None

        rebound: Set[str] = set()
        for node in own_nodes(info.node):
            if isinstance(node, ast.Global):
                rebound.update(node.names)
        for node in own_nodes(info.node):
            if isinstance(node, ast.Name):
                owner = owner_of(node.id) if node.id not in rebound \
                    else (module.rel_path
                          if node.id in module.mutables else None)
                if owner is None:
                    continue
                if isinstance(node.ctx, ast.Store):
                    yield owner, node.id, "write", node
                elif isinstance(node.ctx, ast.Load):
                    yield owner, node.id, "read", node
            elif isinstance(node, ast.Call):
                func_expr = node.func
                if (isinstance(func_expr, ast.Attribute)
                        and isinstance(func_expr.value, ast.Name)
                        and func_expr.attr in _MUTATOR_METHODS):
                    owner = owner_of(func_expr.value.id)
                    if owner is not None:
                        yield owner, func_expr.value.id, "write", node
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (list(node.targets)
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)):
                        owner = owner_of(target.value.id)
                        if owner is not None:
                            yield (owner, target.value.id, "write",
                                   target)

    # -- shared verdict logic ------------------------------------------
    def _judge_slot(self, events: List[_Access],
                    what: str) -> Iterator[Diagnostic]:
        write_domains: Set[str] = set()
        access_domains: Set[str] = set()
        for kind, _, domains, _ in events:
            access_domains.update(domains)
            if kind == "write":
                write_domains.update(domains)
        conflict = next(
            ((d1, d2) for d1 in sorted(write_domains)
             for d2 in sorted(access_domains) if d1 != d2), None)
        if conflict is None:
            return
        write_domain, other_domain = conflict
        if write_domain == DOMAIN_MAIN:
            # Prefer naming a classified writer when one exists;
            # deterministic either way.
            for d1 in sorted(write_domains):
                if d1 != DOMAIN_MAIN:
                    write_domain = d1
                    other_domain = next(
                        d2 for d2 in sorted(access_domains)
                        if d2 != d1)
                    break
        anchor_node, anchor_module = self._anchor_write(events,
                                                        write_domain)
        yield self.diagnostic(
            anchor_module, anchor_node,
            "%s is written from the %s domain and accessed from the "
            "%s domain without a synchronizer; hand it off through "
            "an asyncio/threading queue or event, or confine it to "
            "one domain" % (what, write_domain, other_domain))

    @staticmethod
    def _anchor_write(events: List[_Access],
                      domain: str) -> Tuple[ast.AST, ModuleInfo]:
        writes = sorted(
            ((node, domains, module)
             for kind, node, domains, module in events
             if kind == "write"),
            key=lambda e: (e[2].rel_path, _pos(e[0])))
        for node, domains, module in writes:
            if domain in domains:
                return node, module
        return writes[0][0], writes[0][2]

    # -- await-atomicity -----------------------------------------------
    def _check_await_atomicity(self, conc: ConcurrencyModel
                               ) -> Iterator[Diagnostic]:
        for key in sorted(conc.functions):
            info = conc.functions[key]
            if not info.is_async or not info.awaits:
                continue
            skip = (set(conc.class_synchronizers(key[0],
                                                 info.class_name))
                    if info.class_name is not None else set())
            yield from self._scan_rmw(conc.module_of[key], info, skip)

    def _scan_rmw(self, module: ModuleInfo, info: FunctionInfo,
                  skip: Set[str]) -> Iterator[Diagnostic]:
        awaits = list(info.awaits)
        #: (position, kind, payload) — processed in document order so
        #: the taint environment sees assignments as execution does.
        events: List[Tuple[_Pos, str, Tuple[ast.AST, ...]]] = []
        for node in own_nodes(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    events.append((_end_pos(node), "name",
                                   (target, node.value)))
                else:
                    attr = _is_self_attr(target)
                    if attr is not None and attr not in skip:
                        events.append((_end_pos(node), "attr",
                                       (target, node.value, node)))
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Name):
                    events.append((_end_pos(node), "name_aug",
                                   (target, node.value)))
                else:
                    attr = _is_self_attr(target)
                    if attr is not None and attr not in skip:
                        events.append((_end_pos(node), "attr_aug",
                                       (target, node.value, node)))
        taint: Dict[str, Dict[str, _Pos]] = {}
        for _, kind, payload in sorted(events, key=lambda e: e[0]):
            if kind == "name":
                target, value = payload  # type: ignore[misc]
                assert isinstance(target, ast.Name)
                taint[target.id] = self._deps(value, taint)
            elif kind == "name_aug":
                target, value = payload  # type: ignore[misc]
                assert isinstance(target, ast.Name)
                merged = dict(taint.get(target.id, {}))
                merged.update(self._deps(value, taint))
                taint[target.id] = merged
            else:
                target, value, stmt = payload  # type: ignore[misc]
                assert isinstance(target, ast.Attribute)
                deps = self._deps(value, taint)
                if kind == "attr_aug":
                    deps.setdefault(target.attr, _pos(target))
                read_at = deps.get(target.attr)
                if read_at is None:
                    continue
                write_at = _end_pos(stmt)
                if any(read_at < suspend < write_at
                       for suspend in awaits):
                    yield self.diagnostic(
                        module, stmt,
                        "read-modify-write on self.%s in %r spans an "
                        "await: the written value derives from a read "
                        "taken before a suspension point, so another "
                        "task's update can be lost — recompute after "
                        "the await or serialize with an asyncio.Lock"
                        % (target.attr, info.qualname))

    @staticmethod
    def _deps(value: ast.expr,
              taint: Dict[str, Dict[str, _Pos]]
              ) -> Dict[str, _Pos]:
        """Attributes (with earliest read position) the value of an
        expression derives from, through direct ``self.X`` loads and
        tainted locals."""
        deps: Dict[str, _Pos] = {}

        def note(attr: str, at: _Pos) -> None:
            if attr not in deps or at < deps[attr]:
                deps[attr] = at

        for sub in ast.walk(value):
            attr = _is_self_attr(sub)
            if attr is not None and isinstance(
                    sub.ctx, ast.Load):  # type: ignore[attr-defined]
                note(attr, _pos(sub))
            elif (isinstance(sub, ast.Name)
                  and isinstance(sub.ctx, ast.Load)):
                for tainted, at in taint.get(sub.id, {}).items():
                    note(tainted, at)
        return deps
