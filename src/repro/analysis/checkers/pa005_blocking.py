"""PA005: no blocking calls reachable from event-loop code.

A coroutine that calls ``time.sleep``, does blocking socket or file
I/O, spawns a subprocess or waits on a ``queue.Queue`` stalls the
*whole* event loop — every connection the daemon multiplexes, not just
its own.  The single-file view cannot prove the absence: the blocking
call usually hides two frames down in a shared helper that is also
(legitimately) called from synchronous code.

PA005 walks the :class:`~repro.analysis.concurrency.ConcurrencyModel`
call graph from every loop-domain root — each ``async def`` plus every
sync callback handed to ``call_soon*`` — through statically-resolvable
sync callees (named calls, ``self`` methods, constructor-typed
attributes and locals) and flags each blocking operation found on the
way, anchored at the blocking call itself with the offending coroutine
and call chain in the message.

The sanctioned escape hatch is the allowlist the event loop itself
provides: a callable handed to ``run_in_executor`` (or a
``ThreadPoolExecutor.submit``) runs off-loop, so executor entry points
are never walked *as* loop code — wrapping the blocking helper is the
fix the finding suggests.

Matched blocking shapes (receiver-typed where names are too generic):

* ``time.sleep``; ``select.select``;
* ``subprocess.run/call/check_call/check_output/Popen``,
  ``os.system/popen/waitpid``;
* builtin ``open`` and ``Path.read_text/write_text/read_bytes/
  write_bytes``;
* socket ops ``recv/recv_into/sendall/accept`` and
  ``socket.create_connection``;
* ``get/put/join`` on a ``queue.Queue``-typed receiver, ``wait`` on a
  ``threading.Event/Condition``-typed receiver, ``acquire`` on a
  ``threading.Lock/RLock/Semaphore``-typed receiver and ``join`` on a
  ``threading.Thread``-typed receiver — the asyncio variants of all
  of these are awaitable, not blocking, and stay exempt through the
  constructor typing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ...lintkit.diagnostics import Diagnostic
from ..base import Checker, checker
from ..concurrency import DOMAIN_LOOP, ConcurrencyModel, FuncKey
from ..model import ModuleInfo, ProjectModel, own_nodes

#: ``module.attr`` calls that always block.
_MODULE_CALLS = {
    "time": {"sleep"},
    "subprocess": {"run", "call", "check_call", "check_output",
                   "Popen"},
    "os": {"system", "popen", "waitpid"},
    "socket": {"create_connection"},
    "select": {"select"},
}

#: Attribute calls distinctive enough to flag on any receiver.
_DISTINCTIVE_METHODS = frozenset(
    {"recv", "recv_into", "sendall", "accept",
     "read_text", "write_text", "read_bytes", "write_bytes"})

#: Attribute calls that block only on specific receiver types.
_TYPED_METHODS: Dict[str, Set[str]] = {
    "get": {"Queue", "LifoQueue", "PriorityQueue", "SimpleQueue"},
    "put": {"Queue", "LifoQueue", "PriorityQueue", "SimpleQueue"},
    "join": {"Queue", "LifoQueue", "PriorityQueue", "Thread"},
    "wait": {"Event", "Condition", "Barrier"},
    "acquire": {"Lock", "RLock", "Semaphore", "BoundedSemaphore"},
}

#: Libraries whose queue/lock types block (asyncio's await instead).
_BLOCKING_LIBRARIES = frozenset({"queue", "threading",
                                 "multiprocessing"})


def _blocking_reason(conc: ConcurrencyModel, key: FuncKey,
                     module: ModuleInfo,
                     node: ast.Call) -> Optional[str]:
    """Human-readable description when ``node`` is a blocking call."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "open" and func.id not in module.imports:
            return "builtin open()"
        imported = module.imports.get(func.id)
        if imported is not None:
            source, original = imported
            if original in _MODULE_CALLS.get(source, set()):
                return "%s.%s()" % (source, original)
        return None
    if not isinstance(func, ast.Attribute):
        return None
    if isinstance(func.value, ast.Name):
        blocked = _MODULE_CALLS.get(func.value.id)
        if blocked is not None and func.attr in blocked:
            return "%s.%s()" % (func.value.id, func.attr)
    if func.attr in _DISTINCTIVE_METHODS:
        return ".%s()" % func.attr
    receivers = _TYPED_METHODS.get(func.attr)
    if receivers is not None:
        ref = conc.receiver_type(key, func.value)
        if (ref is not None and ref.library in _BLOCKING_LIBRARIES
                and ref.class_name in receivers):
            return "%s.%s.%s()" % (ref.library, ref.class_name,
                                   func.attr)
    return None


def _loop_roots(conc: ConcurrencyModel) -> List[FuncKey]:
    """Every function that runs on an event loop: coroutines plus
    sync callbacks classified into the loop domain.  Coroutines walk
    first so a blocking site shared between a coroutine and a
    loop-classified sync helper is attributed to the coroutine, with
    the helper in the call chain."""
    roots = [key for key, info in conc.functions.items()
             if info.is_async
             or DOMAIN_LOOP in conc.domains.get(key, frozenset())]
    return sorted(roots,
                  key=lambda key: (not conc.functions[key].is_async,
                                   key))


@checker
class BlockingCallChecker(Checker):
    """Nothing reachable from a coroutine blocks the event loop."""

    checker_id = "PA005"
    title = ("async-safety: no blocking call reachable from "
             "event-loop code")

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        conc = model.concurrency()
        reported: Set[Tuple[str, int, int]] = set()
        for root in _loop_roots(conc):
            yield from self._walk(conc, root, reported)

    def _walk(self, conc: ConcurrencyModel, root: FuncKey,
              reported: Set[Tuple[str, int, int]]
              ) -> Iterator[Diagnostic]:
        #: BFS frontier of (function, call chain from the root).
        frontier: List[Tuple[FuncKey, Tuple[str, ...]]] = [(root, ())]
        visited: Set[FuncKey] = {root}
        while frontier:
            key, chain = frontier.pop(0)
            yield from self._scan_body(conc, root, key, chain,
                                       reported)
            for edge in conc.calls.get(key, []):
                callee = conc.functions.get(edge.callee)
                if callee is None or callee.is_async:
                    continue  # async callees are walked as own roots
                if edge.callee in visited:
                    continue
                visited.add(edge.callee)
                frontier.append(
                    (edge.callee, chain + (callee.qualname,)))

    def _scan_body(self, conc: ConcurrencyModel, root: FuncKey,
                   key: FuncKey, chain: Tuple[str, ...],
                   reported: Set[Tuple[str, int, int]]
                   ) -> Iterator[Diagnostic]:
        module = conc.module_of[key]
        for node in own_nodes(conc.functions[key].node):
            if not isinstance(node, ast.Call):
                continue
            reason = _blocking_reason(conc, key, module, node)
            if reason is None:
                continue
            site = (module.rel_path, node.lineno, node.col_offset)
            if site in reported:
                continue
            reported.add(site)
            via = (" via %s" % " -> ".join("%s()" % name
                                           for name in chain)
                   if chain else "")
            root_info = conc.functions[root]
            role = ("coroutine" if root_info.is_async
                    else "event-loop callback")
            yield self.diagnostic(
                module, node,
                "blocking %s is reachable from %s %r%s; it stalls "
                "every task on the loop — await an async equivalent "
                "or wrap it in run_in_executor"
                % (reason, role, root_info.qualname, via))
