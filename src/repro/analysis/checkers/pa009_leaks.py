"""PA009: acquired resources are released on every exit path.

For each recognized acquisition inside a function, PA009 asks the
:mod:`~repro.analysis.cfg` graph whether any path reaches an exit
without passing a statement that releases (or takes ownership of) the
resource — and flags the acquire site with the first leaking path.

Recognized acquisitions and their releases:

=========  ================================  =======================
kind       acquire pattern                   release
=========  ================================  =======================
socket     ``socket.socket(...)`` /          ``<name>.close()``
           ``socket.create_connection(..)``
file       ``open(...)``                     ``<name>.close()``
task       ``*.create_task(...)``            ``<name>.cancel()``
decoder    ``FrameDecoder()``                ``<name>.finish()``
lock       ``*.acquire()``                   ``*.release()``
span       ``*.span_open(...)``              ``*.span_close(...)`` or
                                             a span-closing helper
=========  ================================  =======================

Named resources (socket/file/task/decoder — the acquire must be
assigned to a plain name) are also credited when they *escape*: the
name read anywhere other than as a method receiver (returned, passed
as an argument, stored, entered as a context manager) transfers
ownership, and rebinding the name ends tracking.  Spans and locks are
not named by a variable, so their release is positional: any
span-close/release call on a later statement.  A *span-closing helper*
is any function in the same module whose body calls ``span_close`` —
the ``_finish_span`` idiom — so calling the helper counts as closing.

Approximations (all deliberately toward under-reporting, see
:mod:`~repro.analysis.cfg`): a release anywhere under a branch-point
statement credits the whole branch point (``if traced:
finish_span()`` counts as closed); an exception raised inside a
``try`` with handlers is assumed to match one of them; decoders are
only checked along *normal* control flow — an absorbed exception path
is allowed to drop a decoder, but a clean end-of-stream must
``finish()`` it to surface mid-frame peer death.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, NamedTuple, Optional, Sequence, Set

from ...lintkit.diagnostics import Diagnostic
from ..base import Checker, checker
from ..cfg import CFG, CFGNode, scoped_walk
from ..model import AnyFunctionDef, ModuleInfo, ProjectModel


class _Resource(NamedTuple):
    """One acquisition site inside a function body."""

    kind: str
    #: Bound variable, or ``None`` for positional kinds (span, lock).
    name: Optional[str]
    stmt: ast.stmt
    #: Method names that release this resource.
    releases: Sequence[str]
    #: Exceptions excluded from the path search (decoder).
    normal_only: bool


def _terminal_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _classify_call(call: ast.Call, name: Optional[str],
                   stmt: ast.stmt) -> Optional[_Resource]:
    """A ``_Resource`` when ``call`` acquires one, else ``None``."""
    func = call.func
    terminal = _terminal_name(func)
    if terminal in ("socket", "create_connection") \
            and isinstance(func, ast.Attribute) \
            and isinstance(func.value, ast.Name) \
            and func.value.id == "socket":
        if name is not None:
            return _Resource("socket", name, stmt, ("close",), False)
        return None
    if isinstance(func, ast.Name) and func.id == "open":
        if name is not None:
            return _Resource("file", name, stmt, ("close",), False)
        return None
    if terminal == "create_task":
        if name is not None:
            return _Resource("task", name, stmt, ("cancel",), False)
        return None
    if terminal == "FrameDecoder":
        if name is not None:
            return _Resource("decoder", name, stmt, ("finish",), True)
        return None
    if terminal == "acquire" and not call.args and not call.keywords:
        return _Resource("lock", None, stmt, ("release",), False)
    if terminal == "span_open":
        return _Resource("span", None, stmt, ("span_close",), False)
    return None


def _acquisitions(func: AnyFunctionDef) -> List[_Resource]:
    """Statement-level acquisitions in the function's own body."""
    out: List[_Resource] = []
    for node in scoped_walk(func):
        if node is func:
            continue
        if (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            resource = _classify_call(node.value,
                                      node.targets[0].id, node)
        elif (isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)):
            resource = _classify_call(node.value, None, node)
        else:
            continue
        if resource is not None:
            out.append(resource)
    return out


def _span_helpers(module: ModuleInfo) -> Set[str]:
    """Names of module functions whose bodies close a span."""
    helpers: Set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
            continue
        for inner in scoped_walk(node):
            if (isinstance(inner, ast.Call)
                    and _terminal_name(inner.func) == "span_close"):
                helpers.add(node.name)
                break
    return helpers


def _releases_in(stmt: ast.stmt, resource: _Resource,
                 span_helpers: Set[str]) -> bool:
    """Does the statement subtree release / take over the resource?"""
    receiver_ids: Set[int] = set()
    if resource.name is not None:
        for node in scoped_walk(stmt):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)):
                receiver_ids.add(id(node.value))
    for node in scoped_walk(stmt):
        if isinstance(node, ast.Call):
            terminal = _terminal_name(node.func)
            if resource.name is None:
                if terminal in resource.releases:
                    return True
                if (resource.kind == "span"
                        and terminal in span_helpers):
                    return True
                continue
            if (terminal in resource.releases
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == resource.name):
                return True
        if resource.name is not None and isinstance(node, ast.Name) \
                and node.id == resource.name:
            if isinstance(node.ctx, ast.Store):
                return True  # rebound: tracking ends here
            if isinstance(node.ctx, ast.Load) \
                    and id(node) not in receiver_ids:
                return True  # escapes: ownership transferred
    return False


_EXIT_LABELS = {"exit": "a normal exit",
                "raise-exit": "an uncaught-exception exit"}


@checker
class ResourceLeakChecker(Checker):
    """Sockets, files, tasks, decoders, locks and spans never leak."""

    checker_id = "PA009"
    title = ("exception-leaks: acquired resources are released on "
             "every exit path")

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        for module in model.iter_modules():
            helpers = _span_helpers(module)
            for info in module.all_functions.values():
                acquired = _acquisitions(info.node)
                if not acquired:
                    continue
                cfg = CFG.build(info.node)
                for resource in acquired:
                    diag = self._check_resource(module, info.qualname,
                                                cfg, resource, helpers)
                    if diag is not None:
                        yield diag

    def _check_resource(self, module: ModuleInfo, qualname: str,
                        cfg: CFG, resource: _Resource,
                        span_helpers: Set[str]
                        ) -> Optional[Diagnostic]:
        start = cfg.node_of.get(id(resource.stmt))
        if start is None:
            return None
        goals = {cfg.exit} if resource.normal_only \
            else {cfg.exit, cfg.raise_exit}

        def blocked(node: CFGNode) -> bool:
            return node.stmt is not None and _releases_in(
                node.stmt, resource, span_helpers)

        starts = list(cfg.nodes[start].succs)
        path = cfg.find_path(
            starts, goals, blocked,
            include_exceptions=not resource.normal_only)
        if path is None:
            return None
        exit_node = cfg.nodes[path[-1]]
        via = [cfg.nodes[index].line for index in path
               if cfg.nodes[index].stmt is not None]
        route = (" via line %d" % via[-1]) if via else ""
        label = _EXIT_LABELS.get(exit_node.label, "an exit")
        what = resource.kind if resource.name is None \
            else "%s %r" % (resource.kind, resource.name)
        return self.diagnostic(
            module, resource.stmt,
            "%s acquired in %s can reach %s without a %s call%s"
            % (what, qualname, label,
               "/".join(resource.releases), route))
