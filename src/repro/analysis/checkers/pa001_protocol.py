"""PA001: the typed wire protocol is exhaustively wired end to end.

The protocol contract spans four places that single-file rules cannot
connect: the message dataclasses (``protocol/messages.py``), the codec's
declarative field layouts and dispatch arms (``protocol/wire.py``), the
server dispatch (``protocol/handlers.py``), and the client halves of the
strategies that must be able to receive what their server policies ship.
PA001 checks, for every class in the ``Request``/``Response`` unions:

* ``wire.FIELD_LAYOUTS`` has an entry whose field names and order match
  the dataclass's declared fields (``position.x`` counts as field
  ``position``);
* ``WireCodec.size_of_response`` and ``WireCodec.encode_response`` each
  carry an ``isinstance`` arm for every ``Response`` class;
* ``handle_request`` dispatches every ``Request`` class (a trailing
  ``else`` may cover exactly one remaining class);
* each strategy module consumes — via a client-side ``isinstance`` —
  every ``Response`` class its server policy constructs;
* dead arms are flagged: ``isinstance`` tests or layout entries naming
  message classes outside the unions.

The same contract extends one layer down, to the frame envelope
(``protocol/framing.py`` vs the socket layer ``net/daemon.py`` /
``net/sockets.py``):

* every ``FrameKind`` member must be sent or dispatched somewhere in
  the socket layer — an unreferenced kind is declared dead on arrival;
* ``FrameKind.X`` references to undeclared members are dead arms;
* member-named codec helpers come in pairs: an ``encode_<kind>``
  without its ``decode_<kind>`` (or vice versa) means one peer ships
  frames the other cannot parse.

Modules are located by path suffix, so the checker runs unchanged over
``src/repro`` and the fixture trees.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ...lintkit.diagnostics import Diagnostic
from ..base import Checker, checker
from ..model import ModuleInfo, ProjectModel

#: Codec methods that must dispatch on every ``Response`` class.
_CODEC_DISPATCHERS = ("size_of_response", "encode_response")


def _isinstance_tests(scope: ast.AST) -> List[Tuple[ast.Call, str]]:
    """Every ``isinstance(x, C)`` class name tested under ``scope``."""
    tests: List[Tuple[ast.Call, str]] = []
    for node in ast.walk(scope):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2):
            continue
        target = node.args[1]
        names = (list(target.elts) if isinstance(target, ast.Tuple)
                 else [target])
        for name in names:
            if isinstance(name, ast.Name):
                tests.append((node, name.id))
    return tests


def _function(module: ModuleInfo, name: str
              ) -> Optional[ast.FunctionDef]:
    """A def with this name anywhere in the module (methods included)."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _field_layouts(module: ModuleInfo
                   ) -> Optional[Tuple[ast.stmt,
                                       Dict[str, Tuple[str, ...]]]]:
    """Parse the ``FIELD_LAYOUTS`` literal dict, if declared."""
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            target = (stmt.targets[0] if len(stmt.targets) == 1 else None)
            value_node = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            value_node = stmt.value
        else:
            continue
        if not (isinstance(target, ast.Name)
                and target.id == "FIELD_LAYOUTS"
                and isinstance(value_node, ast.Dict)):
            continue
        layouts: Dict[str, Tuple[str, ...]] = {}
        for key, value in zip(value_node.keys, value_node.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Tuple)):
                return stmt, {}
            names: List[str] = []
            for elt in value.elts:
                if not (isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)):
                    return stmt, {}
                names.append(elt.value)
            layouts[key.value] = tuple(names)
        return stmt, layouts
    return None


def _declared_order(layout: Tuple[str, ...]) -> Tuple[str, ...]:
    """Dataclass-field order implied by dotted wire names."""
    order: List[str] = []
    for name in layout:
        first = name.split(".", 1)[0]
        if first not in order:
            order.append(first)
    return tuple(order)


@checker
class ProtocolExhaustivenessChecker(Checker):
    """Every protocol message is declared, encoded, dispatched, consumed."""

    checker_id = "PA001"
    title = ("protocol-exhaustiveness: messages wired through codec, "
             "handlers and strategies")

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        yield from self._check_framing(model)
        messages = model.find("protocol/messages.py")
        if messages is None:
            return
        requests = messages.union_members("Request")
        responses = messages.union_members("Response")
        if requests is None or responses is None:
            yield self.file_diagnostic(
                messages.display_path,
                "protocol module declares no Request/Response unions; "
                "the wire contract cannot be checked")
            return
        union_names = set(requests) | set(responses)
        yield from self._check_wire(model, messages, responses,
                                    union_names)
        yield from self._check_handlers(model, messages, requests)
        yield from self._check_strategies(model, messages, responses,
                                          union_names)

    # -- framing.py vs the socket layer --------------------------------
    def _check_framing(self, model: ProjectModel
                       ) -> Iterator[Diagnostic]:
        framing = model.find("protocol/framing.py")
        if framing is None:
            return
        kind_info = framing.classes.get("FrameKind")
        if kind_info is None or "IntEnum" not in kind_info.bases:
            return
        members: Dict[str, ast.stmt] = {}
        for stmt in kind_info.node.body:
            if (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                members[stmt.targets[0].id] = stmt
        socket_modules = [m for m in (model.find("net/daemon.py"),
                                      model.find("net/sockets.py"))
                          if m is not None]
        if not members or not socket_modules:
            return
        referenced: Set[str] = set()
        for module in socket_modules:
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "FrameKind"):
                    continue
                referenced.add(node.attr)
                if node.attr not in members:
                    yield self.diagnostic(
                        module, node,
                        "FrameKind.%s is not a declared frame kind "
                        "(dead dispatch arm)" % node.attr)
        for name in sorted(members):
            if name not in referenced:
                yield self.diagnostic(
                    framing, members[name],
                    "frame kind %s is declared but never sent or "
                    "dispatched in the socket layer (net/daemon.py, "
                    "net/sockets.py); frames of this kind are dead on "
                    "arrival" % name)
            encode = "encode_%s" % name.lower()
            decode = "decode_%s" % name.lower()
            encoder = _function(framing, encode)
            decoder = _function(framing, decode)
            if encoder is not None and decoder is None:
                yield self.diagnostic(
                    framing, encoder,
                    "framing declares %s but no %s counterpart; one "
                    "peer ships %s frames the other cannot parse"
                    % (encode, decode, name))
            elif decoder is not None and encoder is None:
                yield self.diagnostic(
                    framing, decoder,
                    "framing declares %s but no %s counterpart; one "
                    "peer ships %s frames the other cannot parse"
                    % (decode, encode, name))

    # -- wire.py -------------------------------------------------------
    def _check_wire(self, model: ProjectModel, messages: ModuleInfo,
                    responses: Tuple[str, ...],
                    union_names: Set[str]) -> Iterator[Diagnostic]:
        wire = model.find("protocol/wire.py")
        if wire is None:
            yield self.file_diagnostic(
                messages.display_path,
                "no protocol/wire.py module: %d message classes have "
                "no wire layout" % len(union_names))
            return
        parsed = _field_layouts(wire)
        if parsed is None:
            yield self.file_diagnostic(
                wire.display_path,
                "wire module declares no FIELD_LAYOUTS table; message "
                "field order cannot be checked against the structs")
        else:
            table_node, layouts = parsed
            yield from self._check_layouts(messages, wire, table_node,
                                           layouts, union_names)
        for method in _CODEC_DISPATCHERS:
            yield from self._check_dispatcher(messages, wire, method,
                                              responses)

    def _check_layouts(self, messages: ModuleInfo, wire: ModuleInfo,
                       table_node: ast.Assign,
                       layouts: Dict[str, Tuple[str, ...]],
                       union_names: Set[str]) -> Iterator[Diagnostic]:
        for name in sorted(union_names):
            if name not in layouts:
                yield self.diagnostic(
                    wire, table_node,
                    "message class %s has no FIELD_LAYOUTS entry" % name)
                continue
            info = messages.classes.get(name)
            if info is None:
                continue  # flagged as a dead entry below
            declared = _declared_order(layouts[name])
            if declared != info.fields:
                yield self.diagnostic(
                    wire, table_node,
                    "FIELD_LAYOUTS[%r] orders fields %s but the "
                    "dataclass declares %s"
                    % (name, list(declared), list(info.fields)))
        for name in sorted(layouts):
            if name not in messages.classes:
                yield self.diagnostic(
                    wire, table_node,
                    "FIELD_LAYOUTS names unknown message class %s "
                    "(dead layout entry)" % name)

    def _check_dispatcher(self, messages: ModuleInfo, wire: ModuleInfo,
                          method: str, responses: Tuple[str, ...]
                          ) -> Iterator[Diagnostic]:
        func = _function(wire, method)
        if func is None:
            yield self.file_diagnostic(
                wire.display_path,
                "wire codec has no %s method; response payloads cannot "
                "be dispatched" % method)
            return
        tests = _isinstance_tests(func)
        tested = {name for _, name in tests}
        for name in responses:
            if name not in tested:
                yield self.diagnostic(
                    wire, func,
                    "%s has no isinstance arm for response class %s"
                    % (method, name))
        for node, name in tests:
            if (name in messages.classes
                    and name not in responses):
                yield self.diagnostic(
                    wire, node,
                    "%s dispatches on %s, which is not in the Response "
                    "union (dead arm)" % (method, name))

    # -- handlers.py ---------------------------------------------------
    def _check_handlers(self, model: ProjectModel, messages: ModuleInfo,
                        requests: Tuple[str, ...]
                        ) -> Iterator[Diagnostic]:
        handlers = model.find("protocol/handlers.py")
        if handlers is None:
            yield self.file_diagnostic(
                messages.display_path,
                "no protocol/handlers.py module: request classes have "
                "no server dispatch")
            return
        func = _function(handlers, "handle_request")
        if func is None:
            yield self.file_diagnostic(
                handlers.display_path,
                "handlers module defines no handle_request entry point")
            return
        tests = _isinstance_tests(func)
        tested = {name for _, name in tests}
        has_else = any(
            isinstance(node, ast.If) and node.orelse
            and any(name in requests
                    for _, name in _isinstance_tests(node.test))
            for node in ast.walk(func))
        uncovered = [name for name in requests if name not in tested]
        allowed_fallthrough = 1 if has_else else 0
        if len(uncovered) > allowed_fallthrough:
            yield self.diagnostic(
                handlers, func,
                "handle_request does not dispatch request class(es) %s "
                "(a trailing else may cover at most one)"
                % ", ".join(sorted(uncovered)))
        for node, name in tests:
            if name in messages.classes and name not in requests:
                yield self.diagnostic(
                    handlers, node,
                    "handle_request dispatches on %s, which is not in "
                    "the Request union (dead arm)" % name)

    # -- strategies ----------------------------------------------------
    def _check_strategies(self, model: ProjectModel,
                          messages: ModuleInfo,
                          responses: Tuple[str, ...],
                          union_names: Set[str]
                          ) -> Iterator[Diagnostic]:
        for module in model.iter_modules():
            if not self._is_strategy_module(module):
                continue
            policy_nodes = [info.node
                            for info in module.classes.values()
                            if any(base.endswith("Policy")
                                   for base in info.bases)]
            produced: List[Tuple[ast.Call, str]] = []
            for node in policy_nodes:
                for call in ast.walk(node):
                    if (isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Name)
                            and call.func.id in responses):
                        produced.append((call, call.func.id))
            consumed = {name
                        for _, name in self._client_side_tests(
                            module, policy_nodes)
                        if name in responses}
            seen: Set[str] = set()
            for call, name in produced:
                if name in consumed or name in seen:
                    continue
                seen.add(name)
                yield self.diagnostic(
                    module, call,
                    "server policy ships %s but the module's client "
                    "side never isinstance-checks it; the install "
                    "would be dropped on receipt" % name)
            for node, name in self._client_side_tests(module,
                                                      policy_nodes):
                if name in messages.classes and name not in union_names:
                    yield self.diagnostic(
                        module, node,
                        "client checks for %s, which is not in the "
                        "Request/Response unions (dead arm)" % name)

    @staticmethod
    def _is_strategy_module(module: ModuleInfo) -> bool:
        parts = module.rel_path.split("/")
        return "strategies" in parts[:-1]

    @staticmethod
    def _client_side_tests(module: ModuleInfo,
                           policy_nodes: List[ast.ClassDef]
                           ) -> List[Tuple[ast.Call, str]]:
        """isinstance tests outside the server-policy class bodies."""
        policy_calls = {id(call) for node in policy_nodes
                        for call, _ in _isinstance_tests(node)}
        return [(call, name)
                for call, name in _isinstance_tests(module.tree)
                if id(call) not in policy_calls]
