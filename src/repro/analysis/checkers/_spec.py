"""Reading the literal tables of ``protocol/spec.py`` from a model.

PA008 and PA010 both consume the declared session contract — but from
the *analyzed tree*, not from the import system, so miniature fixture
trees can carry their own (deliberately wrong) spec.  The spec module
keeps its tables literal for exactly this reason; :func:`literal_table`
is the one place that contract is enforced.
"""

from __future__ import annotations

import ast
from typing import Optional, Tuple

from ..model import ModuleInfo


def literal_table(module: ModuleInfo, name: str
                  ) -> Optional[Tuple[ast.stmt, Optional[object]]]:
    """The literal value assigned to ``name`` at module top level.

    Returns ``None`` when ``name`` is never assigned; ``(stmt, None)``
    when it is assigned something ``ast.literal_eval`` rejects (the
    caller diagnoses that — a computed spec table defeats the static
    checkers); ``(stmt, value)`` otherwise.
    """
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            if not (len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == name):
                continue
            value_node: Optional[ast.expr] = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if not (isinstance(stmt.target, ast.Name)
                    and stmt.target.id == name):
                continue
            value_node = stmt.value
        else:
            continue
        if value_node is None:
            return stmt, None
        try:
            return stmt, ast.literal_eval(value_node)
        except ValueError:
            return stmt, None
    return None
