"""PA010: strategy downlink causality matches the declared table.

Every strategy module under ``strategies/`` is split into a server
half (its ``ServerPolicy`` subclass) and a client half (everything
else in the module).  The server half *emits* downlink messages by
constructing Response-union classes; the client half *handles* them
with ``isinstance`` arms.  ``protocol/spec.py`` declares the intended
causality per strategy in ``STRATEGY_CAUSALITY``; PA010 extracts both
halves from the code and triangulates code against spec:

* a strategy module with no causality entry, and a causality entry
  with no strategy module, are both findings — the table is exhaustive
  by contract;
* emissions not declared, declarations never emitted, handled kinds
  not declared, declared kinds never handled;
* the direct cross-check the spec cannot fix by fiat: kinds the server
  half emits that the client half never handles (dropped on receipt)
  and kinds handled but never emitted (dead client arms);
* vocabulary: every kind named in the table must be a member of the
  ``Response`` union.

``BASELINE_DOWNLINKS`` (alarm firings, cache invalidations) are
producible by the *shared* handler layer for any strategy, so they are
exempt from the per-strategy emitted/handled symmetry — but a client
half may still declare them in ``handles`` (the optimal strategy's
``AlarmNotification`` bookkeeping).

A strategy that reuses another's policy (``adaptive`` subclasses the
rectangular strategy and inherits its ``server_policy``) has no policy
class of its own; PA010 follows the strategy class's base one import
hop to the defining module and charges those emissions to the
importing strategy.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ...lintkit.diagnostics import Diagnostic
from ..base import Checker, checker
from ..model import ModuleInfo, ProjectModel
from ._spec import literal_table

#: ``{strategy stem: {"emits": (...), "handles": (...)}}``
_Causality = Dict[str, Dict[str, Tuple[str, ...]]]

_NON_STRATEGY_STEMS = ("base", "__init__")


def _strategy_stem(module: ModuleInfo) -> Optional[str]:
    parts = module.rel_path.split("/")
    if "strategies" not in parts[:-1]:
        return None
    stem = parts[-1][:-len(".py")] if parts[-1].endswith(".py") \
        else parts[-1]
    if stem in _NON_STRATEGY_STEMS:
        return None
    return stem


def _policy_classes(module: ModuleInfo) -> List[ast.ClassDef]:
    return [info.node for info in module.classes.values()
            if any(base.endswith("Policy") for base in info.bases)]


def _constructed(nodes: List[ast.ClassDef],
                 downlinks: Set[str]) -> Dict[str, ast.Call]:
    """Downlink classes constructed inside the given class bodies."""
    out: Dict[str, ast.Call] = {}
    for node in nodes:
        for call in ast.walk(node):
            if (isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                    and call.func.id in downlinks):
                out.setdefault(call.func.id, call)
    return out


def _client_handled(module: ModuleInfo, policies: List[ast.ClassDef],
                    downlinks: Set[str]) -> Dict[str, ast.Call]:
    """Downlink classes isinstance-checked outside the policy bodies."""
    policy_tests = {id(call) for node in policies
                    for call in ast.walk(node)
                    if isinstance(call, ast.Call)}
    out: Dict[str, ast.Call] = {}
    for call in ast.walk(module.tree):
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id == "isinstance"
                and len(call.args) == 2
                and id(call) not in policy_tests):
            continue
        target = call.args[1]
        names = (list(target.elts) if isinstance(target, ast.Tuple)
                 else [target])
        for name in names:
            if isinstance(name, ast.Name) and name.id in downlinks:
                out.setdefault(name.id, call)
    return out


@checker
class DownlinkCausalityChecker(Checker):
    """Server emissions and client handling agree, per strategy."""

    checker_id = "PA010"
    title = ("downlink-causality: per-strategy server emissions match "
             "client handling and the declared table")

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        strategies = {stem: module
                      for module in model.iter_modules()
                      for stem in [_strategy_stem(module)]
                      if stem is not None}
        if not strategies:
            return
        spec = model.find("protocol/spec.py")
        messages = model.find("protocol/messages.py")
        if spec is None or messages is None:
            return  # PA008 already reports a missing spec
        responses = messages.union_members("Response")
        downlinks = set(responses or ())
        parsed = literal_table(spec, "STRATEGY_CAUSALITY")
        if parsed is None or not isinstance(parsed[1], dict):
            yield self.file_diagnostic(
                spec.display_path,
                "spec module declares no literal STRATEGY_CAUSALITY "
                "table; downlink causality cannot be checked")
            return
        table_stmt, raw_table = parsed
        causality = self._coerce(raw_table)
        if causality is None:
            yield self.diagnostic(
                spec, table_stmt,
                "STRATEGY_CAUSALITY rows must map a strategy stem to "
                "{'emits': (...), 'handles': (...)} string tuples")
            return
        baseline = self._baseline(spec)
        yield from self._check_vocabulary(spec, table_stmt, causality,
                                          baseline, downlinks)
        for stem in sorted(set(causality) - set(strategies)):
            yield self.diagnostic(
                spec, table_stmt,
                "STRATEGY_CAUSALITY declares strategy %r but no such "
                "strategy module exists (stale entry)" % stem)
        for stem in sorted(strategies):
            yield from self._check_strategy(
                model, spec, table_stmt, strategies[stem], stem,
                causality.get(stem), downlinks, set(baseline))

    @staticmethod
    def _coerce(raw: object) -> Optional[_Causality]:
        if not isinstance(raw, dict):
            return None
        out: _Causality = {}
        for stem, entry in raw.items():
            if not (isinstance(stem, str) and isinstance(entry, dict)
                    and set(entry) == {"emits", "handles"}):
                return None
            coerced: Dict[str, Tuple[str, ...]] = {}
            for key in ("emits", "handles"):
                value = entry[key]
                if not (isinstance(value, tuple)
                        and all(isinstance(v, str) for v in value)):
                    return None
                coerced[key] = value
            out[stem] = coerced
        return out

    @staticmethod
    def _baseline(spec: ModuleInfo) -> Tuple[str, ...]:
        parsed = literal_table(spec, "BASELINE_DOWNLINKS")
        if parsed is None:
            return ()
        value = parsed[1]
        if isinstance(value, tuple) \
                and all(isinstance(v, str) for v in value):
            return value
        return ()

    def _check_vocabulary(self, spec: ModuleInfo, table_stmt: ast.stmt,
                          causality: _Causality,
                          baseline: Tuple[str, ...],
                          downlinks: Set[str]) -> Iterator[Diagnostic]:
        if not downlinks:
            return
        named = {kind for entry in causality.values()
                 for key in ("emits", "handles")
                 for kind in entry[key]} | set(baseline)
        for kind in sorted(named - downlinks):
            yield self.diagnostic(
                spec, table_stmt,
                "causality table names %s, which is not a Response "
                "union member (unknown downlink kind)" % kind)

    def _check_strategy(self, model: ProjectModel, spec: ModuleInfo,
                        table_stmt: ast.stmt, module: ModuleInfo,
                        stem: str,
                        declared: Optional[Dict[str, Tuple[str, ...]]],
                        downlinks: Set[str], baseline: Set[str]
                        ) -> Iterator[Diagnostic]:
        policies = _policy_classes(module)
        emitted = _constructed(policies, downlinks)
        inherited: Set[str] = set()
        if not policies:
            inherited = self._inherited_emissions(model, module,
                                                  downlinks)
        handled = _client_handled(module, policies, downlinks)
        effective_emits = set(emitted) | inherited
        if declared is None:
            yield self.file_diagnostic(
                module.display_path,
                "strategy %r has no STRATEGY_CAUSALITY entry; its "
                "downlink contract is undeclared" % stem)
            return
        emits_decl = set(declared["emits"])
        handles_decl = set(declared["handles"])
        for kind in sorted(set(emitted) - emits_decl):
            yield self.diagnostic(
                module, emitted[kind],
                "strategy %r emits %s but its causality entry does "
                "not declare it" % (stem, kind))
        for kind in sorted(inherited - emits_decl):
            yield self.file_diagnostic(
                module.display_path,
                "strategy %r inherits a policy emitting %s but its "
                "causality entry does not declare it" % (stem, kind))
        for kind in sorted(emits_decl - effective_emits):
            yield self.diagnostic(
                spec, table_stmt,
                "causality entry for %r declares emits %s but the "
                "server policy never constructs it" % (stem, kind))
        for kind in sorted(set(handled) - handles_decl - baseline):
            yield self.diagnostic(
                module, handled[kind],
                "strategy %r client half handles %s but its causality "
                "entry does not declare it" % (stem, kind))
        for kind in sorted(handles_decl - set(handled)):
            yield self.diagnostic(
                spec, table_stmt,
                "causality entry for %r declares handles %s but the "
                "client half never isinstance-checks it" % (stem, kind))
        for kind in sorted(effective_emits - set(handled) - baseline):
            anchor = emitted.get(kind)
            message = ("strategy %r server half emits %s but its "
                       "client half never handles it; the downlink "
                       "would be dropped on receipt" % (stem, kind))
            if anchor is not None:
                yield self.diagnostic(module, anchor, message)
            else:
                yield self.file_diagnostic(module.display_path,
                                           message)
        for kind in sorted(set(handled) - effective_emits - baseline):
            yield self.diagnostic(
                module, handled[kind],
                "strategy %r client half handles %s but no server "
                "policy ever emits it (dead client arm)" % (stem, kind))

    @staticmethod
    def _inherited_emissions(model: ProjectModel, module: ModuleInfo,
                             downlinks: Set[str]) -> Set[str]:
        """Emissions of the policy a base strategy class provides.

        One import hop: for each base of each class in the module,
        resolve the base name through ``imports`` to its defining
        strategy module and collect that module's policy emissions.
        """
        out: Set[str] = set()
        for info in module.classes.values():
            for base in info.bases:
                imported = module.imports.get(base)
                if imported is None:
                    continue
                source = model.module_by_name(imported[0])
                if source is None or _strategy_stem(source) is None:
                    continue
                out |= set(_constructed(_policy_classes(source),
                                        downlinks))
        return out
