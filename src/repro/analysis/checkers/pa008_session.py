"""PA008: the socket layer implements the declared session automaton.

``protocol/spec.py`` declares the connection session machine as data:
states ``AWAIT_HELLO``/``READY``/``CLOSING`` and the allowed
``(state, FrameKind, direction)`` transitions.  PA008 extracts the
*implemented* automaton from the dispatch chains of the socket layer
and diffs the two:

* **server side** (``net/daemon.py``): every ``frame.kind is
  FrameKind.X`` arm is classified by the handshake states it accepts —
  an ``if <flag>: raise`` guard accepts only the pre-handshake state,
  ``if not <flag>: raise`` only the established state, no guard both —
  where ``<flag>`` is any name the function assigns both ``False`` and
  ``True`` (the ``greeted`` idiom).  An arm that sets the flag ``True``
  moves the session to the established state; any other arm self-loops.
  Each accepted ``(state, kind)`` must be a declared ``c2s`` row with
  the matching target, every declared ``c2s`` row must have an
  accepting arm, and the chain must end in a rejecting ``else``;
* **client side** (``net/sockets.py``, ``net/stats.py``): dispatch
  arms on received frames run in the established state (the client
  HELLOs at connect); an arm whose body is a top-level ``raise`` is a
  teardown transition, anything else a self-loop.  Arms must match
  declared ``s2c`` rows, and every declared downlink kind must be
  handled somewhere in the client pool — a ``FrameKind.X`` argument to
  a non-``encode_frame`` call counts (the ``_read_frame(REPLY)``
  idiom).  Arms comparing against a *variable* kind are invisible to
  this classification and intentionally skipped;
* **both sides**: every ``encode_frame(FrameKind.X, ...)`` send needs
  a spec row in its direction, and the spec itself must stay inside
  the declared state/kind/direction vocabulary.

Modules are located by path suffix, so the checker runs unchanged over
``src/repro`` and the fixture trees; fixture trees carry their own
(deliberately wrong) literal spec tables.
"""

from __future__ import annotations

import ast
from typing import (Dict, Iterator, List, NamedTuple, Optional, Set,
                    Tuple, Union)

from ...lintkit.diagnostics import Diagnostic
from ..base import Checker, checker
from ..model import ModuleInfo, ProjectModel
from ._spec import literal_table

_DIRECTIONS = ("c2s", "s2c")

#: ``(state, kind-name, direction) -> next state``
_Transitions = Dict[Tuple[str, str, str], str]


class _Arm(NamedTuple):
    """One ``frame.kind is FrameKind.X`` dispatch arm."""

    kind: str
    test: ast.expr
    body: List[ast.stmt]


class _Chain(NamedTuple):
    """A whole if/elif dispatch chain over frame kinds."""

    head: ast.If
    arms: List[_Arm]
    has_reject_else: bool
    flags: Set[str]


def _kind_of_test(test: ast.expr) -> Optional[str]:
    """``X`` when ``test`` is ``<expr>.kind is/== FrameKind.X``."""
    if not (isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Is, ast.Eq))
            and isinstance(test.left, ast.Attribute)
            and test.left.attr == "kind"
            and len(test.comparators) == 1):
        return None
    right = test.comparators[0]
    if (isinstance(right, ast.Attribute)
            and isinstance(right.value, ast.Name)
            and right.value.id == "FrameKind"):
        return right.attr
    return None


def _own_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk without descending into nested function/lambda bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _bool_flags(func: ast.AST) -> Set[str]:
    """Names the function assigns both ``False`` and ``True``."""
    seen: Dict[str, Set[bool]] = {}
    for node in _own_walk(func):
        if not (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, bool)):
            continue
        seen.setdefault(node.targets[0].id, set()).add(node.value.value)
    return {name for name, values in seen.items() if len(values) == 2}


def _chains(module: ModuleInfo) -> List[_Chain]:
    """Every frame-kind dispatch chain in the module, with context."""
    chains: List[_Chain] = []
    functions = [node for node in ast.walk(module.tree)
                 if isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))]
    for func in functions:
        kind_ifs = [node for node in _own_walk(func)
                    if isinstance(node, ast.If)
                    and _kind_of_test(node.test) is not None]
        continuations = {id(node.orelse[0]) for node in kind_ifs
                         if len(node.orelse) == 1
                         and isinstance(node.orelse[0], ast.If)
                         and _kind_of_test(node.orelse[0].test)
                         is not None}
        flags = _bool_flags(func)
        for head in kind_ifs:
            if id(head) in continuations:
                continue
            arms: List[_Arm] = []
            node: ast.If = head
            has_reject = False
            while True:
                kind = _kind_of_test(node.test)
                assert kind is not None
                arms.append(_Arm(kind, node.test, list(node.body)))
                orelse = node.orelse
                if (len(orelse) == 1 and isinstance(orelse[0], ast.If)
                        and _kind_of_test(orelse[0].test) is not None):
                    node = orelse[0]
                    continue
                has_reject = any(isinstance(stmt, ast.Raise)
                                 for stmt in orelse)
                break
            chains.append(_Chain(head, arms, has_reject, flags))
    return chains


def _guarded_states(arm: _Arm, flags: Set[str],
                    states: Tuple[str, str, str]) -> Tuple[str, ...]:
    """The session states in which this arm accepts its frame."""
    for stmt in arm.body:
        if not (isinstance(stmt, ast.If)
                and any(isinstance(inner, ast.Raise)
                        for inner in stmt.body)):
            continue
        test = stmt.test
        if isinstance(test, ast.Name) and test.id in flags:
            return (states[0],)  # `if greeted: raise` — pre-handshake
        if (isinstance(test, ast.UnaryOp)
                and isinstance(test.op, ast.Not)
                and isinstance(test.operand, ast.Name)
                and test.operand.id in flags):
            return (states[1],)  # `if not greeted: raise`
    return (states[0], states[1])


def _sets_flag(arm: _Arm, flags: Set[str]) -> bool:
    """Does the arm body set a handshake flag to ``True``?"""
    for stmt in arm.body:
        for node in [stmt] + list(_own_walk(stmt)):
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id in flags
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is True):
                return True
    return False


def _framekind_call_args(module: ModuleInfo
                         ) -> List[Tuple[ast.Call, str, str]]:
    """``(call, callee-name, kind)`` for ``f(..., FrameKind.X, ...)``."""
    out: List[Tuple[ast.Call, str, str]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = (func.id if isinstance(func, ast.Name)
                  else func.attr if isinstance(func, ast.Attribute)
                  else "")
        for arg in node.args:
            if (isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "FrameKind"):
                out.append((node, callee, arg.attr))
    return out


def _frame_kind_members(model: ProjectModel) -> Set[str]:
    framing = model.find("protocol/framing.py")
    if framing is None:
        return set()
    info = framing.classes.get("FrameKind")
    if info is None:
        return set()
    return {stmt.targets[0].id for stmt in info.node.body
            if isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)}


@checker
class SessionConformanceChecker(Checker):
    """The socket layer's dispatch matches the declared automaton."""

    checker_id = "PA008"
    title = ("session-conformance: socket dispatch implements the "
             "declared session automaton")

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        daemon = model.find("net/daemon.py")
        clients = [m for m in (model.find("net/sockets.py"),
                               model.find("net/stats.py"))
                   if m is not None]
        if daemon is None and not clients:
            return
        spec = model.find("protocol/spec.py")
        anchor = daemon if daemon is not None else clients[0]
        if spec is None:
            yield self.file_diagnostic(
                anchor.display_path,
                "socket layer present but the tree declares no "
                "protocol/spec.py session automaton")
            return
        parsed = self._parse_spec(spec)
        if isinstance(parsed, Diagnostic):
            yield parsed
            return
        states, transitions, table_stmt = parsed
        yield from self._check_vocabulary(model, spec, table_stmt,
                                          states, transitions)
        if daemon is not None:
            yield from self._check_server(daemon, spec, table_stmt,
                                          states, transitions)
        if clients:
            yield from self._check_clients(clients, spec, table_stmt,
                                           states, transitions)
        for module, direction in ([(daemon, "s2c")] if daemon else []) \
                + [(m, "c2s") for m in clients]:
            assert module is not None
            yield from self._check_sends(module, direction, transitions)

    # -- spec ----------------------------------------------------------
    def _parse_spec(self, spec: ModuleInfo) -> Union[
            Diagnostic,
            Tuple[Tuple[str, str, str], _Transitions, ast.stmt]]:
        states_parsed = literal_table(spec, "SESSION_STATES")
        table_parsed = literal_table(spec, "SESSION_TRANSITIONS")
        if states_parsed is None or table_parsed is None:
            return self.file_diagnostic(
                spec.display_path,
                "spec module declares no SESSION_STATES / "
                "SESSION_TRANSITIONS tables; the session automaton "
                "cannot be checked")
        states_stmt, states_val = states_parsed
        table_stmt, table_val = table_parsed
        if not (isinstance(states_val, tuple) and len(states_val) == 3
                and all(isinstance(s, str) for s in states_val)):
            return self.diagnostic(
                spec, states_stmt,
                "SESSION_STATES must be a literal 3-tuple of state "
                "names (pre-handshake, established, teardown)")
        if not isinstance(table_val, dict):
            return self.diagnostic(
                spec, table_stmt,
                "SESSION_TRANSITIONS must be a literal dict of "
                "(state, kind, direction) -> state")
        transitions: _Transitions = {}
        for key, value in table_val.items():
            if not (isinstance(key, tuple) and len(key) == 3
                    and all(isinstance(part, str) for part in key)
                    and isinstance(value, str)):
                return self.diagnostic(
                    spec, table_stmt,
                    "SESSION_TRANSITIONS rows must map a (state, kind, "
                    "direction) string triple to a state name")
            transitions[(key[0], key[1], key[2])] = value
        states3 = (str(states_val[0]), str(states_val[1]),
                   str(states_val[2]))
        return states3, transitions, table_stmt

    def _check_vocabulary(self, model: ProjectModel, spec: ModuleInfo,
                          table_stmt: ast.stmt,
                          states: Tuple[str, str, str],
                          transitions: _Transitions
                          ) -> Iterator[Diagnostic]:
        members = _frame_kind_members(model)
        for (state, kind, direction), target in sorted(
                transitions.items()):
            row = "(%s, %s, %s)" % (state, kind, direction)
            if state not in states or target not in states:
                yield self.diagnostic(
                    spec, table_stmt,
                    "spec row %s -> %s uses a state outside "
                    "SESSION_STATES" % (row, target))
            if direction not in _DIRECTIONS:
                yield self.diagnostic(
                    spec, table_stmt,
                    "spec row %s uses unknown direction %r (expected "
                    "c2s or s2c)" % (row, direction))
            if members and kind not in members:
                yield self.diagnostic(
                    spec, table_stmt,
                    "spec row %s names unknown frame kind %s (not a "
                    "FrameKind member)" % (row, kind))

    # -- server side ---------------------------------------------------
    def _check_server(self, daemon: ModuleInfo, spec: ModuleInfo,
                      table_stmt: ast.stmt,
                      states: Tuple[str, str, str],
                      transitions: _Transitions
                      ) -> Iterator[Diagnostic]:
        implemented: Set[Tuple[str, str]] = set()
        chains = _chains(daemon)
        for chain in chains:
            if not chain.has_reject_else:
                yield self.diagnostic(
                    daemon, chain.head,
                    "server dispatch chain has no rejecting else arm; "
                    "frames of unknown kinds are dropped silently "
                    "instead of failing the session")
            for arm in chain.arms:
                establishes = _sets_flag(arm, chain.flags)
                for state in _guarded_states(arm, chain.flags, states):
                    implemented.add((state, arm.kind))
                    implied = states[1] if establishes else state
                    declared = transitions.get((state, arm.kind, "c2s"))
                    if declared is None:
                        yield self.diagnostic(
                            daemon, arm.test,
                            "forbidden transition: the daemon accepts "
                            "%s frames in state %s but the spec "
                            "declares no (%s, %s, c2s) row"
                            % (arm.kind, state, state, arm.kind))
                    elif declared != implied:
                        yield self.diagnostic(
                            daemon, arm.test,
                            "transition target mismatch: the %s arm "
                            "moves state %s to %s but the spec "
                            "declares (%s, %s, c2s) -> %s"
                            % (arm.kind, state, implied, state,
                               arm.kind, declared))
        if not chains:
            return
        for (state, kind, direction) in sorted(transitions):
            if direction != "c2s":
                continue
            if (state, kind) not in implemented:
                yield self.diagnostic(
                    spec, table_stmt,
                    "spec declares (%s, %s, c2s) but no dispatch arm "
                    "in the daemon accepts it" % (state, kind))

    # -- client side ---------------------------------------------------
    def _check_clients(self, clients: List[ModuleInfo],
                       spec: ModuleInfo, table_stmt: ast.stmt,
                       states: Tuple[str, str, str],
                       transitions: _Transitions
                       ) -> Iterator[Diagnostic]:
        handled: Set[str] = set()
        saw_chain = False
        for module in clients:
            for chain in _chains(module):
                saw_chain = True
                for arm in chain.arms:
                    handled.add(arm.kind)
                    raises = any(isinstance(stmt, ast.Raise)
                                 for stmt in arm.body)
                    implied = states[2] if raises else states[1]
                    declared = transitions.get(
                        (states[1], arm.kind, "s2c"))
                    if declared is None:
                        yield self.diagnostic(
                            module, arm.test,
                            "forbidden transition: the client handles "
                            "%s frames in state %s but the spec "
                            "declares no (%s, %s, s2c) row"
                            % (arm.kind, states[1], states[1],
                               arm.kind))
                    elif declared != implied:
                        yield self.diagnostic(
                            module, arm.test,
                            "transition target mismatch: the client "
                            "%s arm moves state %s to %s but the spec "
                            "declares (%s, %s, s2c) -> %s"
                            % (arm.kind, states[1], implied,
                               states[1], arm.kind, declared))
            for _, callee, kind in _framekind_call_args(module):
                if callee != "encode_frame":
                    handled.add(kind)
        if not saw_chain:
            return
        for (state, kind, direction) in sorted(transitions):
            if direction != "s2c":
                continue
            if kind not in handled:
                yield self.diagnostic(
                    spec, table_stmt,
                    "spec declares (%s, %s, s2c) but no client module "
                    "handles %s frames; the downlink would be dropped "
                    "on receipt" % (state, kind, kind))
                handled.add(kind)  # one finding per kind

    # -- sends ---------------------------------------------------------
    def _check_sends(self, module: ModuleInfo, direction: str,
                     transitions: _Transitions
                     ) -> Iterator[Diagnostic]:
        rows = {kind for (_, kind, dirn) in transitions
                if dirn == direction}
        seen: Set[str] = set()
        for call, callee, kind in _framekind_call_args(module):
            if callee != "encode_frame" or kind in seen:
                continue
            seen.add(kind)
            if kind not in rows:
                yield self.diagnostic(
                    module, call,
                    "the module sends %s frames (%s) but the spec "
                    "declares no %s transition for that kind; the "
                    "peer must reject them" % (kind, direction,
                                               direction))
