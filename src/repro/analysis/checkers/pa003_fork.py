"""PA003: shard workers must not mutate parent-scope module state.

Flow-based escalation of lintkit's RL004.  RL004 flags module-global
writes *anywhere* in worker-reachable packages, one file at a time; it
cannot see that ``from .config import CACHE; CACHE.append(...)`` inside
a worker mutates another module's global, nor which functions actually
run inside a forked worker.  PA003 starts from the worker entry points
— callables handed to ``pool.submit(...)`` or passed as an
``initializer=`` keyword — and scans each entry's body plus one level
of statically-resolvable callees for:

* in-place mutation (mutator method call or subscript write) of a name
  that is a module-level mutable container in its *defining* module,
  whether defined locally or reached through an import;
* ``global NAME`` rebinding inside worker-reachable code (the parent's
  fork handshake is parent-side only, so no whitelist applies here).

Fork children snapshot the parent heap copy-on-write; any such write
silently diverges between shards (and disappears entirely under the
spawn start method), breaking the merge contract the differential
suite asserts.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ...lintkit.diagnostics import Diagnostic
from ...lintkit.rules.rl004_fork_safety import _MUTATOR_METHODS
from ..base import Checker, checker
from ..model import ModuleInfo, ProjectModel

#: A worker entry: (module using it, call-site node, callable name).
_WorkerRef = Tuple[ModuleInfo, ast.AST, str]


def _worker_refs(model: ProjectModel) -> List[_WorkerRef]:
    """Callables handed to ``pool.submit`` or ``initializer=``."""
    refs: List[_WorkerRef] = []
    for module in model.iter_modules():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "submit" and node.args
                    and isinstance(node.args[0], ast.Name)):
                refs.append((module, node, node.args[0].id))
            for keyword in node.keywords:
                if (keyword.arg == "initializer"
                        and isinstance(keyword.value, ast.Name)):
                    refs.append((module, node, keyword.value.id))
    return refs


def _local_bindings(func: ast.FunctionDef) -> Set[str]:
    """Names bound locally in ``func`` (these shadow module globals)."""
    local: Set[str] = set()
    globals_declared: Set[str] = set()
    args = func.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        local.add(arg.arg)
    if args.vararg is not None:
        local.add(args.vararg.arg)
    if args.kwarg is not None:
        local.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                local.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    local.add(name_node.id)
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                for name_node in ast.walk(node.optional_vars):
                    if isinstance(name_node, ast.Name):
                        local.add(name_node.id)
        elif isinstance(node, ast.comprehension):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    local.add(name_node.id)
    return local - globals_declared


@checker
class CrossModuleForkSafetyChecker(Checker):
    """Worker-executed code never writes parent-scope module state."""

    checker_id = "PA003"
    title = ("fork-safety: no parent-state mutation reachable from "
             "shard worker entry points")

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        scanned: Set[Tuple[str, str]] = set()
        for module, _, name in _worker_refs(model):
            resolved = model.resolve_function(module, name)
            if resolved is None:
                continue
            worker_module, worker = resolved
            key = (worker_module.rel_path, worker.name)
            if key in scanned:
                continue
            scanned.add(key)
            yield from self._scan_function(model, worker_module, worker,
                                           worker.name, depth=0)

    def _scan_function(self, model: ProjectModel, module: ModuleInfo,
                       func: ast.FunctionDef, entry: str,
                       depth: int) -> Iterator[Diagnostic]:
        local_names = _local_bindings(func)
        callees: List[str] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                for name in node.names:
                    yield self.diagnostic(
                        module, node,
                        "worker %r rebinds module global %r; forked "
                        "shards each see a divergent copy" % (entry,
                                                              name))
            elif isinstance(node, ast.Call):
                yield from self._check_mutation_call(
                    model, module, node, local_names, entry)
                if isinstance(node.func, ast.Name):
                    callees.append(node.func.id)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                yield from self._check_subscript_write(
                    model, module, node, local_names, entry)
        if depth > 0:
            return
        seen: Set[Tuple[str, str]] = {(module.rel_path, func.name)}
        for name in callees:
            resolved = model.resolve_function(module, name)
            if resolved is None:
                continue
            callee_module, callee = resolved
            key = (callee_module.rel_path, callee.name)
            if key in seen:
                continue
            seen.add(key)
            yield from self._scan_function(model, callee_module, callee,
                                           entry, depth=1)

    def _container_module(self, model: ProjectModel, module: ModuleInfo,
                          name: str, local_names: Set[str]
                          ) -> Optional[str]:
        """Defining module's rel path when ``name`` is a module-level
        mutable container visible here (``None`` otherwise)."""
        if name in local_names:
            return None
        if name in module.mutables:
            return module.rel_path
        imported = module.imports.get(name)
        if imported is None:
            return None
        source = model.module_by_name(imported[0])
        if source is not None and imported[1] in source.mutables:
            return source.rel_path
        return None

    def _check_mutation_call(self, model: ProjectModel,
                             module: ModuleInfo, node: ast.Call,
                             local_names: Set[str], entry: str
                             ) -> Iterator[Diagnostic]:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.attr in _MUTATOR_METHODS):
            return
        owner = self._container_module(model, module, func.value.id,
                                       local_names)
        if owner is not None:
            yield self.diagnostic(
                module, node,
                "worker %r mutates module-level container %r of %s "
                "(.%s()); shard state must live on instances"
                % (entry, func.value.id, owner, func.attr))

    def _check_subscript_write(self, model: ProjectModel,
                               module: ModuleInfo, node: ast.stmt,
                               local_names: Set[str], entry: str
                               ) -> Iterator[Diagnostic]:
        targets = (list(node.targets) if isinstance(node, ast.Assign)
                   else [node.target]
                   if isinstance(node, ast.AugAssign) else [])
        for target in targets:
            if not (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)):
                continue
            owner = self._container_module(model, module,
                                           target.value.id, local_names)
            if owner is not None:
                yield self.diagnostic(
                    module, target,
                    "worker %r writes module-level container %r of %s "
                    "by subscript; shard state must live on instances"
                    % (entry, target.value.id, owner))
