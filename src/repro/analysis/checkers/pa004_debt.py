"""PA004: the ``# lint: allow=`` pragma debt ratchets down, never up.

Suppression pragmas are technical debt with a paper trail: the repo
checks in a ledger (``lint_debt.json``, a ``{"RL002": 3, ...}`` map at
the repository root) recording how many pragmas each rule is allowed.
PA004 counts the pragmas actually present — via the tokenizer, so
pragma *mentions* inside docstrings and string literals do not count —
and compares:

* a rule with more pragmas than its ledger entry is a finding (adding
  a suppression without consciously raising the ratchet fails CI);
* a ledger entry larger than the live count is also a finding — debt
  that has been paid down must be locked in, or it silently grows back;
* pragmas with no ledger at all are findings (the ledger is the
  authorization).

Ledger findings anchor to the ledger file itself, so a pragma can never
suppress PA004.
"""

from __future__ import annotations

import io
import json
import tokenize
from pathlib import Path
from typing import Dict, Iterator, Optional

from ...lintkit.diagnostics import Diagnostic
from ...lintkit.pragmas import PRAGMA_PATTERN
from ..base import Checker, checker
from ..model import ProjectModel

#: Ledger file name, searched for in the analysis root then upward.
LEDGER_NAME = "lint_debt.json"
#: How many parent directories above the root to search.
_LEDGER_SEARCH_DEPTH = 4


def count_pragmas(model: ProjectModel) -> Dict[str, int]:
    """Per-rule count of real pragma comments across the model.

    Counted from tokenizer ``COMMENT`` tokens, so the pragma syntax
    appearing in a docstring (as it does in the linter's own sources)
    is not debt.  A multi-rule pragma counts once per rule it names.
    """
    counts: Dict[str, int] = {}
    for module in model.iter_modules():
        reader = io.StringIO(module.source).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except (tokenize.TokenError, IndentationError):
            continue
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = PRAGMA_PATTERN.search(token.string)
            if match is None:
                continue
            for part in match.group(1).split(","):
                rule_id = part.strip()
                counts[rule_id] = counts.get(rule_id, 0) + 1
    return counts


def find_ledger(root: Path) -> Optional[Path]:
    """Locate ``lint_debt.json`` in ``root`` or a nearby ancestor."""
    directory = root
    for _ in range(_LEDGER_SEARCH_DEPTH + 1):
        candidate = directory / LEDGER_NAME
        if candidate.is_file():
            return candidate
        if directory.parent == directory:
            break
        directory = directory.parent
    return None


@checker
class PragmaDebtChecker(Checker):
    """Pragma counts per rule never exceed the checked-in ledger."""

    checker_id = "PA004"
    title = "pragma-debt: # lint: allow= count per rule matches the ledger"

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        counts = count_pragmas(model)
        ledger_path = (Path(self.debt_path) if self.debt_path is not None
                       else find_ledger(model.root))
        if ledger_path is None or not ledger_path.is_file():
            if counts:
                total = sum(counts.values())
                yield self.file_diagnostic(
                    str(model.root / LEDGER_NAME),
                    "%d pragma suppression(s) in the tree but no %s "
                    "ledger authorizes them" % (total, LEDGER_NAME))
            return
        try:
            raw = json.loads(ledger_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            yield self.file_diagnostic(
                str(ledger_path),
                "ledger is unreadable or not valid JSON")
            return
        if not (isinstance(raw, dict)
                and all(isinstance(key, str)
                        and isinstance(value, int)
                        and not isinstance(value, bool)
                        for key, value in raw.items())):
            yield self.file_diagnostic(
                str(ledger_path),
                "ledger must map rule ids to integer pragma budgets")
            return
        ledger: Dict[str, int] = dict(raw)
        for rule_id in sorted(set(counts) | set(ledger)):
            actual = counts.get(rule_id, 0)
            budget = ledger.get(rule_id, 0)
            if actual > budget:
                yield self.file_diagnostic(
                    str(ledger_path),
                    "pragma debt for %s grew to %d (ledger allows %d); "
                    "remove the suppression or consciously raise the "
                    "ratchet" % (rule_id, actual, budget))
            elif actual < budget:
                yield self.file_diagnostic(
                    str(ledger_path),
                    "ledger allows %d %s pragma(s) but only %d remain; "
                    "ratchet the ledger down to lock in the paydown"
                    % (budget, rule_id, actual))
