"""PA007: every spawned task is retained; every coroutine is awaited.

``asyncio.create_task`` returns the only handle to the spawned work.
Dropping it has two failure modes the runtime only reports as noise,
long after the cause: the event loop holds merely a *weak* reference,
so a garbage-collected task can vanish mid-flight; and an exception
inside a fire-and-forget task surfaces as a "Task exception was never
retrieved" log line at interpreter exit instead of failing the caller.
The daemon's own ``_conn_tasks`` registry — add on spawn, cancel and
gather in ``aclose()`` — is the contract this checker generalizes:

* a ``create_task``/``ensure_future`` whose result is **discarded**
  (expression statement) is a fire-and-forget task: error;
* a result bound to a **local** must be used again on some path —
  awaited, cancelled, gathered, stored, passed or returned; a binding
  with no further use is a leak with extra steps;
* a result stored on a **self attribute** must be awaited, cancelled
  or gathered somewhere in the same class — a write-only task
  attribute is the fire-and-forget pattern hidden behind state;
* a **bare call to a coroutine function** whose result is discarded
  never runs at all (Python only warns at GC time): error.  Calls
  wrapped in ``await``, ``create_task``, ``gather`` or ``asyncio.run``
  are the sanctioned shapes and resolve through the call graph.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ...lintkit.diagnostics import Diagnostic
from ..base import Checker, checker
from ..concurrency import ConcurrencyModel, TaskSpawn
from ..model import FunctionInfo, ProjectModel, _terminal_name, own_nodes

#: Call names that consume a task/coroutine handle legitimately.
_CONSUMING_CALLS = frozenset({"gather", "wait", "wait_for", "shield",
                              "as_completed", "run"})


def _self_attr(node: ast.expr) -> Optional[str]:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


@checker
class TaskLifecycleChecker(Checker):
    """Spawned tasks are retained and joined; coroutines are awaited."""

    checker_id = "PA007"
    title = ("task-lifecycle: no fire-and-forget tasks or "
             "never-awaited coroutines")

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        conc = model.concurrency()
        for spawn in conc.spawns:
            yield from self._check_spawn(conc, spawn)
        yield from self._check_bare_coroutine_calls(conc)

    # -- create_task / ensure_future sites -----------------------------
    def _check_spawn(self, conc: ConcurrencyModel,
                     spawn: TaskSpawn) -> Iterator[Diagnostic]:
        if spawn.caller is None:
            return
        func = conc.functions[spawn.caller].node
        for node in own_nodes(func):
            if isinstance(node, ast.Expr) and node.value is spawn.node:
                yield self.diagnostic(
                    spawn.module, spawn.node,
                    "%s() result is discarded: a fire-and-forget task "
                    "is only weakly referenced by the loop and its "
                    "failure is never retrieved — keep the handle and "
                    "await or cancel it (the _conn_tasks pattern)"
                    % spawn.api)
                return
            if not (isinstance(node, ast.Assign)
                    and node.value is spawn.node
                    and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name):
                yield from self._check_local_use(spawn, func, node,
                                                 target.id)
            else:
                attr = _self_attr(target)
                if attr is not None:
                    yield from self._check_attr_use(conc, spawn, attr)
            return

    def _check_local_use(self, spawn: TaskSpawn,
                         func: ast.AST, assign: ast.Assign,
                         name: str) -> Iterator[Diagnostic]:
        for node in own_nodes(func):
            if (isinstance(node, ast.Name) and node.id == name
                    and isinstance(node.ctx, ast.Load)):
                return  # any further use counts as retention
        yield self.diagnostic(
            spawn.module, spawn.node,
            "task handle %r from %s() is never used again: the task "
            "is unawaited and uncancelled on every path — await it, "
            "cancel it, or register it in a task set" % (name,
                                                         spawn.api))

    def _check_attr_use(self, conc: ConcurrencyModel, spawn: TaskSpawn,
                        attr: str) -> Iterator[Diagnostic]:
        caller = conc.functions[spawn.caller] \
            if spawn.caller is not None else None
        class_name = caller.class_name if caller is not None else None
        if class_name is None:
            return
        methods = conc.methods.get((spawn.module.rel_path, class_name),
                                   [])
        for info in methods:
            if self._joins_attr(info, attr):
                return
        yield self.diagnostic(
            spawn.module, spawn.node,
            "task stored on self.%s is never awaited or cancelled "
            "anywhere in class %s; a write-only task attribute is "
            "fire-and-forget with extra steps" % (attr, class_name))

    @staticmethod
    def _joins_attr(info: FunctionInfo, attr: str) -> bool:
        """Does this method await, cancel or gather ``self.<attr>``?"""
        for node in own_nodes(info.node):
            if isinstance(node, ast.Await):
                for sub in ast.walk(node):
                    if _self_attr(sub) == attr:
                        return True
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr == "cancel"
                        and _self_attr(func.value) == attr):
                    return True
                if _terminal_name(func) in _CONSUMING_CALLS:
                    for arg in node.args:
                        inner = (arg.value
                                 if isinstance(arg, ast.Starred)
                                 else arg)
                        if _self_attr(inner) == attr:
                            return True
        return False

    # -- bare coroutine calls ------------------------------------------
    def _check_bare_coroutine_calls(self, conc: ConcurrencyModel
                                    ) -> Iterator[Diagnostic]:
        for key in sorted(conc.calls):
            for edge in conc.calls[key]:
                callee = conc.functions.get(edge.callee)
                if (callee is None or not callee.is_async
                        or not edge.discarded or edge.awaited):
                    continue
                yield self.diagnostic(
                    conc.module_of[key], edge.node,
                    "coroutine %r is called but never awaited: the "
                    "call only builds a coroutine object, the body "
                    "never runs — await it or hand it to "
                    "create_task/gather" % callee.qualname)
