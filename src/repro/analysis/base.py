"""Checker plumbing: base class and the PA-rule registry.

Mirrors :mod:`repro.lintkit.base` one level up: a *checker* is to the
project model what a lint *rule* is to a single file.  Checkers have
stable ``PAnnn`` ids (the shared pragma syntax ``# lint: allow=PA001``
suppresses them line-by-line like any lint rule), a docstring stating
the contract they enforce, and a ``check`` method that walks the
:class:`~repro.analysis.model.ProjectModel` and yields diagnostics.

Registration happens at import time through :func:`checker`;
``checkers/__init__`` imports every checker module so importing
:mod:`repro.analysis` populates the registry.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Type

from ..lintkit.diagnostics import Diagnostic
from .model import ModuleInfo, ProjectModel


class Checker:
    """Base class for one named cross-module contract check."""

    #: Stable identifier, ``PAnnn`` — diagnostics, pragmas and the
    #: ``--rule`` selector all refer to checkers by this id.
    checker_id: str = "PA000"
    #: One-line human title shown in listings.
    title: str = ""

    #: Optional path of the pragma-debt ledger (PA004 only; threaded
    #: through from the runner so the CLI can override it).
    debt_path: Optional[str] = None

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        """Yield every violation of this contract in the model."""
        raise NotImplementedError

    def diagnostic(self, module: ModuleInfo, node: Optional[ast.AST],
                   message: str) -> Diagnostic:
        """Build a diagnostic anchored at ``node`` in ``module``."""
        return Diagnostic(path=module.display_path,
                          line=getattr(node, "lineno", 1),
                          col=getattr(node, "col_offset", 0),
                          rule_id=self.checker_id, message=message)

    def file_diagnostic(self, path: str, message: str) -> Diagnostic:
        """Build a whole-file diagnostic (no meaningful line anchor)."""
        return Diagnostic(path=path, line=1, col=0,
                          rule_id=self.checker_id, message=message)


#: Registry of checker classes keyed by id, populated by @checker.
_REGISTRY: Dict[str, Type[Checker]] = {}


def checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator registering a checker under its ``checker_id``."""
    if not cls.checker_id or cls.checker_id == "PA000":
        raise ValueError("checker %r needs a non-default checker_id"
                         % (cls,))
    if cls.checker_id in _REGISTRY:
        raise ValueError("duplicate checker id %s" % cls.checker_id)
    _REGISTRY[cls.checker_id] = cls
    return cls


def get_checker(checker_id: str) -> Type[Checker]:
    """Look up a registered checker class; ``KeyError`` when unknown."""
    _ensure_checkers_loaded()
    return _REGISTRY[checker_id]


def ALL_CHECKERS() -> List[Type[Checker]]:
    """All registered checker classes, ordered by checker id."""
    _ensure_checkers_loaded()
    return [_REGISTRY[checker_id] for checker_id in sorted(_REGISTRY)]


def _ensure_checkers_loaded() -> None:
    # Importing the subpackage runs every checker module's decorator.
    from . import checkers  # noqa: F401  (import-for-side-effect)
