"""Concurrency view of the project model: call graph, domains, roots.

:class:`ConcurrencyModel` is the layer PA005-PA007 share.  Built once
per :class:`~repro.analysis.model.ProjectModel` (cached via
:meth:`ProjectModel.concurrency`), it derives from the function table:

* a **call graph** with sync/async edges.  Each edge records how the
  callee was resolved (``via``): a plain name, a ``self`` method, a
  constructor-typed attribute or local, or a constructor call.  Awaited
  calls are marked so checkers can tell ``await f()`` from a bare
  ``f()``;
* **concurrency roots** — the places code enters a domain other than
  the caller's thread: ``asyncio.create_task``/``ensure_future`` sites,
  ``threading.Thread(target=...)`` targets (through a ``lambda:
  asyncio.run(...)`` trampoline too, the ``DaemonThread`` shape),
  ``run_in_executor``/``pool.submit``/``initializer=`` submissions and
  ``call_soon_threadsafe`` handoffs — unifying what PA003 resolved ad
  hoc for process pools;
* a **domain classification** per function.  Domains: every coroutine
  (and every sync function transitively called from one by name or via
  ``self``) runs on the *event loop*; thread targets run in a
  *thread*; ``run_in_executor``/``ThreadPoolExecutor`` targets in an
  *executor* thread; ``ProcessPoolExecutor`` targets in a *process*
  (isolated address space — exempt from shared-memory race analysis,
  PA003 owns that boundary).  Unclassified functions run wherever the
  caller runs — the *main* domain by default;
* **synchronizer typing** — attributes constructed from
  ``asyncio``/``threading``/``queue``/``multiprocessing`` queue, lock
  and event classes are recognized handoff points and exempt from race
  analysis.

Propagation is deliberately narrow: domains flow only along ``name``
and ``self`` call edges.  Attribute-typed calls cross object
boundaries where *which instance* matters (the daemon's transport vs
the client's), which a whole-program classifier cannot see — flowing
domains through them manufactures false races, so those edges serve
only reachability walks (PA005), never classification (PA006).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .model import (FunctionInfo, ModuleInfo, ProjectModel,
                    _terminal_name, own_nodes)

#: A function's identity: (module rel path, qualname).
FuncKey = Tuple[str, str]

DOMAIN_LOOP = "event-loop"
DOMAIN_THREAD = "thread"
DOMAIN_EXECUTOR = "executor"
DOMAIN_PROCESS = "process"
DOMAIN_MAIN = "main"

#: Library modules whose constructors type queues/locks/events.
_SYNC_LIBRARIES = frozenset(
    {"queue", "asyncio", "threading", "multiprocessing",
     "concurrent.futures"})

#: Class names recognized as synchronizers (thread-safe handoffs).
_SYNCHRONIZER_CLASSES = frozenset(
    {"Queue", "LifoQueue", "PriorityQueue", "SimpleQueue", "Event",
     "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
     "Barrier"})


@dataclass(frozen=True)
class TypeRef:
    """Best-effort type of a constructed value.

    Either an in-model class (``rel_path`` set) or an external library
    class (``library`` set, e.g. ``("queue", None, "Queue")``).
    """

    library: Optional[str]
    rel_path: Optional[str]
    class_name: str

    @property
    def is_synchronizer(self) -> bool:
        return (self.library in _SYNC_LIBRARIES
                and self.class_name in _SYNCHRONIZER_CLASSES)


@dataclass
class CallEdge:
    """One resolved call site: ``caller`` invokes ``callee``."""

    caller: FuncKey
    callee: FuncKey
    node: ast.Call
    #: The call sits directly under an ``await``.
    awaited: bool
    #: Resolution route: ``name`` | ``self`` | ``attr`` | ``local``
    #: | ``constructor``.
    via: str
    #: The call's result is discarded (the call *is* an ``Expr``
    #: statement) — PA007's never-awaited-coroutine signal.
    discarded: bool = False


@dataclass
class TaskSpawn:
    """One ``asyncio.create_task``/``ensure_future`` call site."""

    module: ModuleInfo
    #: Function containing the spawn (``None`` at module level).
    caller: Optional[FuncKey]
    node: ast.Call
    api: str


@dataclass
class ConcurrencyModel:
    """Call graph, domain classification and roots for one model."""

    model: ProjectModel
    functions: Dict[FuncKey, FunctionInfo] = field(default_factory=dict)
    module_of: Dict[FuncKey, ModuleInfo] = field(default_factory=dict)
    #: Methods grouped by (module rel path, class name).
    methods: Dict[Tuple[str, str], List[FunctionInfo]] = field(
        default_factory=dict)
    calls: Dict[FuncKey, List[CallEdge]] = field(default_factory=dict)
    #: Classified domains per function; absent means "main".
    domains: Dict[FuncKey, FrozenSet[str]] = field(default_factory=dict)
    spawns: List[TaskSpawn] = field(default_factory=list)
    #: Constructor-derived attribute types per (rel, class, attr).
    attr_types: Dict[Tuple[str, str, str], TypeRef] = field(
        default_factory=dict)
    #: Constructor-derived local types per function.
    local_types: Dict[FuncKey, Dict[str, TypeRef]] = field(
        default_factory=dict)
    #: Synchronizer-typed attribute names per (rel, class).
    synchronizers: Dict[Tuple[str, str], Set[str]] = field(
        default_factory=dict)

    # -- construction --------------------------------------------------
    @classmethod
    def build(cls, model: ProjectModel) -> "ConcurrencyModel":
        conc = cls(model=model)
        for module in model.iter_modules():
            for info in module.all_functions.values():
                key = (module.rel_path, info.qualname)
                conc.functions[key] = info
                conc.module_of[key] = module
                if info.class_name is not None:
                    conc.methods.setdefault(
                        (module.rel_path, info.class_name),
                        []).append(info)
        conc._infer_attribute_types()
        entries: List[Tuple[FuncKey, str]] = []
        for key in sorted(conc.functions):
            conc.local_types[key] = conc._infer_local_types(key)
        for key in sorted(conc.functions):
            conc._extract_calls_and_roots(key, entries)
        conc._propagate_domains(entries)
        return conc

    # -- type inference ------------------------------------------------
    def constructed_type(self, module: ModuleInfo,
                         node: ast.expr) -> Optional[TypeRef]:
        """Type of ``ClassName(...)`` / ``lib.ClassName(...)``, if a
        class this model (or a known library) declares."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in module.classes:
                return TypeRef(None, module.rel_path, func.id)
            imported = module.imports.get(func.id)
            if imported is None:
                return None
            dotted, original = imported
            source = self.model.module_by_name(dotted)
            if source is not None and original in source.classes:
                return TypeRef(None, source.rel_path, original)
            if dotted in _SYNC_LIBRARIES:
                return TypeRef(dotted, None, original)
            return None
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in _SYNC_LIBRARIES):
            return TypeRef(func.value.id, None, func.attr)
        return None

    def _infer_attribute_types(self) -> None:
        ambiguous: Set[Tuple[str, str, str]] = set()
        for (rel_path, class_name), infos in self.methods.items():
            module = self.module_of[(rel_path, infos[0].qualname)]
            for info in infos:
                for node in own_nodes(info.node):
                    if not (isinstance(node, ast.Assign)
                            and len(node.targets) == 1):
                        continue
                    target = node.targets[0]
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    ref = self.constructed_type(module, node.value)
                    if ref is None:
                        continue
                    slot = (rel_path, class_name, target.attr)
                    known = self.attr_types.get(slot)
                    if known is not None and known != ref:
                        ambiguous.add(slot)
                        continue
                    self.attr_types[slot] = ref
                    if ref.is_synchronizer:
                        self.synchronizers.setdefault(
                            (rel_path, class_name), set()).add(
                            target.attr)
        for slot in ambiguous:
            self.attr_types.pop(slot, None)

    def _infer_local_types(self, key: FuncKey) -> Dict[str, TypeRef]:
        module = self.module_of[key]
        func = self.functions[key].node
        types: Dict[str, TypeRef] = {}
        for node in own_nodes(func):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                ref = self.constructed_type(module, node.value)
                if ref is not None:
                    types[node.targets[0].id] = ref
            elif (isinstance(node, ast.withitem)
                  and isinstance(node.optional_vars, ast.Name)):
                ref = self.constructed_type(module, node.context_expr)
                if ref is not None:
                    types[node.optional_vars.id] = ref
        return types

    def receiver_type(self, key: FuncKey,
                      node: ast.expr) -> Optional[TypeRef]:
        """Type of a call receiver expression inside function ``key``:
        a constructor-typed local or ``self`` attribute."""
        if isinstance(node, ast.Name):
            return self.local_types.get(key, {}).get(node.id)
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            info = self.functions[key]
            if info.class_name is not None:
                return self.attr_types.get(
                    (key[0], info.class_name, node.attr))
        return None

    # -- call graph + roots --------------------------------------------
    def _resolve_named_function(self, module: ModuleInfo,
                                name: str) -> Optional[FuncKey]:
        """A top-level function ``name`` here or one import hop away."""
        info = module.all_functions.get(name)
        if info is not None and info.class_name is None \
                and "." not in info.qualname:
            return (module.rel_path, name)
        imported = module.imports.get(name)
        if imported is None:
            return None
        source = self.model.module_by_name(imported[0])
        if source is None:
            return None
        target = source.all_functions.get(imported[1])
        if target is None or target.class_name is not None:
            return None
        return (source.rel_path, imported[1])

    def _callable_ref(self, key: FuncKey,
                      node: ast.expr) -> Optional[FuncKey]:
        """Resolve a callable *reference* (not a call): a named
        function or a ``self`` method handed to a spawn API."""
        module = self.module_of[key]
        if isinstance(node, ast.Name):
            return self._resolve_named_function(module, node.id)
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            info = self.functions[key]
            if info.class_name is None:
                return None
            qualname = "%s.%s" % (info.class_name, node.attr)
            if qualname in module.all_functions:
                return (key[0], qualname)
        return None

    def _resolve_call(self, key: FuncKey,
                      node: ast.Call) -> Optional[Tuple[FuncKey, str]]:
        module = self.module_of[key]
        func = node.func
        if isinstance(func, ast.Name):
            ctor = self.constructed_type(module, node)
            if ctor is not None and ctor.rel_path is not None:
                owner = self.model.modules[ctor.rel_path]
                init = "%s.__init__" % ctor.class_name
                if init in owner.all_functions:
                    return (ctor.rel_path, init), "constructor"
                return None
            named = self._resolve_named_function(module, func.id)
            if named is not None:
                return named, "name"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        info = self.functions[key]
        if (isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and info.class_name is not None):
            qualname = "%s.%s" % (info.class_name, func.attr)
            if qualname in module.all_functions:
                return (key[0], qualname), "self"
            return None
        ref = self.receiver_type(key, func.value)
        if ref is not None and ref.rel_path is not None:
            owner = self.model.modules[ref.rel_path]
            qualname = "%s.%s" % (ref.class_name, func.attr)
            if qualname in owner.all_functions:
                via = ("local" if isinstance(func.value, ast.Name)
                       else "attr")
                return (ref.rel_path, qualname), via
        return None

    def _extract_calls_and_roots(
            self, key: FuncKey,
            entries: List[Tuple[FuncKey, str]]) -> None:
        module = self.module_of[key]
        func = self.functions[key].node
        awaited_ids = {id(node.value) for node in own_nodes(func)
                       if isinstance(node, ast.Await)}
        discarded_ids = {id(node.value) for node in own_nodes(func)
                         if isinstance(node, ast.Expr)}
        edges: List[CallEdge] = []
        for node in own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._resolve_call(key, node)
            if resolved is not None:
                callee, via = resolved
                edges.append(CallEdge(
                    caller=key, callee=callee, node=node,
                    awaited=id(node) in awaited_ids, via=via,
                    discarded=id(node) in discarded_ids))
            self._extract_roots(key, module, node, entries)
        if edges:
            self.calls[key] = edges

    def _extract_roots(self, key: FuncKey, module: ModuleInfo,
                       node: ast.Call,
                       entries: List[Tuple[FuncKey, str]]) -> None:
        name = _terminal_name(node.func)
        if name in ("create_task", "ensure_future") \
                and name is not None:
            self.spawns.append(TaskSpawn(module=module, caller=key,
                                         node=node, api=name))
            self._note_entry(key, node.args[:1], DOMAIN_LOOP, entries)
        elif name == "Thread" and self._is_threading_thread(module,
                                                            node):
            for keyword in node.keywords:
                if keyword.arg == "target":
                    self._note_thread_target(key, keyword.value,
                                             entries)
        elif name == "submit" and isinstance(node.func, ast.Attribute):
            pool = self.receiver_type(key, node.func.value)
            domain = (DOMAIN_EXECUTOR
                      if pool is not None
                      and pool.class_name == "ThreadPoolExecutor"
                      else DOMAIN_PROCESS)
            self._note_entry(key, node.args[:1], domain, entries)
        elif name == "run_in_executor":
            self._note_entry(key, node.args[1:2], DOMAIN_EXECUTOR,
                             entries)
        elif name in ("call_soon_threadsafe", "call_soon"):
            self._note_entry(key, node.args[:1], DOMAIN_LOOP, entries)
        elif name in ("call_later", "call_at"):
            self._note_entry(key, node.args[1:2], DOMAIN_LOOP, entries)
        else:
            ctor = self.constructed_type(module, node)
            if ctor is not None and ctor.class_name in (
                    "ProcessPoolExecutor", "ThreadPoolExecutor"):
                domain = (DOMAIN_EXECUTOR
                          if ctor.class_name == "ThreadPoolExecutor"
                          else DOMAIN_PROCESS)
                for keyword in node.keywords:
                    if keyword.arg == "initializer":
                        self._note_entry(key, [keyword.value], domain,
                                         entries)

    @staticmethod
    def _is_threading_thread(module: ModuleInfo,
                             node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute):
            return (isinstance(func.value, ast.Name)
                    and func.value.id == "threading")
        if isinstance(func, ast.Name):
            return module.imports.get(func.id, ("", ""))[0] \
                == "threading"
        return False

    def _note_entry(self, key: FuncKey, args: Iterable[ast.expr],
                    domain: str,
                    entries: List[Tuple[FuncKey, str]]) -> None:
        for arg in args:
            # ``create_task(coro())`` hands over the *call*'s function.
            target = arg.func if isinstance(arg, ast.Call) else arg
            ref = self._callable_ref(key, target)
            if ref is not None:
                entries.append((ref, domain))

    def _note_thread_target(
            self, key: FuncKey, target: ast.expr,
            entries: List[Tuple[FuncKey, str]]) -> None:
        if isinstance(target, ast.Lambda):
            # The loop-hosting trampoline: ``lambda:
            # asyncio.run(self._main())`` runs ``_main`` on a fresh
            # event loop inside the new thread; any other call in the
            # lambda body runs plainly on the thread.
            for node in ast.walk(target.body):
                if not isinstance(node, ast.Call):
                    continue
                name = _terminal_name(node.func)
                if name == "run" and node.args:
                    self._note_entry(key, node.args[:1], DOMAIN_LOOP,
                                     entries)
                elif name is not None:
                    ref = self._callable_ref(key, node.func)
                    if ref is not None:
                        entries.append((ref, DOMAIN_THREAD))
            return
        ref = self._callable_ref(key, target)
        if ref is not None:
            entries.append((ref, DOMAIN_THREAD))

    # -- domain propagation --------------------------------------------
    def _propagate_domains(
            self, entries: List[Tuple[FuncKey, str]]) -> None:
        working: Dict[FuncKey, Set[str]] = {}
        for key, info in self.functions.items():
            if info.is_async:
                working.setdefault(key, set()).add(DOMAIN_LOOP)
        for key, domain in entries:
            if self.functions[key].is_async:
                continue  # coroutines are loop-domain regardless
            working.setdefault(key, set()).add(domain)
        queue = deque(sorted(working))
        while queue:
            key = queue.popleft()
            for edge in self.calls.get(key, []):
                if edge.via not in ("name", "self"):
                    continue
                callee_info = self.functions.get(edge.callee)
                if callee_info is None or callee_info.is_async:
                    continue
                target = working.setdefault(edge.callee, set())
                added = working[key] - target
                if added:
                    target.update(added)
                    queue.append(edge.callee)
        self.domains = {key: frozenset(value)
                        for key, value in working.items()}

    # -- queries -------------------------------------------------------
    def effective_domains(self, key: FuncKey) -> FrozenSet[str]:
        """Domains for race analysis: ``main`` when unclassified, and
        process-pool code excluded (isolated address space)."""
        classified = self.domains.get(key)
        if classified is None:
            return frozenset({DOMAIN_MAIN})
        shared = classified - {DOMAIN_PROCESS}
        return frozenset(shared)

    def class_synchronizers(self, rel_path: str,
                            class_name: str) -> Set[str]:
        return self.synchronizers.get((rel_path, class_name), set())
