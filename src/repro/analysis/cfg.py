"""Intraprocedural control-flow graphs for the analysis checkers.

:class:`CFG` turns one function body into a statement-level graph with
synthetic entry/exit nodes and *approximate* exception edges, built
for one question: "is there an execution path from statement A to an
exit that avoids every statement satisfying P?" — the shape of the
PA009 resource-leak check (A acquires, P releases).

The model is deliberately small and errs toward *under*-reporting:

* every simple statement whose subtree contains a call or ``await``
  gets an exception edge to the innermost handler (or the synthetic
  :attr:`CFG.raise_exit`) — calls are where exceptions realistically
  come from;
* a raised exception is assumed to match one of the written handlers
  when a ``try`` has any; the "matches no handler" route is modelled
  only through ``finally`` (a ``try``/``finally`` without handlers
  routes its exception edges through the ``finally`` body);
* ``finally`` bodies are instantiated per continuation (normal,
  exceptional, return, break, continue) so a release in a ``finally``
  dominates every route through it — the duplication is bounded by the
  small ``finally`` bodies this codebase writes;
* compound statements (``if``/``while``/``for``/``with``/``try``) are
  represented by a header node whose *statement* is the whole compound
  node — predicates evaluated against a header therefore see the whole
  subtree, which callers exploit as a deliberate "a release anywhere
  under this branch point counts" approximation (see PA009).

Nested ``def``/``lambda`` bodies belong to their own functions and are
never entered (:func:`~repro.analysis.model.own_nodes` discipline).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Set, Tuple)

from .model import AnyFunctionDef

#: Statement types represented by a single (possibly compound) node.
_LOOPS = (ast.While, ast.For, ast.AsyncFor)


@dataclass
class CFGNode:
    """One graph node: a statement, or a synthetic entry/exit."""

    index: int
    #: The statement this node represents (``None`` for synthetics).
    #: For compound statements this is the *whole* compound node.
    stmt: Optional[ast.stmt]
    #: ``"entry"``, ``"exit"``, ``"raise-exit"``, ``"dispatch"``
    #: (synthetic handler selection) or ``"stmt"``.
    label: str
    #: Normal-flow successors.
    succs: List[int] = field(default_factory=list)
    #: Exception successor (innermost handler route), if any.
    exc_succ: Optional[int] = None

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


@dataclass(frozen=True)
class _Targets:
    """Where non-linear control transfers go while building a region."""

    exc: int
    ret: int
    brk: Optional[int] = None
    cont: Optional[int] = None


class CFG:
    """The control-flow graph of one function."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._add(None, "entry")
        self.exit = self._add(None, "exit")
        self.raise_exit = self._add(None, "raise-exit")
        #: First node built for each statement (``finally`` duplication
        #: can create several; the first is the canonical one).
        self.node_of: Dict[int, int] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def build(cls, func: AnyFunctionDef) -> "CFG":
        """Build the graph of ``func``'s own body."""
        cfg = cls()
        targets = _Targets(exc=cfg.raise_exit, ret=cfg.exit)
        head = cfg._region(func.body, cfg.exit, targets)
        cfg.nodes[cfg.entry].succs.append(head)
        return cfg

    def _add(self, stmt: Optional[ast.stmt], label: str) -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index=index, stmt=stmt, label=label))
        if stmt is not None:
            self.node_of.setdefault(id(stmt), index)
        return index

    def _region(self, body: Sequence[ast.stmt], follow: int,
                targets: _Targets) -> int:
        """Build ``body``; returns its entry (``follow`` when empty)."""
        nxt = follow
        for stmt in reversed(body):
            nxt = self._stmt(stmt, nxt, targets)
        return nxt

    def _stmt(self, stmt: ast.stmt, follow: int,
              targets: _Targets) -> int:
        if isinstance(stmt, ast.Return):
            index = self._add(stmt, "stmt")
            self.nodes[index].succs.append(targets.ret)
            if _has_call(stmt):
                self.nodes[index].exc_succ = targets.exc
            return index
        if isinstance(stmt, ast.Raise):
            index = self._add(stmt, "stmt")
            self.nodes[index].succs.append(targets.exc)
            return index
        if isinstance(stmt, ast.Break):
            index = self._add(stmt, "stmt")
            self.nodes[index].succs.append(
                targets.brk if targets.brk is not None else follow)
            return index
        if isinstance(stmt, ast.Continue):
            index = self._add(stmt, "stmt")
            self.nodes[index].succs.append(
                targets.cont if targets.cont is not None else follow)
            return index
        if isinstance(stmt, ast.If):
            index = self._add(stmt, "stmt")
            then = self._region(stmt.body, follow, targets)
            other = self._region(stmt.orelse, follow, targets)
            self.nodes[index].succs.extend([then, other])
            if _has_call_expr(stmt.test):
                self.nodes[index].exc_succ = targets.exc
            return index
        if isinstance(stmt, _LOOPS):
            index = self._add(stmt, "stmt")
            inner = _Targets(exc=targets.exc, ret=targets.ret,
                             brk=follow, cont=index)
            head = self._region(stmt.body, index, inner)
            self.nodes[index].succs.append(head)
            # `while True:` never falls through — only `break` leaves.
            if not (isinstance(stmt, ast.While)
                    and isinstance(stmt.test, ast.Constant)
                    and bool(stmt.test.value)):
                other = self._region(stmt.orelse, follow, targets)
                self.nodes[index].succs.append(other)
            self.nodes[index].exc_succ = targets.exc
            return index
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            index = self._add(stmt, "stmt")
            head = self._region(stmt.body, follow, targets)
            self.nodes[index].succs.append(head)
            self.nodes[index].exc_succ = targets.exc
            return index
        if isinstance(stmt, ast.Try):
            return self._try(stmt, follow, targets)
        # Simple statement (expression, assignment, assert, import...).
        index = self._add(stmt, "stmt")
        self.nodes[index].succs.append(follow)
        if isinstance(stmt, ast.Assert) or _has_call(stmt):
            self.nodes[index].exc_succ = targets.exc
        return index

    def _try(self, stmt: ast.Try, follow: int,
             targets: _Targets) -> int:
        """A ``try`` region, with per-continuation ``finally`` copies."""
        protected = list(stmt.body) + list(stmt.orelse) \
            + [s for h in stmt.handlers for s in h.body]
        if stmt.finalbody:
            fin_normal = self._region(stmt.finalbody, follow, targets)
            fin_exc = self._region(stmt.finalbody, targets.exc, targets)
            fin_ret = (self._region(stmt.finalbody, targets.ret, targets)
                       if _transfers(protected, ast.Return)
                       else targets.ret)
            fin_brk = targets.brk
            if targets.brk is not None \
                    and _transfers(protected, ast.Break):
                fin_brk = self._region(stmt.finalbody, targets.brk,
                                       targets)
            fin_cont = targets.cont
            if targets.cont is not None \
                    and _transfers(protected, ast.Continue):
                fin_cont = self._region(stmt.finalbody, targets.cont,
                                        targets)
        else:
            fin_normal, fin_exc = follow, targets.exc
            fin_ret, fin_brk, fin_cont = (targets.ret, targets.brk,
                                          targets.cont)
        inner = _Targets(exc=fin_exc, ret=fin_ret, brk=fin_brk,
                         cont=fin_cont)
        handler_heads = [self._region(handler.body, fin_normal, inner)
                         for handler in stmt.handlers]
        if handler_heads:
            # Synthetic: "an exception was raised somewhere in the
            # body, pick a handler".  Deliberately NOT anchored to the
            # Try statement — a release inside the try body must not
            # credit the exception route past it.
            dispatch = self._add(None, "dispatch")
            self.nodes[dispatch].succs.extend(handler_heads)
            body_exc = dispatch
        else:
            body_exc = fin_exc
        body_targets = _Targets(exc=body_exc, ret=fin_ret, brk=fin_brk,
                                cont=fin_cont)
        # `orelse` runs after a clean body; its exceptions are NOT
        # caught by this try's handlers.
        orelse_head = self._region(stmt.orelse, fin_normal, inner) \
            if stmt.orelse else fin_normal
        return self._region(stmt.body, orelse_head, body_targets)

    # -- queries -------------------------------------------------------
    def successors(self, index: int,
                   include_exceptions: bool = True) -> Iterator[int]:
        node = self.nodes[index]
        for succ in node.succs:
            yield succ
        if include_exceptions and node.exc_succ is not None:
            yield node.exc_succ

    def find_path(self, starts: Sequence[int], goals: Set[int],
                  blocked: Callable[[CFGNode], bool],
                  include_exceptions: bool = True
                  ) -> Optional[List[int]]:
        """A path from any start to any goal avoiding blocked nodes.

        Breadth-first, so the returned node-index path is shortest;
        ``None`` when every route is blocked.  Blocked nodes are not
        expanded (control is assumed to stop there for the caller's
        purpose); start nodes are themselves subject to blocking.
        With ``include_exceptions=False`` only normal-flow edges are
        walked.
        """
        parent: Dict[int, Optional[int]] = {}
        frontier: List[int] = []
        for start in starts:
            if start not in parent:
                parent[start] = None
                frontier.append(start)
        while frontier:
            nxt: List[int] = []
            for index in frontier:
                if blocked(self.nodes[index]):
                    continue
                if index in goals:
                    return self._unwind(parent, index)
                for succ in self.successors(index,
                                            include_exceptions):
                    if succ not in parent:
                        parent[succ] = index
                        nxt.append(succ)
            frontier = nxt
        return None

    @staticmethod
    def _unwind(parent: Dict[int, Optional[int]],
                index: int) -> List[int]:
        path: List[int] = []
        cursor: Optional[int] = index
        while cursor is not None:
            path.append(cursor)
            cursor = parent[cursor]
        path.reverse()
        return path


def scoped_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without entering nested function/lambda bodies."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        if current is not node and isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _has_call(stmt: ast.stmt) -> bool:
    return any(isinstance(node, (ast.Call, ast.Await))
               for node in scoped_walk(stmt))


def _has_call_expr(expr: ast.expr) -> bool:
    return any(isinstance(node, (ast.Call, ast.Await))
               for node in ast.walk(expr))


def _transfers(body: Sequence[ast.stmt],
               kind: type) -> bool:
    """Does ``body`` contain a ``kind`` transfer belonging to it?

    ``Return`` is scoped to the function (descend everything except
    nested defs); ``Break``/``Continue`` belong to the innermost loop,
    so loop *bodies* are skipped (a loop's ``orelse`` still belongs to
    the enclosing loop).
    """
    stack: List[ast.AST] = [node for stmt in body
                            for node in [stmt]]
    while stack:
        node = stack.pop()
        if isinstance(node, kind):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if kind in (ast.Break, ast.Continue) \
                and isinstance(node, _LOOPS):
            stack.extend(node.orelse)
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False
