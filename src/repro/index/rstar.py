"""An R*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990).

The paper indexes installed spatial alarms in an R*-tree and evaluates
subscriber position updates against it; this module is that substrate,
implemented from scratch.  It provides the three query shapes the alarm
server needs:

* ``search_intersecting(rect)`` — all items whose region intersects a
  query rectangle (used to collect the alarms relevant to a grid cell for
  safe-region computation);
* ``search_containing(point)`` — all items whose region contains a point
  (used to evaluate a raw position update, i.e. "which alarms fire
  here?");
* ``nearest_distance(point)`` — distance from a point to the nearest
  indexed region (used by the safe-period baseline's pessimistic bound).

The implementation follows the original paper: ChooseSubtree picks the
child needing least *overlap* enlargement at the leaf level and least
*area* enlargement above it; the first overflow on each level during an
insertion is handled by forced reinsertion of the 30% of entries farthest
from the node center; splits choose the axis minimizing total margin and
the distribution minimizing overlap (ties by area).

Every node visit increments ``self.stats.node_accesses`` so the
simulation's server cost model can report deterministic operation counts
alongside wall-clock time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..geometry import Point, Rect

DEFAULT_MAX_ENTRIES = 16
REINSERT_FRACTION = 0.3
MIN_FILL_FRACTION = 0.4


@dataclass
class TreeStats:
    """Deterministic operation counters for the cost model."""

    node_accesses: int = 0
    splits: int = 0
    reinserts: int = 0

    def reset(self) -> None:
        self.node_accesses = 0
        self.splits = 0
        self.reinserts = 0


@dataclass
class _Entry:
    """A node slot: a bounding rectangle plus either a child or an item."""

    rect: Rect
    child: Optional["_Node"] = None
    item: Any = None


class _Node:
    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.entries: List[_Entry] = []
        self.parent: Optional["_Node"] = None

    def mbr(self) -> Rect:
        return Rect.bounding(entry.rect for entry in self.entries)


class RStarTree:
    """A dynamic R*-tree over ``(item, Rect)`` pairs.

    ``item`` may be any hashable or unhashable object; deletion matches by
    identity-or-equality on the item within the supplied rectangle.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = max(2, int(max_entries * MIN_FILL_FRACTION))
        self.reinsert_count = max(1, int(max_entries * REINSERT_FRACTION))
        self.stats = TreeStats()
        self._root = _Node(leaf=True)
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(cls, items: List[Tuple[Any, Rect]],
                  max_entries: int = DEFAULT_MAX_ENTRIES) -> "RStarTree":
        """Build a packed tree with Sort-Tile-Recursive (STR) loading.

        STR sorts the items by x-center, slices them into vertical runs
        of ``sqrt(n / max_entries)`` tiles, sorts each run by y-center
        and packs leaves in order; upper levels pack the same way over
        node centers.  The result is a valid R*-tree (the structural
        invariants, including minimum fill, hold — trailing nodes borrow
        from their left sibling when short) that is both faster to build
        and better clustered than one grown by repeated insertion.  The
        alarm registry uses it when a large alarm population is known
        up front.
        """
        tree = cls(max_entries=max_entries)
        if not items:
            return tree
        entries = [_Entry(rect=rect, item=item) for item, rect in items]
        level_nodes = tree._pack_level(entries, leaf=True)
        height = 1
        while len(level_nodes) > 1:
            parent_entries = [_Entry(rect=node.mbr(), child=node)
                              for node in level_nodes]
            level_nodes = tree._pack_level(parent_entries, leaf=False)
            height += 1
        tree._root = level_nodes[0]
        tree._root.parent = None
        tree._height = height
        tree._size = len(items)
        return tree

    def _pack_level(self, entries: List[_Entry],
                    leaf: bool) -> List["_Node"]:
        """Pack entries into nodes of one level, STR-style."""
        per_node = self.max_entries
        node_count = max(1, math.ceil(len(entries) / per_node))
        slice_count = max(1, math.ceil(math.sqrt(node_count)))
        run_length = slice_count * per_node

        entries = sorted(entries, key=lambda e: e.rect.center.x)
        groups: List[List[_Entry]] = []
        for run_start in range(0, len(entries), run_length):
            run = sorted(entries[run_start:run_start + run_length],
                         key=lambda e: e.rect.center.y)
            for start in range(0, len(run), per_node):
                groups.append(run[start:start + per_node])
        # Re-balance a short trailing group so non-root nodes satisfy the
        # minimum fill invariant.
        if len(groups) > 1 and len(groups[-1]) < self.min_entries:
            needed = self.min_entries - len(groups[-1])
            donor = groups[-2]
            groups[-1] = donor[len(donor) - needed:] + groups[-1]
            groups[-2] = donor[:len(donor) - needed]

        nodes: List[_Node] = []
        for group in groups:
            node = _Node(leaf=leaf)
            node.entries = group
            for entry in group:
                if entry.child is not None:
                    entry.child.parent = node
            nodes.append(node)
        return nodes

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    def insert(self, item: Any, rect: Rect) -> None:
        """Insert ``item`` with spatial extent ``rect``."""
        self._insert_entry(_Entry(rect=rect, item=item), target_level=0,
                           reinsert_levels=set())
        self._size += 1

    def delete(self, item: Any, rect: Rect) -> bool:
        """Remove one occurrence of ``item`` indexed under ``rect``.

        Returns True when an entry was found and removed.  Underfull nodes
        on the path are dissolved and their entries reinserted (the
        CondenseTree step of the classic algorithm).
        """
        found = self._find_leaf(self._root, item, rect)
        if found is None:
            return False
        leaf, entry_index = found
        del leaf.entries[entry_index]
        self._condense(leaf)
        self._size -= 1
        if not self._root.leaf and len(self._root.entries) == 1:
            self._root = (
                self._root.entries[0].child)  # type: ignore[assignment]
            self._root.parent = None
            self._height -= 1
        return True

    def search_intersecting(self, rect: Rect,
                            predicate: Optional[Callable[[Any], bool]] = None
                            ) -> List[Any]:
        """All items whose rectangle intersects ``rect`` (closed test)."""
        results: List[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.node_accesses += 1
            for entry in node.entries:
                if not entry.rect.intersects(rect):
                    continue
                if node.leaf:
                    if predicate is None or predicate(entry.item):
                        results.append(entry.item)
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]
        return results

    def search_interior_intersecting(self, rect: Rect,
                                     predicate: Optional[
                                         Callable[[Any], bool]] = None
                                     ) -> List[Any]:
        """All items whose rectangle interior-overlaps ``rect``.

        Safe-region computation uses the open test: an alarm that merely
        touches the grid-cell boundary imposes no constraint inside it.
        """
        results: List[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.node_accesses += 1
            for entry in node.entries:
                if node.leaf:
                    if entry.rect.interior_intersects(rect) and (
                            predicate is None or predicate(entry.item)):
                        results.append(entry.item)
                elif entry.rect.intersects(rect):
                    stack.append(entry.child)  # type: ignore[arg-type]
        return results

    def search_containing(self, point: Point,
                          predicate: Optional[Callable[[Any], bool]] = None,
                          interior: bool = False) -> List[Any]:
        """All items whose rectangle contains ``point``.

        With ``interior=True`` the leaf test is open containment (points
        on an item's boundary do not match) — the alarm-trigger
        semantics.  Internal descent always uses the closed test, which
        is a correct superset.
        """
        results: List[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.node_accesses += 1
            for entry in node.entries:
                if not entry.rect.contains_point(point):
                    continue
                if node.leaf:
                    if interior and not entry.rect.interior_contains_point(
                            point):
                        continue
                    if predicate is None or predicate(entry.item):
                        results.append(entry.item)
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]
        return results

    def nearest_distance(self, point: Point,
                         predicate: Optional[Callable[[Any], bool]] = None
                         ) -> float:
        """Distance from ``point`` to the nearest matching item's rectangle.

        Returns ``math.inf`` when the tree holds no matching item.  This
        is a best-first branch-and-bound over node MBRs — the standard
        nearest-neighbour descent specialised to distance-only output.
        """
        import heapq

        best = math.inf
        counter = 0  # tie-breaker so heap never compares nodes
        heap: List[Tuple[float, int, _Node]] = [(0.0, counter, self._root)]
        while heap:
            lower_bound, _, node = heapq.heappop(heap)
            if lower_bound >= best:
                break
            self.stats.node_accesses += 1
            for entry in node.entries:
                distance = entry.rect.distance_to_point(point)
                if distance >= best:
                    continue
                if node.leaf:
                    if predicate is None or predicate(entry.item):
                        best = distance
                else:
                    counter += 1
                    heapq.heappush(heap, (distance, counter, entry.child))
        return best

    def items(self) -> Iterator[Tuple[Any, Rect]]:
        """Iterate over every ``(item, rect)`` pair in the tree."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if node.leaf:
                    yield entry.item, entry.rect
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on breakage.

        Verified invariants: every non-root node holds between
        ``min_entries`` and ``max_entries`` entries; internal entries'
        rectangles equal their child's MBR; all leaves sit at the same
        depth; parent pointers are consistent; the item count matches
        ``len(self)``.
        """
        leaf_depths: List[int] = []
        count = 0

        def walk(node: _Node, depth: int, is_root: bool) -> None:
            nonlocal count
            if not is_root:
                assert len(node.entries) >= self.min_entries, "underfull node"
            assert len(node.entries) <= self.max_entries, "overfull node"
            if node.leaf:
                leaf_depths.append(depth)
                count += len(node.entries)
                return
            for entry in node.entries:
                child = entry.child
                assert child is not None, "internal entry without child"
                assert child.parent is node, "broken parent pointer"
                assert entry.rect == child.mbr(), "stale bounding rectangle"
                walk(child, depth + 1, is_root=False)

        if self._size == 0:
            assert self._root.leaf and not self._root.entries
            return
        walk(self._root, 0, is_root=True)
        assert len(set(leaf_depths)) == 1, "leaves at different depths"
        assert count == self._size, "size counter out of sync"

    # ------------------------------------------------------------------
    # Insertion internals
    # ------------------------------------------------------------------
    def _insert_entry(self, entry: _Entry, target_level: int,
                      reinsert_levels: set) -> None:
        node = self._choose_subtree(entry.rect, target_level)
        node.entries.append(entry)
        if entry.child is not None:
            entry.child.parent = node
        self._adjust_upward(node)
        if len(node.entries) > self.max_entries:
            self._overflow(node, target_level, reinsert_levels)

    def _node_level(self, node: _Node) -> int:
        """Level of ``node`` counting leaves as level 0."""
        level = 0
        probe = node
        while not probe.leaf:
            probe = probe.entries[0].child  # type: ignore[assignment]
            level += 1
        return level

    def _choose_subtree(self, rect: Rect, target_level: int) -> _Node:
        node = self._root
        level = self._height - 1
        while level > target_level:
            self.stats.node_accesses += 1
            child_is_leaf = (level - 1) == 0
            if child_is_leaf and not node.leaf:
                entry = self._least_overlap_child(node, rect)
            else:
                entry = self._least_area_child(node, rect)
            node = entry.child  # type: ignore[assignment]
            level -= 1
        return node

    @staticmethod
    def _least_area_child(node: _Node, rect: Rect) -> _Entry:
        best = None
        best_key: Tuple[float, float] = (math.inf, math.inf)
        for entry in node.entries:
            key = (entry.rect.enlargement(rect), entry.rect.area)
            if key < best_key:
                best_key = key
                best = entry
        assert best is not None
        return best

    @staticmethod
    def _least_overlap_child(node: _Node, rect: Rect) -> _Entry:
        """ChooseSubtree at the level above leaves: minimise overlap growth."""
        best = None
        best_key: Tuple[float, float, float] = (math.inf, math.inf, math.inf)
        for entry in node.entries:
            enlarged = entry.rect.union(rect)
            overlap_before = 0.0
            overlap_after = 0.0
            for other in node.entries:
                if other is entry:
                    continue
                overlap_before += entry.rect.intersection_area(other.rect)
                overlap_after += enlarged.intersection_area(other.rect)
            key = (overlap_after - overlap_before,
                   entry.rect.enlargement(rect),
                   entry.rect.area)
            if key < best_key:
                best_key = key
                best = entry
        assert best is not None
        return best

    def _overflow(self, node: _Node, level: int, reinsert_levels: set) -> None:
        is_root = node.parent is None
        if not is_root and level not in reinsert_levels:
            reinsert_levels.add(level)
            self._forced_reinsert(node, level, reinsert_levels)
        else:
            self._split(node, level, reinsert_levels)

    def _forced_reinsert(self, node: _Node, level: int,
                         reinsert_levels: set) -> None:
        """Evict the entries farthest from the node center and re-add them."""
        self.stats.reinserts += 1
        center = node.mbr().center
        node.entries.sort(
            key=lambda e: e.rect.center.squared_distance_to(center))
        evicted = node.entries[-self.reinsert_count:]
        del node.entries[-self.reinsert_count:]
        self._adjust_upward(node)
        # Close reinsert: nearest evictees first, as the R* paper found best.
        for entry in evicted:
            self._insert_entry(entry, level, reinsert_levels)

    def _split(self, node: _Node, level: int, reinsert_levels: set) -> None:
        self.stats.splits += 1
        first_group, second_group = self._choose_split(node.entries)

        node.entries = first_group
        for entry in node.entries:
            if entry.child is not None:
                entry.child.parent = node

        sibling = _Node(leaf=node.leaf)
        sibling.entries = second_group
        for entry in sibling.entries:
            if entry.child is not None:
                entry.child.parent = sibling

        if node.parent is None:
            new_root = _Node(leaf=False)
            new_root.entries = [
                _Entry(rect=node.mbr(), child=node),
                _Entry(rect=sibling.mbr(), child=sibling),
            ]
            node.parent = new_root
            sibling.parent = new_root
            self._root = new_root
            self._height += 1
            return

        parent = node.parent
        for entry in parent.entries:
            if entry.child is node:
                entry.rect = node.mbr()
                break
        parent.entries.append(_Entry(rect=sibling.mbr(), child=sibling))
        sibling.parent = parent
        self._adjust_upward(parent)
        if len(parent.entries) > self.max_entries:
            self._overflow(parent, level + 1, reinsert_levels)

    def _choose_split(self,
                      entries: List[_Entry]) -> Tuple[List[_Entry],
                                                      List[_Entry]]:
        """R* split: axis by minimum margin, distribution by overlap/area."""
        best_axis_margin = math.inf
        best_axis_distributions = None
        for axis_key_low, axis_key_high in (
                (lambda e: (e.rect.min_x, e.rect.max_x),
                 lambda e: (e.rect.max_x, e.rect.min_x)),
                (lambda e: (e.rect.min_y, e.rect.max_y),
                 lambda e: (e.rect.max_y, e.rect.min_y))):
            margin_sum = 0.0
            distributions = []
            for sort_key in (axis_key_low, axis_key_high):
                ordered = sorted(entries, key=sort_key)
                for split_at in range(self.min_entries,
                                      len(ordered) - self.min_entries + 1):
                    left = ordered[:split_at]
                    right = ordered[split_at:]
                    left_mbr = Rect.bounding(e.rect for e in left)
                    right_mbr = Rect.bounding(e.rect for e in right)
                    margin_sum += left_mbr.margin + right_mbr.margin
                    distributions.append((left, right, left_mbr, right_mbr))
            if margin_sum < best_axis_margin:
                best_axis_margin = margin_sum
                best_axis_distributions = distributions
        assert best_axis_distributions is not None

        best_key = (math.inf, math.inf)
        best_split = None
        for left, right, left_mbr, right_mbr in best_axis_distributions:
            key = (left_mbr.intersection_area(right_mbr),
                   left_mbr.area + right_mbr.area)
            if key < best_key:
                best_key = key
                best_split = (left, right)
        assert best_split is not None
        return list(best_split[0]), list(best_split[1])

    # ------------------------------------------------------------------
    # Deletion internals
    # ------------------------------------------------------------------
    def _find_leaf(self, node: _Node, item: Any,
                   rect: Rect) -> Optional[Tuple[_Node, int]]:
        self.stats.node_accesses += 1
        if node.leaf:
            for index, entry in enumerate(node.entries):
                if entry.rect == rect and (entry.item is item
                                           or entry.item == item):
                    return node, index
            return None
        for entry in node.entries:
            if entry.rect.contains_rect(rect):
                found = self._find_leaf(entry.child, item, rect)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        """Dissolve underfull nodes along the path to the root, reinserting."""
        orphans: List[Tuple[_Entry, int]] = []
        level = 0
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                for index, entry in enumerate(parent.entries):
                    if entry.child is node:
                        del parent.entries[index]
                        break
                orphans.extend((entry, level) for entry in node.entries)
            else:
                for entry in parent.entries:
                    if entry.child is node:
                        entry.rect = node.mbr()
                        break
            node = parent
            level += 1
        for entry, entry_level in orphans:
            self._insert_entry(entry, entry_level, reinsert_levels=set())

    # ------------------------------------------------------------------
    def _adjust_upward(self, node: _Node) -> None:
        """Refresh bounding rectangles from ``node`` up to the root."""
        current = node
        while current.parent is not None:
            parent = current.parent
            for entry in parent.entries:
                if entry.child is current:
                    entry.rect = current.mbr()
                    break
            current = parent
