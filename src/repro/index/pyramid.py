"""Pyramid cell decomposition (Samet's pyramid, paper Section 4.2).

The Pyramid Bitmap Encoded Safe Region (PBSR) splits a base grid cell
recursively: level 0 is the entire cell, level 1 is a U x V subdivision,
level 2 subdivides each level-1 cell into U x V again, and so on up to a
height ``h``.  Only cells that intersect alarm regions (bit 0) are split
further, which is where the representation wins over a flat grid.

This module provides the pure *geometry* of the decomposition — cell
addressing, rectangles, point location and parent/child navigation.  The
bit assignment and serialization live in :mod:`repro.saferegion.bitmap`.

Cell addressing: a cell at level ``L`` is identified by ``(col, row)``
with ``0 <= col < U**L`` and ``0 <= row < V**L``.  Raster-scan order —
top row first, left to right, matching Fig. 3 of the paper — is the
canonical enumeration order everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..geometry import Point, Rect

DEFAULT_FAN = 3  # the paper's figures use 3x3 splits


@dataclass(frozen=True)
class PyramidCell:
    """Address of one cell in the decomposition."""

    level: int
    col: int
    row: int


class Pyramid:
    """Geometry of a U x V recursive decomposition of a base rectangle."""

    def __init__(self, base: Rect, fan_cols: int = DEFAULT_FAN,
                 fan_rows: int = DEFAULT_FAN, height: int = 1) -> None:
        if fan_cols < 2 or fan_rows < 2:
            raise ValueError("split factors must be at least 2")
        if height < 1:
            raise ValueError("height must be at least 1")
        if base.area == 0:
            raise ValueError("base cell must have positive area")
        self.base = base
        self.fan_cols = fan_cols
        self.fan_rows = fan_rows
        self.height = height

    # ------------------------------------------------------------------
    def grid_dims(self, level: int) -> Tuple[int, int]:
        """``(columns, rows)`` of the full grid at ``level``."""
        self._check_level(level)
        return (self.fan_cols ** level, self.fan_rows ** level)

    def cell_rect(self, cell: PyramidCell) -> Rect:
        """Geometric rectangle of ``cell``.

        Edges use the ratio form ``base.min + base.extent * k / n`` so
        that coincident boundaries at *different* levels (e.g. 24/27 and
        8/9) evaluate to bit-identical floats — cells then tile exactly
        and never overlap across levels.
        """
        cols, rows = self.grid_dims(cell.level)
        if not (0 <= cell.col < cols and 0 <= cell.row < rows):
            raise ValueError("cell %r outside level grid" % (cell,))
        return Rect(self.base.min_x + self.base.width * cell.col / cols,
                    self.base.min_y + self.base.height * cell.row / rows,
                    self.base.min_x + self.base.width * (cell.col + 1) / cols,
                    self.base.min_y + self.base.height * (cell.row + 1) / rows)

    def locate(self, p: Point, level: int) -> PyramidCell:
        """Cell of ``p`` at ``level``; boundary points clamp inward."""
        cols, rows = self.grid_dims(level)
        col = int((p.x - self.base.min_x) / self.base.width * cols)
        row = int((p.y - self.base.min_y) / self.base.height * rows)
        col = min(max(col, 0), cols - 1)
        row = min(max(row, 0), rows - 1)
        return PyramidCell(level, col, row)

    def children(self, cell: PyramidCell) -> Iterator[PyramidCell]:
        """Children of ``cell`` at the next level, in raster-scan order.

        Raster-scan means top row of children first — this order defines
        the within-parent bit layout of the pyramid bitmap.
        """
        self._check_level(cell.level + 1)
        base_col = cell.col * self.fan_cols
        base_row = cell.row * self.fan_rows
        for row_offset in range(self.fan_rows - 1, -1, -1):
            for col_offset in range(self.fan_cols):
                yield PyramidCell(cell.level + 1,
                                  base_col + col_offset,
                                  base_row + row_offset)

    def parent(self, cell: PyramidCell) -> PyramidCell:
        """Parent cell one level up; the root cell has no parent."""
        if cell.level == 0:
            raise ValueError("the root cell has no parent")
        return PyramidCell(cell.level - 1,
                           cell.col // self.fan_cols,
                           cell.row // self.fan_rows)

    def child_slot(self, cell: PyramidCell) -> int:
        """Index of ``cell`` within its parent's raster-scan child order.

        The client containment probe uses this to walk the serialized
        bitmap: at each level it needs to know which of the parent's
        ``U*V`` child bits corresponds to its position.
        """
        if cell.level == 0:
            raise ValueError("the root cell has no slot")
        col_offset = cell.col % self.fan_cols
        row_offset = cell.row % self.fan_rows
        # raster-scan: top row (largest row index) first
        return (self.fan_rows - 1 - row_offset) * self.fan_cols + col_offset

    def level_cells(self, level: int) -> Iterator[PyramidCell]:
        """All cells of ``level`` in raster-scan order."""
        cols, rows = self.grid_dims(level)
        for row in range(rows - 1, -1, -1):
            for col in range(cols):
                yield PyramidCell(level, col, row)

    def fanout(self) -> int:
        """Number of children per cell (``U * V``)."""
        return self.fan_cols * self.fan_rows

    # ------------------------------------------------------------------
    def _check_level(self, level: int) -> None:
        if not (0 <= level <= self.height):
            raise ValueError(
                "level %d outside pyramid of height %d" % (level, self.height))
