"""Uniform grid overlay on the Universe of Discourse (paper Section 2.2).

The safe-region framework scopes every computation to the subscriber's
*current grid cell*: only alarms intersecting that cell are considered,
and safe regions never extend past the cell boundary.  The paper sweeps
the cell size from 0.4 to 10 square kilometers (Fig. 4), so the grid is
parameterized by target cell area and snaps to an integer number of
columns and rows over the universe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from ..geometry import Point, Rect


@dataclass(frozen=True)
class CellId:
    """Discrete grid coordinates of a cell (column, row)."""

    col: int
    row: int


class GridOverlay:
    """A uniform grid partitioning a rectangular universe.

    Cells are half-open on their upper edges internally so that every
    point of the universe maps to exactly one cell, but the *geometric*
    cell returned by :meth:`cell_rect` is the closed rectangle — matching
    how the safe-region algorithms treat the cell as their workspace.
    """

    def __init__(self, universe: Rect, cell_area_km2: float) -> None:
        """Create a grid whose cells are approximately ``cell_area_km2``.

        The requested area is honoured as closely as an integer subdivision
        of the universe allows; the realised area is available as
        :attr:`actual_cell_area_km2`.
        """
        if cell_area_km2 <= 0:
            raise ValueError("cell area must be positive")
        if universe.area == 0:
            raise ValueError("universe must have positive area")
        self.universe = universe
        side_m = math.sqrt(cell_area_km2) * 1000.0
        self.columns = max(1, round(universe.width / side_m))
        self.rows = max(1, round(universe.height / side_m))
        self.cell_width = universe.width / self.columns
        self.cell_height = universe.height / self.rows

    @property
    def cell_count(self) -> int:
        return self.columns * self.rows

    @property
    def actual_cell_area_km2(self) -> float:
        """Realised cell area in square kilometers."""
        return (self.cell_width * self.cell_height) / 1e6

    def cell_of(self, p: Point) -> CellId:
        """The cell containing ``p``; points outside clamp to the border.

        Clamping keeps vehicles that brush the edge of the universe (a
        road may terminate exactly on the boundary) attached to a valid
        cell rather than raising deep inside the simulation loop.
        """
        col = int((p.x - self.universe.min_x) / self.cell_width)
        row = int((p.y - self.universe.min_y) / self.cell_height)
        col = min(max(col, 0), self.columns - 1)
        row = min(max(row, 0), self.rows - 1)
        return CellId(col, row)

    def cell_rect(self, cell: CellId) -> Rect:
        """Closed geometric rectangle of ``cell``.

        Edges use the ratio form ``min + extent * k / n`` so the last
        column/row ends exactly on the universe boundary (points clamped
        onto the border cell are then geometrically inside it) and
        adjacent cells share bit-identical boundaries.
        """
        if not (0 <= cell.col < self.columns and 0 <= cell.row < self.rows):
            raise ValueError("cell %r outside grid" % (cell,))
        universe = self.universe
        return Rect(
            universe.min_x + universe.width * cell.col / self.columns,
            universe.min_y + universe.height * cell.row / self.rows,
            universe.min_x + universe.width * (cell.col + 1) / self.columns,
            universe.min_y + universe.height * (cell.row + 1) / self.rows)

    def cell_rect_of_point(self, p: Point) -> Rect:
        """Convenience: geometric cell of the cell containing ``p``."""
        return self.cell_rect(self.cell_of(p))

    def cells_intersecting(self, rect: Rect) -> Iterator[CellId]:
        """Yield every cell whose closed rectangle intersects ``rect``."""
        clipped = rect.intersection(self.universe)
        if clipped is None:
            return
        lo = self.cell_of(clipped.bottom_left)
        hi = self.cell_of(clipped.top_right)
        for row in range(lo.row, hi.row + 1):
            for col in range(lo.col, hi.col + 1):
                yield CellId(col, row)

    def shape(self) -> Tuple[int, int]:
        """Grid dimensions as ``(columns, rows)``."""
        return (self.columns, self.rows)
