"""Spatial indexing substrates: R*-tree, uniform grid, pyramid."""

from .grid import CellId, GridOverlay
from .pyramid import DEFAULT_FAN, Pyramid, PyramidCell
from .rstar import RStarTree, TreeStats

__all__ = [
    "CellId",
    "DEFAULT_FAN",
    "GridOverlay",
    "Pyramid",
    "PyramidCell",
    "RStarTree",
    "TreeStats",
]
