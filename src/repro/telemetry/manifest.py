"""Run manifests: the provenance header of every trace and benchmark.

A figure table or a ``BENCH_*.json`` trajectory is only evidence if it
can be traced back to the exact inputs that produced it.  A
:class:`RunManifest` records those inputs — the workload configuration
(flattened to JSON scalars), every seed it contains, a canonical hash
of the configuration, the git commit of the source tree, the strategy
and the worker count — and is written as the first record of every
trace (``record: "manifest"``) and embedded into benchmark JSON output
by ``benchmarks/conftest.py``.

The manifest deliberately carries *no wall-clock timestamp*: two runs
of the same config at different times must produce byte-identical
manifests, so manifest equality *is* run reproducibility.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional

#: Manifest schema version; bump on breaking field changes.
MANIFEST_VERSION = 1


def config_fingerprint(config: Mapping[str, object]) -> str:
    """Canonical sha256 of a configuration mapping.

    Keys are sorted and values JSON-encoded (non-JSON values degrade to
    ``str``), so logically equal configs hash equal regardless of dict
    order or dataclass identity.
    """
    canonical = json.dumps(dict(config), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def current_git_sha(root: Optional[Path] = None) -> Optional[str]:
    """The source tree's commit hash, or ``None`` outside a checkout.

    Best-effort by design: a manifest from an installed wheel or a CI
    tarball still records everything else; ``git_sha: null`` is the
    honest value there.
    """
    cwd = root if root is not None else Path(__file__).resolve().parent
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"], cwd=str(cwd),
                              capture_output=True, text=True, timeout=10,
                              check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def extract_seeds(config: Mapping[str, object]) -> Dict[str, int]:
    """Every integer seed field of a config (keys ending in ``seed``)."""
    return {key: value for key, value in config.items()
            if key.endswith("seed") and isinstance(value, int)
            and not isinstance(value, bool)}


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one simulation or benchmark run."""

    strategy: str
    workload: Dict[str, object]
    seeds: Dict[str, int]
    config_hash: str
    git_sha: Optional[str]
    workers: int = 1
    extras: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def collect(cls, strategy: str, config: Mapping[str, object],
                workers: int = 1,
                git_sha: Optional[str] = None,
                **extras: object) -> "RunManifest":
        """Build a manifest from a flattened config mapping.

        ``config`` is typically ``dataclasses.asdict(WorkloadConfig)``;
        seeds and the canonical hash are derived from it.  ``git_sha``
        defaults to the current checkout's commit.  Keyword ``extras``
        (message sizes, energy constants, grid cell area, ...) land in
        the manifest verbatim and must be JSON-representable.
        """
        workload = dict(config)
        return cls(strategy=strategy, workload=workload,
                   seeds=extract_seeds(workload),
                   config_hash=config_fingerprint(workload),
                   git_sha=(git_sha if git_sha is not None
                            else current_git_sha()),
                   workers=workers, extras=dict(extras))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (embedded in benchmark JSON outputs)."""
        return {"version": MANIFEST_VERSION, "strategy": self.strategy,
                "workload": dict(self.workload),
                "seeds": dict(self.seeds),
                "config_hash": self.config_hash, "git_sha": self.git_sha,
                "workers": self.workers, "extras": dict(self.extras)}

    def to_record(self) -> Dict[str, object]:
        """Trace-record form (the first line of a JSONL trace)."""
        record: Dict[str, object] = {"record": "manifest"}
        record.update(self.to_dict())
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "RunManifest":
        """Rebuild a manifest from its record/dict form."""
        workload = record.get("workload")
        seeds = record.get("seeds")
        extras = record.get("extras")
        git_sha = record.get("git_sha")
        workers_raw = record.get("workers", 1)
        workers = (workers_raw if isinstance(workers_raw, int)
                   and not isinstance(workers_raw, bool) else 1)
        seed_map: Dict[str, int] = {}
        if isinstance(seeds, Mapping):
            for key, value in seeds.items():
                if isinstance(value, int) and not isinstance(value, bool):
                    seed_map[str(key)] = value
        return cls(strategy=str(record["strategy"]),
                   workload=dict(workload)
                   if isinstance(workload, Mapping) else {},
                   seeds=seed_map,
                   config_hash=str(record["config_hash"]),
                   git_sha=str(git_sha) if git_sha is not None else None,
                   workers=workers,
                   extras=dict(extras)
                   if isinstance(extras, Mapping) else {})
