"""The event emitter: builds records, stamps them, hands them to a sink.

One :class:`Tracer` serves one shard of one run.  It is deliberately
thin — a record dict built inline and a single sink call — because it
sits on the engine's hot paths; everything schema-shaped lives in
:mod:`repro.telemetry.events`, and the decision *whether* to emit at
all is the facade's single ``enabled`` attribute check (see
:mod:`repro.telemetry.facade`).

Timestamps are simulation-clock seconds supplied by the caller, never
read from the host clock: traces of the same seeded world are
reproducible artifacts, byte-identical across machines.
"""

from __future__ import annotations

from typing import Dict, Optional

from .events import RECORD_EVENT
from .sinks import TraceSink


class Tracer:
    """Emits typed event records for one shard into a sink."""

    __slots__ = ("sink", "shard")

    def __init__(self, sink: TraceSink, shard: int = 0) -> None:
        if shard < 0:
            raise ValueError("shard index must be non-negative")
        self.sink = sink
        self.shard = shard

    def emit(self, event_type: str, time_s: float,
             user_id: Optional[int] = None, **fields: object) -> None:
        """Emit one event at simulation time ``time_s``.

        ``fields`` must match the event type's schema
        (:data:`~repro.telemetry.events.EVENT_FIELDS`); the writer does
        not validate on the hot path — ``repro trace validate`` and the
        test suite do, offline.
        """
        record: Dict[str, object] = {"record": RECORD_EVENT,
                                     "type": event_type, "t": time_s,
                                     "shard": self.shard}
        if user_id is not None:
            record["user"] = user_id
        record.update(fields)
        self.sink.write_record(record)

    def close(self) -> None:
        self.sink.close()
