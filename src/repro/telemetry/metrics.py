"""Telemetry instruments: counters, gauges and fixed-bucket histograms.

:class:`~repro.engine.metrics.Metrics` reduces a run to the paper's
aggregate numbers; the roadmap's scale needs *distributions* — how long
clients reside in their safe regions, how large downlink payloads are,
how much one report costs the server.  A :class:`MetricsRegistry` holds
named instruments and merges associatively across shards exactly like
``Metrics.merged``, so the parallel engine folds per-shard registries
into one run-level registry without ordering sensitivity (the property
suite in ``tests/telemetry`` asserts associativity and commutativity).

Instruments carry a ``deterministic`` flag: counters and histograms fed
from simulation-clock quantities (residence seconds, payload bits, index
fan-out) are bit-identical between serial and sharded replays of the
same seeded world, while wall-time histograms (per-report server cost)
are machine-dependent by nature.  Equality tests compare
:meth:`MetricsRegistry.deterministic_snapshot` only.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import (Callable, Dict, List, Optional, Sequence, Tuple, Type,
                    TypeVar, Union)

Number = Union[int, float]

#: Standard bucket bounds for the instrumented histograms (upper bounds,
#: ``le`` semantics; one implicit overflow bucket above the last bound).
DEFAULT_BUCKETS: Dict[str, Tuple[float, ...]] = {
    # Seconds a client stays inside one safe region before exiting.
    "saferegion_residence_s": (1.0, 2.0, 5.0, 10.0, 20.0, 60.0, 120.0,
                               300.0, 600.0),
    # Downlink payload size in bits (rects are tiny, alarm pushes huge).
    "downlink_payload_bits": (128.0, 256.0, 512.0, 1024.0, 2048.0,
                              8192.0, 32768.0, 131072.0),
    # Wall-clock cost of serving one location report, microseconds.
    "report_cost_us": (10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
                       5000.0),
    # Wall-clock cost of one safe-region computation, microseconds.
    "saferegion_compute_cost_us": (10.0, 20.0, 50.0, 100.0, 200.0,
                                   500.0, 1000.0, 5000.0),
    # Pending alarms returned by one index lookup (fan-out).
    "index_fanout": (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0),
    # Uplink frames drained per daemon batch (1 = no coalescing).
    "net_batch_size": (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
    # Wall-clock cost of serving one drained batch, microseconds.
    "net_batch_handle_us": (10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                            1000.0, 5000.0, 20000.0),
    # Client-observed framed request-reply round trip, microseconds.
    "net_rtt_us": (50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
                   20000.0, 100000.0),
}


class TelemetryError(Exception):
    """Instrument misuse or malformed telemetry payload."""


class Counter:
    """Monotonic sum; merge adds."""

    kind = "counter"
    __slots__ = ("name", "deterministic", "value")

    def __init__(self, name: str, deterministic: bool = True) -> None:
        self.name = name
        self.deterministic = deterministic
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise TelemetryError("counter %r cannot decrease" % self.name)
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "deterministic": self.deterministic,
                "value": self.value}


class Gauge:
    """Last-set level; merge keeps the maximum (peak semantics).

    ``max`` is the only associative, commutative combination that keeps
    a meaningful reading when per-shard gauges fold together — "the
    highest level any shard saw" — which is what capacity planning
    wants from a level metric.
    """

    kind = "gauge"
    __slots__ = ("name", "deterministic", "value")

    def __init__(self, name: str, deterministic: bool = True) -> None:
        self.name = name
        self.deterministic = deterministic
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def set_max(self, value: Number) -> None:
        """Raise the gauge to ``value`` if it is a new peak."""
        if self.value is None or value > self.value:
            self.value = value

    def merge(self, other: "Gauge") -> None:
        if other.value is not None:
            self.set_max(other.value)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "deterministic": self.deterministic,
                "value": self.value}


class Histogram:
    """Fixed-bucket histogram with ``le`` (at-or-below) bucket semantics.

    ``buckets`` are strictly ascending upper bounds; one implicit
    overflow bucket counts observations above the last bound.  The
    merge is element-wise and therefore associative and commutative —
    the property the shard reduction relies on and the hypothesis suite
    pins.
    """

    kind = "histogram"
    __slots__ = ("name", "deterministic", "buckets", "bucket_counts",
                 "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float],
                 deterministic: bool = True) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise TelemetryError("histogram %r needs at least one bucket"
                                 % name)
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError(
                "histogram %r buckets must be strictly ascending" % name)
        self.name = name
        self.deterministic = deterministic
        self.buckets = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise TelemetryError(
                "cannot merge histogram %r: bucket bounds differ "
                "(%r vs %r)" % (self.name, self.buckets, other.buckets))
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "deterministic": self.deterministic,
                "buckets": list(self.buckets),
                "bucket_counts": list(self.bucket_counts),
                "count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max}


Instrument = Union[Counter, Gauge, Histogram]

_InstrumentT = TypeVar("_InstrumentT", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Named instruments with an associative cross-shard merge.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated
    calls with the same name return the same instrument, and a name
    can only ever hold one instrument kind.  Registries serialize to
    plain dicts (picklable across the parallel engine's process
    boundary, JSON-ready for the trace summary record) and rebuild via
    :meth:`from_dict`.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------
    def counter(self, name: str, deterministic: bool = True) -> Counter:
        return self._lookup(name, Counter,
                            lambda: Counter(name, deterministic))

    def gauge(self, name: str, deterministic: bool = True) -> Gauge:
        return self._lookup(name, Gauge, lambda: Gauge(name, deterministic))

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  deterministic: bool = True) -> Histogram:
        def make() -> Histogram:
            bounds = buckets if buckets is not None \
                else DEFAULT_BUCKETS.get(name)
            if bounds is None:
                raise TelemetryError(
                    "histogram %r has no default buckets; pass explicit "
                    "bounds" % name)
            return Histogram(name, bounds, deterministic)
        return self._lookup(name, Histogram, make)

    def _lookup(self, name: str, cls: Type[_InstrumentT],
                make: Callable[[], _InstrumentT]) -> _InstrumentT:
        instrument = self._instruments.get(name)
        if instrument is None:
            created = make()
            self._instruments[name] = created
            return created
        if not isinstance(instrument, cls):
            raise TelemetryError(
                "instrument %r is a %s, not a %s"
                % (name, instrument.kind, cls.kind))
        return instrument

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def __len__(self) -> int:
        return len(self._instruments)

    # ------------------------------------------------------------------
    # Merge contract (mirrors Metrics.merged)
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's instruments into this one."""
        for name in sorted(other._instruments):
            theirs = other._instruments[name]
            mine = self._instruments.get(name)
            if mine is None:
                self._instruments[name] = _copy_instrument(theirs)
            elif type(mine) is not type(theirs):
                raise TelemetryError(
                    "instrument %r kind mismatch in merge: %s vs %s"
                    % (name, mine.kind, theirs.kind))
            else:
                mine.merge(theirs)  # type: ignore[arg-type]
        return self

    @classmethod
    def merged(cls, parts: Sequence["MetricsRegistry"]
               ) -> "MetricsRegistry":
        """Combine per-shard registries into one (associative)."""
        combined = cls()
        for part in parts:
            combined.merge(part)
        return combined

    # ------------------------------------------------------------------
    # Serialized form
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """``{name: instrument dict}``, sorted by name."""
        return {name: self._instruments[name].to_dict()
                for name in sorted(self._instruments)}

    def deterministic_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Serialized form restricted to run-deterministic instruments.

        This is the signature the serial-vs-sharded golden tests compare
        bit-for-bit; wall-time histograms are excluded the same way
        ``Metrics.counters()`` excludes the timing fields.
        """
        return {name: inst.to_dict()
                for name, inst in sorted(self._instruments.items())
                if inst.deterministic}

    @classmethod
    def from_dict(cls, payload: Dict[str, Dict[str, object]]
                  ) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for name in sorted(payload):
            registry._instruments[name] = _instrument_from_dict(
                name, payload[name])
        return registry


def _copy_instrument(instrument: Instrument) -> Instrument:
    return _instrument_from_dict(instrument.name, instrument.to_dict())


def _instrument_from_dict(name: str,
                          data: Dict[str, object]) -> Instrument:
    kind = data.get("kind")
    deterministic = bool(data.get("deterministic", True))
    if kind == Counter.kind:
        counter = Counter(name, deterministic)
        counter.value = _number(data["value"])
        return counter
    if kind == Gauge.kind:
        gauge = Gauge(name, deterministic)
        value = data.get("value")
        if value is not None:
            gauge.value = _number(value)
        return gauge
    if kind == Histogram.kind:
        buckets = data["buckets"]
        assert isinstance(buckets, (list, tuple))
        histogram = Histogram(name, [float(b) for b in buckets],
                              deterministic)
        counts = data["bucket_counts"]
        assert isinstance(counts, (list, tuple))
        if len(counts) != len(histogram.bucket_counts):
            raise TelemetryError(
                "histogram %r payload has %d bucket counts for %d "
                "buckets" % (name, len(counts), len(histogram.buckets)))
        histogram.bucket_counts = [int(c) for c in counts]
        histogram.count = int(_number(data["count"]))
        histogram.sum = _number(data["sum"])
        minimum, maximum = data.get("min"), data.get("max")
        histogram.min = _number(minimum) if minimum is not None else None
        histogram.max = _number(maximum) if maximum is not None else None
        return histogram
    raise TelemetryError("unknown instrument kind %r for %r" % (kind, name))


def _number(value: object) -> Number:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TelemetryError("expected a number, got %r" % (value,))
    return value
