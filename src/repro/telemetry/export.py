"""Trace readers and exporters: text dashboard, JSON, Prometheus.

``repro report`` renders a recorded trace through these functions;
``repro trace`` slices the raw event stream.  Everything here is
read-side and pure — input is the JSONL trace a run produced, output is
a string — so exporters are trivially testable and adding a format
never touches the engine.

The *reconciliation* check is the load-bearing piece: a trace's event
stream, its telemetry registry and the engine's own ``Metrics`` totals
(stored in the summary record) describe the same run three ways, and
:func:`reconcile` asserts they agree — the cross-check that catches a
dropped shard, a missed emit site or a broken merge before anyone
trusts a dashboard built on the trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from .events import (EVENT_SPAN_CLOSE, EVENT_SPAN_OPEN, EVENT_TYPES,
                     RECORD_EVENT, RECORD_MANIFEST, RECORD_SUMMARY,
                     validate_event)
from .manifest import RunManifest
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .sinks import read_jsonl
from .spans import (SPAN_CLIENT_REQUEST, SPAN_DECODE, SPAN_HANDLE,
                    SPAN_QUEUE_WAIT, SPAN_REPLY_ENCODE, STATUS_OK,
                    span_close_counts, validate_spans)

#: Counter-level reconciliation pairs: (registry counter, Metrics field).
RECONCILE_COUNTERS = (
    ("uplink_messages", "uplink_messages"),
    ("uplink_bytes", "uplink_bytes"),
    ("downlink_messages", "downlink_messages"),
    ("downlink_bytes", "downlink_bytes"),
    ("alarms_fired", "trigger_notifications"),
    ("saferegion_computations", "safe_region_computations"),
    ("saferegion_cache_hits", "saferegion_cache_hits"),
    ("saferegion_cache_misses", "saferegion_cache_misses"),
    ("uplink_drops", "uplink_drops"),
    ("downlink_drops", "downlink_drops"),
)

#: Event-count reconciliation pairs: (event type, Metrics field).
RECONCILE_EVENTS = (
    ("location_report", "uplink_messages"),
    ("downlink_sent", "downlink_messages"),
    ("alarm_fired", "trigger_notifications"),
    ("saferegion_computed", "safe_region_computations"),
)

#: Registry-vs-event reconciliation pairs: (registry counter, event
#: type).  For counters with no ``Metrics`` twin the event stream is
#: the only independent witness — the counter must equal the number of
#: events of that type.
RECONCILE_REGISTRY_EVENTS = (
    ("saferegion_exits", "saferegion_exit"),
    ("net_connections_opened", "net_conn_open"),
    ("net_connections_closed", "net_conn_close"),
    ("net_batches", "net_batch"),
    ("net_backpressure_stalls", "net_backpressure"),
    ("spans_opened", "span_open"),
    ("spans_closed", "span_close"),
)

#: Prefix-sum reconciliation pairs: (registry counter prefix, Metrics
#: field).  Dynamically-named counter families (one counter per
#: downlink kind) must sum to the aggregate the engine counted.
RECONCILE_PREFIX_SUMS = (
    ("downlink_messages_", "downlink_messages"),
)

#: Group-sum reconciliation: ((registry counters...), Metrics field).
#: Counter groups that partition one ``Metrics`` total by execution
#: path must sum to it exactly.  The containment split is the batch
#: engine's equivalence witness: every probe is charged either through
#: the scalar path or a vectorized kernel, and ``--batch`` only moves
#: counts between the two legs — the group sum is invariant.
RECONCILE_GROUP_SUMS = (
    (("containment_checks_scalar", "containment_checks_batch"),
     "containment_checks"),
    (("containment_ops_scalar", "containment_ops_batch"),
     "containment_ops"),
)


@dataclass
class TraceData:
    """One parsed trace: provenance header, events, trailing summary."""

    manifest: Optional[RunManifest]
    events: List[Dict[str, object]]
    summary: Optional[Dict[str, object]]

    def registry(self) -> MetricsRegistry:
        """The run's metrics registry, rebuilt from the summary."""
        if self.summary is None:
            return MetricsRegistry()
        payload = self.summary.get("registry")
        if not isinstance(payload, dict):
            return MetricsRegistry()
        return MetricsRegistry.from_dict(payload)

    def metrics_counters(self) -> Dict[str, float]:
        """The engine's ``Metrics.counters()`` totals from the summary."""
        if self.summary is None:
            return {}
        counters = self.summary.get("metrics")
        return dict(counters) if isinstance(counters, dict) else {}


def read_trace(path: Union[str, Path]) -> TraceData:
    """Parse a JSONL trace file into its three record kinds."""
    manifest: Optional[RunManifest] = None
    events: List[Dict[str, object]] = []
    summary: Optional[Dict[str, object]] = None
    for record in read_jsonl(path):
        kind = record.get("record")
        if kind == RECORD_MANIFEST:
            manifest = RunManifest.from_record(record)
        elif kind == RECORD_EVENT:
            events.append(record)
        elif kind == RECORD_SUMMARY:
            summary = record
    return TraceData(manifest=manifest, events=events, summary=summary)


def event_counts(events: Sequence[Mapping[str, object]]) -> Dict[str, int]:
    """``{event type: occurrence count}`` over an event stream."""
    counts: Dict[str, int] = {}
    for record in events:
        event_type = record.get("type")
        if isinstance(event_type, str):
            counts[event_type] = counts.get(event_type, 0) + 1
    return counts


def validate_trace(data: TraceData) -> List[str]:
    """Structural problems of a trace (empty list when valid)."""
    problems: List[str] = []
    if data.manifest is None:
        problems.append("trace has no manifest header record")
    if data.summary is None:
        problems.append("trace has no trailing summary record")
    for index, record in enumerate(data.events):
        for problem in validate_event(record):
            problems.append("event %d: %s" % (index, problem))
    problems.extend(validate_spans(data.events))
    return problems


# ----------------------------------------------------------------------
# Reconciliation
# ----------------------------------------------------------------------
def reconcile(data: TraceData) -> Dict[str, object]:
    """Cross-check events and registry against the ``Metrics`` totals.

    Returns ``{"ok": bool, "checks": [{name, expected, actual, ok}]}``.
    Every check compares one view of the run against the engine's own
    deterministic counters; exact equality is the contract (both sides
    are integer counts of the same protocol events).
    """
    metrics = data.metrics_counters()
    registry = data.registry()
    counts = event_counts(data.events)
    checks: List[Dict[str, object]] = []

    def check(name: str, expected: object, actual: object) -> None:
        checks.append({"name": name, "expected": expected,
                       "actual": actual, "ok": expected == actual})

    for counter_name, metrics_field in RECONCILE_COUNTERS:
        instrument = registry.get(counter_name)
        value = instrument.value if isinstance(instrument, Counter) else 0
        check("registry.%s == metrics.%s" % (counter_name, metrics_field),
              metrics.get(metrics_field, 0), value)
    for event_type, metrics_field in RECONCILE_EVENTS:
        check("events.%s == metrics.%s" % (event_type, metrics_field),
              metrics.get(metrics_field, 0), counts.get(event_type, 0))
    for counter_name, event_type in RECONCILE_REGISTRY_EVENTS:
        instrument = registry.get(counter_name)
        value = instrument.value if isinstance(instrument, Counter) else 0
        check("registry.%s == events.%s" % (counter_name, event_type),
              counts.get(event_type, 0), value)
    for prefix, metrics_field in RECONCILE_PREFIX_SUMS:
        total = sum(instrument.value
                    for instrument in (registry.get(name)
                                       for name in registry.names()
                                       if name.startswith(prefix))
                    if isinstance(instrument, Counter))
        check("sum(registry.%s*) == metrics.%s" % (prefix, metrics_field),
              metrics.get(metrics_field, 0), total)
    for members, metrics_field in RECONCILE_GROUP_SUMS:
        total = sum(instrument.value
                    for instrument in (registry.get(name)
                                       for name in members)
                    if isinstance(instrument, Counter))
        check("sum(registry.{%s}) == metrics.%s"
              % (",".join(members), metrics_field),
              metrics.get(metrics_field, 0), total)

    # Span-vs-instrument cross-checks.  All hold exactly for every
    # trace kind — untraced runs compare 0 == 0.
    span_counts = span_close_counts(data.events)
    check("events.span_open == events.span_close",
          counts.get(EVENT_SPAN_OPEN, 0), counts.get(EVENT_SPAN_CLOSE, 0))
    # Every successful framed round trip observed exactly one RTT
    # sample (the histogram is fed after a decoded reply, just before
    # the ok close — failed exchanges close "error" and observe none).
    rtt = registry.get("net_rtt_us")
    check("spans.client_request[ok] == registry.net_rtt_us.count",
          span_counts.get((SPAN_CLIENT_REQUEST, STATUS_OK), 0),
          rtt.count if isinstance(rtt, Histogram) else 0)
    # The serving pipeline is lock-step per handled request: one
    # decode, one queue wait and one reply encode each.
    handled = span_counts.get((SPAN_HANDLE, STATUS_OK), 0)
    for stage in (SPAN_DECODE, SPAN_QUEUE_WAIT, SPAN_REPLY_ENCODE):
        check("spans.%s[ok] == spans.handle[ok]" % stage,
              handled, span_counts.get((stage, STATUS_OK), 0))
    return {"ok": all(bool(entry["ok"]) for entry in checks),
            "checks": checks}


# ----------------------------------------------------------------------
# Event slicing (repro trace tail/filter)
# ----------------------------------------------------------------------
def filter_events(events: Sequence[Dict[str, object]],
                  types: Optional[Sequence[str]] = None,
                  user_id: Optional[int] = None,
                  shard: Optional[int] = None,
                  limit: Optional[int] = None) -> List[Dict[str, object]]:
    """Slice an event stream by type, user and shard; cap the length.

    ``limit`` keeps the *last* N matches (tail semantics — recent
    events are what debugging wants).
    """
    selected = [
        record for record in events
        if (types is None or record.get("type") in types)
        and (user_id is None or record.get("user") == user_id)
        and (shard is None or record.get("shard") == shard)]
    if limit is not None and limit >= 0:
        selected = selected[len(selected) - min(limit, len(selected)):]
    return selected


def render_event_line(record: Mapping[str, object]) -> str:
    """One event as a fixed-order human-readable line."""
    time_s = record.get("t", 0.0)
    shard = record.get("shard", 0)
    user = record.get("user")
    head = "t=%-8s shard=%-2s user=%-4s %s" % (
        time_s, shard, "-" if user is None else user,
        record.get("type", "?"))
    payload = {key: value for key, value in record.items()
               if key not in ("record", "type", "t", "shard", "user")}
    if not payload:
        return head
    detail = " ".join("%s=%s" % (key, payload[key])
                      for key in sorted(payload))
    return head + "  " + detail


# ----------------------------------------------------------------------
# Report renderers
# ----------------------------------------------------------------------
def render_text(data: TraceData) -> str:
    """The human dashboard: provenance, counters, histograms, checks."""
    lines: List[str] = []
    manifest = data.manifest
    lines.append("run report")
    lines.append("=" * 60)
    if manifest is not None:
        lines.append("strategy:     %s" % manifest.strategy)
        lines.append("workers:      %d" % manifest.workers)
        lines.append("config hash:  %s" % manifest.config_hash[:16])
        lines.append("git sha:      %s" % (manifest.git_sha or "unknown"))
        if manifest.seeds:
            lines.append("seeds:        %s" % " ".join(
                "%s=%d" % (key, manifest.seeds[key])
                for key in sorted(manifest.seeds)))
    else:
        lines.append("(no manifest header in trace)")

    counts = event_counts(data.events)
    lines.append("")
    lines.append("events (%d total)" % len(data.events))
    lines.append("-" * 60)
    for event_type in EVENT_TYPES:
        if event_type in counts:
            lines.append("  %-22s %10d" % (event_type, counts[event_type]))

    registry = data.registry()
    counters = [inst for inst in (registry.get(name)
                                  for name in registry.names())
                if isinstance(inst, Counter)]
    gauges = [inst for inst in (registry.get(name)
                                for name in registry.names())
              if isinstance(inst, Gauge)]
    histograms = [inst for inst in (registry.get(name)
                                    for name in registry.names())
                  if isinstance(inst, Histogram)]
    if counters or gauges:
        lines.append("")
        lines.append("counters & gauges")
        lines.append("-" * 60)
        for counter in counters:
            lines.append("  %-28s %12s" % (counter.name, counter.value))
        for gauge in gauges:
            lines.append("  %-28s %12s  (gauge, peak)"
                         % (gauge.name, gauge.value))
    for histogram in histograms:
        lines.append("")
        lines.extend(_render_histogram(histogram))

    result = reconcile(data)
    lines.append("")
    lines.append("reconciliation vs Metrics totals: %s"
                 % ("OK" if result["ok"] else "FAILED"))
    lines.append("-" * 60)
    checks = result["checks"]
    assert isinstance(checks, list)
    for entry in checks:
        lines.append("  [%s] %-46s %s vs %s"
                     % ("ok" if entry["ok"] else "XX", entry["name"],
                        entry["expected"], entry["actual"]))
    return "\n".join(lines)


def _render_histogram(histogram: Histogram, width: int = 30) -> List[str]:
    """ASCII bucket bars, one bucket per line, plus the moment summary."""
    lines = ["%s  (count %d, mean %.3f, min %s, max %s)"
             % (histogram.name, histogram.count, histogram.mean,
                histogram.min, histogram.max),
             "-" * 60]
    peak = max(histogram.bucket_counts) if histogram.count else 0
    labels = ["<= %g" % bound for bound in histogram.buckets]
    labels.append("> %g" % histogram.buckets[-1])
    for label, count in zip(labels, histogram.bucket_counts):
        bar = "#" * (count * width // peak if peak else 0)
        lines.append("  %-12s %8d  %s" % (label, count, bar))
    return lines


def render_json(data: TraceData) -> str:
    """Machine-readable report: manifest, counts, registry, checks."""
    payload = {
        "manifest": (data.manifest.to_dict()
                     if data.manifest is not None else None),
        "event_counts": event_counts(data.events),
        "registry": data.registry().to_dict(),
        "metrics": data.metrics_counters(),
        "reconciliation": reconcile(data),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_registry_prom(registry: MetricsRegistry) -> List[str]:
    """One registry as Prometheus exposition lines (no trailing blank).

    Metric names are prefixed ``repro_``; histograms expose cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count``, matching the
    Prometheus histogram convention.  Shared by the trace exporter
    (:func:`render_prom`) and the live STATS scraper (``repro stats
    --format prom``), so a scraped snapshot and a recorded trace of the
    same registry render byte-identically.
    """
    lines: List[str] = []
    for name in registry.names():
        instrument = registry.get(name)
        metric = "repro_" + name
        if isinstance(instrument, Counter):
            lines.append("# TYPE %s counter" % metric)
            lines.append("%s %s" % (metric, instrument.value))
        elif isinstance(instrument, Gauge):
            lines.append("# TYPE %s gauge" % metric)
            if instrument.value is not None:
                lines.append("%s %s" % (metric, instrument.value))
        elif isinstance(instrument, Histogram):
            lines.append("# TYPE %s histogram" % metric)
            cumulative = 0
            for bound, count in zip(instrument.buckets,
                                    instrument.bucket_counts):
                cumulative += count
                lines.append('%s_bucket{le="%g"} %d'
                             % (metric, bound, cumulative))
            lines.append('%s_bucket{le="+Inf"} %d'
                         % (metric, instrument.count))
            lines.append("%s_sum %s" % (metric, instrument.sum))
            lines.append("%s_count %d" % (metric, instrument.count))
    return lines


def render_prom(data: TraceData) -> str:
    """Prometheus text exposition format (counters, gauges, histograms).

    The registry rendering is :func:`render_registry_prom`; this adds
    the run-info gauge from the manifest and per-event-type totals, so
    the output scrapes directly into any Prometheus-compatible stack.
    """
    lines: List[str] = []
    manifest = data.manifest
    if manifest is not None:
        lines.append("# TYPE repro_run_info gauge")
        lines.append(
            'repro_run_info{strategy="%s",config_hash="%s",'
            'git_sha="%s",workers="%d"} 1'
            % (manifest.strategy, manifest.config_hash,
               manifest.git_sha or "", manifest.workers))
    lines.extend(render_registry_prom(data.registry()))
    for event_type, count in sorted(event_counts(data.events).items()):
        metric = "repro_events_total"
        lines.append('%s{type="%s"} %d' % (metric, event_type, count))
    return "\n".join(lines) + "\n"
