"""The single telemetry facade the engine and strategies talk to.

Design rule: **disabled telemetry costs one attribute check.**  Every
instrumented hot path reads ``telemetry.enabled`` and skips the emit
entirely when it is false — no record dict is built, no argument is
evaluated beyond the guard, no sink or registry is touched.  The
sharded engine's differential guarantee therefore extends to telemetry:
an untraced run executes the exact pre-telemetry instruction stream
plus one boolean test per instrumented site (the microbench guard in
``benchmarks/test_telemetry_overhead.py`` enforces the ceiling).

An enabled facade bundles the three telemetry concerns:

* the :class:`~repro.telemetry.tracer.Tracer` writing typed events to
  a pluggable sink;
* the :class:`~repro.telemetry.metrics.MetricsRegistry` of counters,
  gauges and histograms, merged across shards like ``Metrics.merged``;
* the optional :class:`~repro.telemetry.manifest.RunManifest` written
  as the trace's provenance header.

The typed ``emit`` helpers below are the only place events and their
derived instruments are produced, so the event schema and the metric
names stay in lockstep — and the per-event registry bookkeeping is
what lets ``repro report`` reconcile a trace against the engine's own
``Metrics`` totals (a cross-check the test suite asserts).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence

from .events import (EVENT_ALARM_FIRED, EVENT_DOWNLINK_SENT,
                     EVENT_LOCATION_REPORT, EVENT_NET_BACKPRESSURE,
                     EVENT_NET_BATCH, EVENT_NET_CONN_CLOSE,
                     EVENT_NET_CONN_OPEN, EVENT_SAFEREGION_COMPUTED,
                     EVENT_SAFEREGION_EXIT, EVENT_SHARD_FINISHED,
                     EVENT_SHARD_STARTED, EVENT_SPAN_CLOSE,
                     EVENT_SPAN_OPEN, EVENT_TRANSPORT_DROP,
                     RECORD_SUMMARY)
from .manifest import RunManifest
from .metrics import MetricsRegistry
from .sinks import ListSink, NullSink, TraceSink
from .tracer import Tracer


class Telemetry:
    """Facade over tracer, metrics registry and run manifest."""

    __slots__ = ("enabled", "tracer", "registry", "manifest",
                 "_span_lock")

    def __init__(self, tracer: Tracer, registry: MetricsRegistry,
                 manifest: Optional[RunManifest] = None,
                 enabled: bool = True) -> None:
        self.enabled = enabled
        self.tracer = tracer
        self.registry = registry
        self.manifest = manifest
        # Span events are the one emitter family called from two
        # threads of one process (the network engine's client thread
        # and the daemon's loop thread share this facade); the lock
        # keeps the shared span counters exact.  Every other emitter
        # has a single writer and stays lock-free.
        self._span_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, sink: Optional[TraceSink] = None, shard: int = 0,
                manifest: Optional[RunManifest] = None) -> "Telemetry":
        """An enabled facade; ``sink`` defaults to an in-memory buffer."""
        return cls(Tracer(sink if sink is not None else ListSink(),
                          shard=shard),
                   MetricsRegistry(), manifest=manifest)

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A no-op facade (every emit returns at the ``enabled`` check)."""
        return cls(Tracer(NullSink()), MetricsRegistry(), enabled=False)

    # ------------------------------------------------------------------
    # Typed emitters: one event + its derived instruments per call.
    # Each begins with the enabled guard so an unguarded call site is
    # merely slower, never wrong; hot paths guard at the call site too
    # so argument expressions are never evaluated when disabled.
    # ------------------------------------------------------------------
    def location_report(self, time_s: float, user_id: int, nbytes: int,
                        cost_us: float) -> None:
        """A client location report reached the server."""
        if not self.enabled:
            return
        self.tracer.emit(EVENT_LOCATION_REPORT, time_s, user_id,
                         nbytes=nbytes, cost_us=cost_us)
        registry = self.registry
        registry.counter("uplink_messages").inc()
        registry.counter("uplink_bytes").inc(nbytes)
        registry.histogram("report_cost_us",
                           deterministic=False).observe(cost_us)

    def alarm_fired(self, time_s: float, user_id: int,
                    alarm_id: int) -> None:
        """An alarm fired (one-shot) for a subscriber."""
        if not self.enabled:
            return
        self.tracer.emit(EVENT_ALARM_FIRED, time_s, user_id,
                         alarm=alarm_id)
        self.registry.counter("alarms_fired").inc()

    def saferegion_computed(self, time_s: float, user_id: int,
                            elapsed_us: float) -> None:
        """The server produced one safe region (or safe period)."""
        if not self.enabled:
            return
        self.tracer.emit(EVENT_SAFEREGION_COMPUTED, time_s, user_id,
                         elapsed_us=elapsed_us)
        registry = self.registry
        registry.counter("saferegion_computations").inc()
        registry.histogram("saferegion_compute_cost_us",
                           deterministic=False).observe(elapsed_us)

    def saferegion_exit(self, time_s: float, user_id: int,
                        residence_s: float) -> None:
        """A client left its safe region (or its safe period expired)."""
        if not self.enabled:
            return
        self.tracer.emit(EVENT_SAFEREGION_EXIT, time_s, user_id,
                         residence_s=residence_s)
        registry = self.registry
        registry.counter("saferegion_exits").inc()
        registry.histogram("saferegion_residence_s").observe(residence_s)

    def downlink_sent(self, time_s: float, user_id: int, nbytes: int,
                      kind: str) -> None:
        """The server shipped a payload to a client."""
        if not self.enabled:
            return
        self.tracer.emit(EVENT_DOWNLINK_SENT, time_s, user_id,
                         nbytes=nbytes, kind=kind)
        registry = self.registry
        registry.counter("downlink_messages").inc()
        registry.counter("downlink_bytes").inc(nbytes)
        registry.counter("downlink_messages_" + kind).inc()
        registry.histogram("downlink_payload_bits").observe(nbytes * 8)

    def transport_drop(self, time_s: float, user_id: int,
                       direction: str) -> None:
        """A simulated lossy transport dropped one delivery attempt.

        ``direction`` is ``"uplink"`` or ``"downlink"``.  The dropped
        attempt was still charged (its ``location_report`` /
        ``downlink_sent`` event fired at send time), so the drop
        counters sit *next to* the traffic counters rather than
        replacing them — matching the ``Metrics`` drop fields.
        """
        if not self.enabled:
            return
        self.tracer.emit(EVENT_TRANSPORT_DROP, time_s, user_id,
                         direction=direction)
        self.registry.counter(direction + "_drops").inc()

    def saferegion_cache(self, time_s: float, user_id: int,
                         hit: bool) -> None:
        """The shared safe-region memo answered (or missed) one lookup.

        Registry-only, like :meth:`index_fanout`: the hit/miss totals
        reconcile against the ``Metrics`` cache fields, and per-lookup
        events would only duplicate the ``saferegion_computed`` stream
        (every miss is followed by exactly one computation).
        """
        if not self.enabled:
            return
        self.registry.counter("saferegion_cache_hits" if hit
                              else "saferegion_cache_misses").inc()

    def probe_scalar(self, checks: int, ops: int) -> None:
        """Client containment work charged through the scalar path.

        Registry-only, like :meth:`index_fanout`: a per-probe event
        would dominate any trace.  Together with :meth:`probe_batch`
        these split ``Metrics.containment_checks`` / ``_ops`` by the
        kernel that did the work; ``repro report`` reconciles the
        *sum* of each pair against the Metrics total, which is how a
        traced run proves the batch kernels charged exactly what the
        scalar loop would have.
        """
        if not self.enabled:
            return
        registry = self.registry
        registry.counter("containment_checks_scalar").inc(checks)
        registry.counter("containment_ops_scalar").inc(ops)

    def probe_batch(self, checks: int, ops: int) -> None:
        """Client containment work bulk-charged by a batch kernel.

        See :meth:`probe_scalar`; one call covers a whole silent run.
        """
        if not self.enabled:
            return
        registry = self.registry
        registry.counter("containment_checks_batch").inc(checks)
        registry.counter("containment_ops_batch").inc(ops)

    def index_fanout(self, count: int) -> None:
        """One index lookup returned ``count`` pending alarms."""
        if not self.enabled:
            return
        self.registry.histogram("index_fanout").observe(count)

    def net_conn_open(self, conn_id: int) -> None:
        """A socket client connected to the serving daemon.

        ``t`` is pinned to 0.0 like the shard events: connection
        arrival is wall-clock phenomenon, not simulation time, and the
        trace must stay free of host timestamps.
        """
        if not self.enabled:
            return
        self.tracer.emit(EVENT_NET_CONN_OPEN, 0.0, conn=conn_id)
        self.registry.counter("net_connections_opened").inc()

    def net_conn_close(self, conn_id: int, clean: bool,
                       requests: int) -> None:
        """A daemon connection ended after serving ``requests`` uplinks.

        ``clean`` is false when the peer vanished mid-frame or broke
        the framing contract — the fault-injection suite asserts the
        daemon survives and records exactly this.
        """
        if not self.enabled:
            return
        self.tracer.emit(EVENT_NET_CONN_CLOSE, 0.0, conn=conn_id,
                         clean=clean, requests=requests)
        self.registry.counter("net_connections_closed").inc()

    def net_batch(self, time_s: float, conn_id: int, requests: int,
                  handle_us: float) -> None:
        """The daemon drained one uplink batch of ``requests`` frames.

        ``time_s`` is the simulation timestamp of the batch's first
        request (the envelope clock); ``handle_us`` is the wall-clock
        latency probe over decode-handle-encode, the one sanctioned
        host-time measurement on the serving path.
        """
        if not self.enabled:
            return
        self.tracer.emit(EVENT_NET_BATCH, time_s, conn=conn_id,
                         requests=requests)
        registry = self.registry
        registry.counter("net_batches").inc()
        # Batch composition depends on socket arrival timing, never on
        # the seeded world — both histograms are host-dependent.
        registry.histogram("net_batch_size",
                           deterministic=False).observe(requests)
        registry.histogram("net_batch_handle_us",
                           deterministic=False).observe(handle_us)

    def net_backpressure(self, time_s: float, conn_id: int,
                         depth: int) -> None:
        """A connection's bounded uplink queue filled; the reader stalled.

        Emitted once per stall (the reader blocks until the drain task
        frees a slot), so the counter is the number of times
        backpressure actually bit, not a queue-depth sample stream.
        """
        if not self.enabled:
            return
        self.tracer.emit(EVENT_NET_BACKPRESSURE, time_s, conn=conn_id,
                         depth=depth)
        self.registry.counter("net_backpressure_stalls").inc()

    def span_open(self, time_s: float, trace_id: int, span_id: int,
                  parent_id: int, name: str) -> None:
        """A traced operation began.

        ``trace_id`` groups every span of one request's journey;
        ``parent_id`` is 0 for the root (client) span and the opener's
        span id for server-side children.  ``repro trace validate``
        checks the open/close pairing and parent/child well-formedness
        (see :func:`~repro.telemetry.export.validate_spans`).
        """
        if not self.enabled:
            return
        with self._span_lock:
            self.tracer.emit(EVENT_SPAN_OPEN, time_s, trace=trace_id,
                             span=span_id, parent=parent_id, name=name)
            self.registry.counter("spans_opened").inc()

    def span_close(self, time_s: float, trace_id: int, span_id: int,
                   status: str, elapsed_us: float) -> None:
        """A traced operation ended with ``status`` ``"ok"``/``"error"``.

        ``elapsed_us`` is a wall-clock duration probe (perf-counter
        delta, the same sanction as ``net_batch``'s ``handle_us``);
        every opened span must close exactly once — the sanitizer
        mirrors the balance check live.
        """
        if not self.enabled:
            return
        with self._span_lock:
            self.tracer.emit(EVENT_SPAN_CLOSE, time_s, trace=trace_id,
                             span=span_id, status=status,
                             elapsed_us=elapsed_us)
            self.registry.counter("spans_closed").inc()

    def net_rtt(self, rtt_us: float) -> None:
        """One framed request-reply round trip took ``rtt_us``.

        Registry-only, like :meth:`index_fanout`: the client-side
        latency histogram feeds ``repro report``, and a per-request
        event would dwarf the rest of the trace at load-test rates.
        """
        if not self.enabled:
            return
        self.registry.histogram("net_rtt_us",
                                deterministic=False).observe(rtt_us)

    def shard_started(self, vehicles: int) -> None:
        """A shard began its replay (``t`` pinned to simulation zero)."""
        if not self.enabled:
            return
        self.tracer.emit(EVENT_SHARD_STARTED, 0.0, vehicles=vehicles)
        # Not deterministic in the cross-engine sense: the peak depends
        # on the shard topology (a serial run is one 'shard' holding
        # every vehicle), not only on the seeded world.
        self.registry.gauge("shard_vehicles_peak",
                            deterministic=False).set_max(vehicles)

    def shard_finished(self, vehicles: int, wall_s: float) -> None:
        """A shard completed its replay after ``wall_s`` real seconds."""
        if not self.enabled:
            return
        self.tracer.emit(EVENT_SHARD_FINISHED, 0.0, vehicles=vehicles,
                         wall_s=wall_s)

    # ------------------------------------------------------------------
    # Trace life cycle
    # ------------------------------------------------------------------
    def write_manifest(self) -> None:
        """Write the provenance header (first record of a trace)."""
        if not self.enabled or self.manifest is None:
            return
        self.tracer.sink.write_record(self.manifest.to_record())

    def write_summary(self, metrics_counters: Mapping[str, float],
                      triggers: int, wall_time_s: float,
                      workers: int) -> None:
        """Write the trailing summary record.

        ``metrics_counters`` is ``Metrics.counters()`` — the engine's
        own deterministic totals, stored next to the event stream so
        ``repro report`` can reconcile the two without re-running
        anything.
        """
        if not self.enabled:
            return
        self.tracer.sink.write_record({
            "record": RECORD_SUMMARY,
            "metrics": dict(metrics_counters),
            "triggers": triggers,
            "registry": self.registry.to_dict(),
            "wall_time_s": wall_time_s,
            "workers": workers,
        })

    # ------------------------------------------------------------------
    # Shard reduction (the parallel engine's telemetry merge step)
    # ------------------------------------------------------------------
    def absorb_shard(self, events: Sequence[Mapping[str, object]],
                     registry_payload: Optional[
                         Dict[str, Dict[str, object]]]) -> None:
        """Fold one shard's buffered telemetry into this facade.

        Event records pass through verbatim (they already carry their
        shard index); the shard's serialized registry merges through
        the associative instrument merge, mirroring ``Metrics.merged``.
        """
        if not self.enabled:
            return
        sink = self.tracer.sink
        for record in events:
            sink.write_record(record)
        if registry_payload is not None:
            self.registry.merge(MetricsRegistry.from_dict(registry_payload))

    def drain_events(self) -> List[Mapping[str, object]]:
        """Drain a buffering sink (shard workers ship these back)."""
        sink = self.tracer.sink
        if isinstance(sink, ListSink):
            return sink.drain()
        return []

    def close(self) -> None:
        self.tracer.close()


#: The shared no-op facade.  Engine components default to this instead
#: of ``Optional[Telemetry]`` so hot paths need no ``is None`` test —
#: the ``enabled`` attribute check *is* the disabled fast path.
DISABLED = Telemetry.disabled()
