"""Pluggable trace sinks: where emitted event records go.

The tracer is sink-agnostic: anything with ``write_record``/``close``
works.  Three implementations cover every current consumer —

* :class:`NullSink` swallows records (the disabled facade's sink, and
  the metrics-only capture mode);
* :class:`ListSink` buffers records in memory (tests, and the parallel
  engine's workers, whose buffered events ship back to the parent
  through the shard outcome);
* :class:`JsonlSink` appends one compact JSON object per line to a
  file — the on-disk trace format ``repro report`` and ``repro trace``
  consume.

Records are plain dicts with JSON-scalar values; sinks never mutate
them.  JSON encoding sorts keys, so traces of the same run are
byte-stable and diffable.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO, List, Mapping, Optional, Union


class TraceSink:
    """Sink interface: receive event records, release resources."""

    def write_record(self, record: Mapping[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # noqa: B027 - optional hook, default no-op
        """Release resources (default: nothing to release)."""


class NullSink(TraceSink):
    """Swallows every record."""

    def write_record(self, record: Mapping[str, object]) -> None:
        pass


class ListSink(TraceSink):
    """Buffers records in memory, in emission order."""

    def __init__(self) -> None:
        self.records: List[Mapping[str, object]] = []

    def write_record(self, record: Mapping[str, object]) -> None:
        self.records.append(record)

    def drain(self) -> List[Mapping[str, object]]:
        """Return and clear the buffered records."""
        records, self.records = self.records, []
        return records


class JsonlSink(TraceSink):
    """Writes one compact, key-sorted JSON object per line.

    Accepts a path (opened for writing, closed by :meth:`close`) or an
    already-open text handle (left open — the caller owns it).

    Writes are serialized by a lock: the network engine's client
    (main thread) and daemon (event-loop thread) share one sink, and
    buffered text handles interleave unlocked concurrent writes
    mid-line, corrupting the trace.  Each record is encoded outside
    the lock and written as one string.
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        self._owns_handle = isinstance(target, (str, Path))
        if isinstance(target, (str, Path)):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
        else:
            self._handle = target
        self._lock = threading.Lock()

    def write_record(self, record: Mapping[str, object]) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            self._handle.write(line)

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()
        else:
            self._handle.flush()


def read_jsonl(path: Union[str, Path]) -> List[dict]:
    """Parse a JSONL trace file into raw record dicts.

    Raises ``ValueError`` with the offending line number on corrupt
    input — a truncated final line (a run killed mid-write) is reported,
    not silently dropped.
    """
    records: List[dict] = []
    text = Path(path).read_text(encoding="utf-8")
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError("%s:%d: corrupt trace line: %s"
                             % (path, number, exc)) from exc
        if not isinstance(record, dict):
            raise ValueError("%s:%d: trace line is not an object"
                             % (path, number))
        records.append(record)
    return records
