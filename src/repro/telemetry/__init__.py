"""Structured telemetry: event tracing, metrics, manifests, exporters.

The package is split read-side/write-side around the JSONL trace file:

* **write side** (on the engine's hot paths): the :class:`Telemetry`
  facade bundling a :class:`Tracer`, a :class:`MetricsRegistry` and an
  optional :class:`RunManifest`; disabled telemetry — the shared
  :data:`DISABLED` singleton — costs one attribute check per
  instrumented site.
* **read side** (offline, pure): :func:`read_trace`,
  :func:`reconcile` and the ``render_*`` exporters behind
  ``repro report`` / ``repro trace``.

See ``docs/OBSERVABILITY.md`` for the event schema, the instrument
catalogue and the reconciliation contract.
"""

from .events import (BASE_FIELDS, EVENT_ALARM_FIRED, EVENT_DOWNLINK_SENT,
                     EVENT_FIELDS, EVENT_LOCATION_REPORT,
                     EVENT_NET_BACKPRESSURE, EVENT_NET_BATCH,
                     EVENT_NET_CONN_CLOSE, EVENT_NET_CONN_OPEN,
                     EVENT_SAFEREGION_COMPUTED, EVENT_SAFEREGION_EXIT,
                     EVENT_SHARD_FINISHED, EVENT_SHARD_STARTED,
                     EVENT_SPAN_CLOSE, EVENT_SPAN_OPEN, EVENT_TYPES,
                     RECORD_EVENT, RECORD_MANIFEST, RECORD_SUMMARY,
                     TraceEvent, validate_event)
from .export import (TraceData, event_counts, filter_events, read_trace,
                     reconcile, render_event_line, render_json,
                     render_prom, render_registry_prom, render_text,
                     validate_trace)
from .facade import DISABLED, Telemetry
from .manifest import (MANIFEST_VERSION, RunManifest, config_fingerprint,
                       current_git_sha, extract_seeds)
from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      Instrument, MetricsRegistry, TelemetryError)
from .sinks import JsonlSink, ListSink, NullSink, TraceSink, read_jsonl
from .spans import (ROOT_SPAN_ID, SERVER_SPAN_IDS, SPAN_CLIENT_REQUEST,
                    SPAN_DECODE, SPAN_HANDLE, SPAN_LOSSY_REQUEST,
                    SPAN_QUEUE_WAIT, SPAN_REPLY_ENCODE, STATUS_ERROR,
                    STATUS_OK, make_trace_id, span_close_counts,
                    validate_spans)
from .tracer import Tracer

__all__ = [
    "BASE_FIELDS",
    "Counter",
    "DEFAULT_BUCKETS",
    "DISABLED",
    "EVENT_ALARM_FIRED",
    "EVENT_DOWNLINK_SENT",
    "EVENT_FIELDS",
    "EVENT_LOCATION_REPORT",
    "EVENT_NET_BACKPRESSURE",
    "EVENT_NET_BATCH",
    "EVENT_NET_CONN_CLOSE",
    "EVENT_NET_CONN_OPEN",
    "EVENT_SAFEREGION_COMPUTED",
    "EVENT_SAFEREGION_EXIT",
    "EVENT_SHARD_FINISHED",
    "EVENT_SHARD_STARTED",
    "EVENT_SPAN_CLOSE",
    "EVENT_SPAN_OPEN",
    "EVENT_TYPES",
    "Gauge",
    "Histogram",
    "Instrument",
    "JsonlSink",
    "ListSink",
    "MANIFEST_VERSION",
    "MetricsRegistry",
    "NullSink",
    "RECORD_EVENT",
    "RECORD_MANIFEST",
    "RECORD_SUMMARY",
    "ROOT_SPAN_ID",
    "RunManifest",
    "SERVER_SPAN_IDS",
    "SPAN_CLIENT_REQUEST",
    "SPAN_DECODE",
    "SPAN_HANDLE",
    "SPAN_LOSSY_REQUEST",
    "SPAN_QUEUE_WAIT",
    "SPAN_REPLY_ENCODE",
    "STATUS_ERROR",
    "STATUS_OK",
    "Telemetry",
    "TelemetryError",
    "TraceData",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "config_fingerprint",
    "current_git_sha",
    "event_counts",
    "extract_seeds",
    "filter_events",
    "make_trace_id",
    "read_jsonl",
    "read_trace",
    "reconcile",
    "render_event_line",
    "render_json",
    "render_prom",
    "render_registry_prom",
    "render_text",
    "span_close_counts",
    "validate_event",
    "validate_spans",
    "validate_trace",
]
