"""Typed trace events and their wire schema.

Every telemetry trace is a sequence of flat JSON records.  Three record
kinds exist (``RECORD_*``): one *manifest* header describing the run
(see :mod:`repro.telemetry.manifest`), zero or more *events*, and one
trailing *summary* carrying the run's merged counters for offline
reconciliation.  An event record always has the base fields

``record``  the literal ``"event"``;
``type``    one of :data:`EVENT_TYPES`;
``t``       the simulation-clock timestamp in seconds (never the host
            clock — replays of the same seeded world produce identical
            timestamps);
``shard``   the shard index that produced the event (0 for serial runs)

plus the per-type payload fields listed in :data:`EVENT_FIELDS`.  The
schema is asserted by ``repro trace validate`` and the CI smoke job, so
extending it is an explicit act: add the type constant, its field set,
an emitter on :class:`~repro.telemetry.facade.Telemetry`, and a schema
row in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

#: Record kinds (the ``record`` field of every trace line).
RECORD_MANIFEST = "manifest"
RECORD_EVENT = "event"
RECORD_SUMMARY = "summary"

#: Event types, in rough protocol order.
EVENT_LOCATION_REPORT = "location_report"
EVENT_SAFEREGION_COMPUTED = "saferegion_computed"
EVENT_SAFEREGION_EXIT = "saferegion_exit"
EVENT_ALARM_FIRED = "alarm_fired"
EVENT_DOWNLINK_SENT = "downlink_sent"
EVENT_TRANSPORT_DROP = "transport_drop"
EVENT_SHARD_STARTED = "shard_started"
EVENT_SHARD_FINISHED = "shard_finished"
EVENT_NET_CONN_OPEN = "net_conn_open"
EVENT_NET_CONN_CLOSE = "net_conn_close"
EVENT_NET_BATCH = "net_batch"
EVENT_NET_BACKPRESSURE = "net_backpressure"
EVENT_SPAN_OPEN = "span_open"
EVENT_SPAN_CLOSE = "span_close"

#: Required payload fields per event type (beyond the base fields).
#: ``user`` appears where the event concerns one subscriber.
EVENT_FIELDS: Dict[str, FrozenSet[str]] = {
    EVENT_LOCATION_REPORT: frozenset({"user", "nbytes", "cost_us"}),
    EVENT_SAFEREGION_COMPUTED: frozenset({"user", "elapsed_us"}),
    EVENT_SAFEREGION_EXIT: frozenset({"user", "residence_s"}),
    EVENT_ALARM_FIRED: frozenset({"user", "alarm"}),
    EVENT_DOWNLINK_SENT: frozenset({"user", "nbytes", "kind"}),
    EVENT_TRANSPORT_DROP: frozenset({"user", "direction"}),
    EVENT_SHARD_STARTED: frozenset({"vehicles"}),
    EVENT_SHARD_FINISHED: frozenset({"vehicles", "wall_s"}),
    EVENT_NET_CONN_OPEN: frozenset({"conn"}),
    EVENT_NET_CONN_CLOSE: frozenset({"conn", "clean", "requests"}),
    EVENT_NET_BATCH: frozenset({"conn", "requests"}),
    EVENT_NET_BACKPRESSURE: frozenset({"conn", "depth"}),
    EVENT_SPAN_OPEN: frozenset({"trace", "span", "parent", "name"}),
    EVENT_SPAN_CLOSE: frozenset({"trace", "span", "status",
                                 "elapsed_us"}),
}

#: All known event types, sorted for stable listings.
EVENT_TYPES: Tuple[str, ...] = tuple(sorted(EVENT_FIELDS))

#: Base fields present on every event record.
BASE_FIELDS: FrozenSet[str] = frozenset({"record", "type", "t", "shard"})


@dataclass(frozen=True)
class TraceEvent:
    """One decoded trace event (the reader-side structured form).

    The hot emit path writes plain dicts (see
    :class:`~repro.telemetry.tracer.Tracer`); readers — exporters, the
    ``repro trace`` CLI, tests — decode records into this dataclass for
    typed access.
    """

    type: str
    time_s: float
    shard: int
    user_id: Optional[int]
    fields: Mapping[str, object]

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "TraceEvent":
        """Decode one raw event record (schema errors raise KeyError)."""
        payload = {key: value for key, value in record.items()
                   if key not in BASE_FIELDS and key != "user"}
        user = record.get("user")
        return cls(type=str(record["type"]), time_s=float(record["t"]),
                   shard=int(record["shard"]),
                   user_id=int(user) if user is not None else None,
                   fields=payload)


def validate_event(record: Mapping[str, object]) -> List[str]:
    """Schema problems of one event record (empty list when valid)."""
    problems: List[str] = []
    if record.get("record") != RECORD_EVENT:
        problems.append("record kind is %r, expected %r"
                        % (record.get("record"), RECORD_EVENT))
        return problems
    event_type = record.get("type")
    if not isinstance(event_type, str) or event_type not in EVENT_FIELDS:
        problems.append("unknown event type %r" % (event_type,))
        return problems
    time_s = record.get("t")
    if not isinstance(time_s, (int, float)) or isinstance(time_s, bool):
        problems.append("%s: timestamp 't' must be a number, got %r"
                        % (event_type, time_s))
    shard = record.get("shard")
    if not isinstance(shard, int) or isinstance(shard, bool) or shard < 0:
        problems.append("%s: 'shard' must be a non-negative int, got %r"
                        % (event_type, shard))
    required = EVENT_FIELDS[event_type]
    payload_keys = set(record) - BASE_FIELDS
    for missing in sorted(required - payload_keys):
        problems.append("%s: missing field %r" % (event_type, missing))
    for extra in sorted(payload_keys - required):
        problems.append("%s: unexpected field %r" % (event_type, extra))
    return problems
