"""The span vocabulary of the distributed-tracing layer.

One traced exchange is a tiny fixed tree: the client opens a *root*
span around its stop-and-wait request, the frame envelope carries the
``(trace, span)`` pair to the daemon (see
:mod:`repro.protocol.framing`), and the daemon emits one child span per
serving stage — decode, queue-wait, handle, reply-encode — all parented
on the client's span id.  Span ids inside a trace are therefore
*static*: the root is always :data:`ROOT_SPAN_ID` and each server stage
owns the fixed id in :data:`SERVER_SPAN_IDS`, so well-formedness is
checkable without any runtime id allocator on the serving hot path.

Trace ids are client-assigned: a per-transport counter, salted with the
transport's ``client_id`` (shifted by :data:`CLIENT_TRACE_SHIFT`) so
two transports sharing one trace file do not collide.  Spans from
different engine shards never share a tree, so every grouping below
keys on ``(shard, trace)``.

:func:`validate_spans` is the read-side well-formedness check behind
``repro trace validate``: every opened span closes exactly once, no
span closes unopened, parents exist before their children, and no span
event carries the untraced id 0.  The runtime mirror lives in
:mod:`repro.sanitize` (``note_span_open`` / ``note_span_close`` /
``check_span_balance``).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from .events import EVENT_SPAN_CLOSE, EVENT_SPAN_OPEN

#: Span names, client side.
SPAN_CLIENT_REQUEST = "client_request"   # SocketTransport.request
SPAN_LOSSY_REQUEST = "lossy_request"     # LossyTransport.request

#: Span names, server side (the daemon's serving stages, in order).
SPAN_DECODE = "decode"
SPAN_QUEUE_WAIT = "queue_wait"
SPAN_HANDLE = "handle"
SPAN_REPLY_ENCODE = "reply_encode"

#: The client root span's id within its trace.
ROOT_SPAN_ID = 1

#: Fixed server-side span ids, keyed by stage name.
SERVER_SPAN_IDS: Dict[str, int] = {
    SPAN_DECODE: 2,
    SPAN_QUEUE_WAIT: 3,
    SPAN_HANDLE: 4,
    SPAN_REPLY_ENCODE: 5,
}

#: Span close statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"

#: Bits reserved for the per-transport counter below the client-id
#: salt; 2**40 requests per transport before ids wrap into the salt.
CLIENT_TRACE_SHIFT = 40


def make_trace_id(client_id: int, counter: int) -> int:
    """The trace id a transport assigns to its ``counter``-th request.

    Deterministic (no randomness, no host clock): the ``client_id``
    salt keeps concurrently-tracing transports in one trace file from
    colliding, and the counter keeps one transport's traces distinct.
    """
    return (client_id << CLIENT_TRACE_SHIFT) | counter


#: One span's identity within a trace file.
_SpanKey = Tuple[object, object, object]   # (shard, trace, span)


def validate_spans(events: Sequence[Mapping[str, object]]) -> List[str]:
    """Well-formedness problems of a trace's span stream.

    Checks, per ``(shard, trace)`` tree: every ``span_open`` has a
    fresh id, its parent (when non-zero) was opened earlier in the same
    tree, every ``span_close`` matches an open span, statuses are
    legal, no span event carries trace or span id 0, and at
    end-of-stream no span is left open.  Returns an empty list for a
    valid stream.

    One parent is allowed to be absent: :data:`ROOT_SPAN_ID`.  In a
    genuinely distributed run the client and the daemon trace into
    *separate* files, so a serve trace holds the server-stage children
    while their parent — the client's root span — lives in the client's
    trace; a child parented on the remote root is well-formed.  Any
    other unresolved parent still flags.
    """
    problems: List[str] = []
    open_spans: Dict[_SpanKey, str] = {}
    ever_opened: Set[_SpanKey] = set()
    for index, record in enumerate(events):
        event_type = record.get("type")
        if event_type not in (EVENT_SPAN_OPEN, EVENT_SPAN_CLOSE):
            continue
        shard = record.get("shard")
        trace = record.get("trace")
        span = record.get("span")
        key: _SpanKey = (shard, trace, span)
        if not trace or not span:
            problems.append(
                "event %d: %s carries the untraced id 0 "
                "(trace=%r span=%r)" % (index, event_type, trace, span))
            continue
        if event_type == EVENT_SPAN_OPEN:
            if key in ever_opened:
                problems.append(
                    "event %d: span (trace %s, span %s) opened twice"
                    % (index, trace, span))
                continue
            parent = record.get("parent")
            if (parent and parent != ROOT_SPAN_ID
                    and (shard, trace, parent) not in ever_opened):
                problems.append(
                    "event %d: span (trace %s, span %s) parented on "
                    "%s, which was never opened in that trace"
                    % (index, trace, span, parent))
            open_spans[key] = str(record.get("name"))
            ever_opened.add(key)
        else:
            status = record.get("status")
            if status not in (STATUS_OK, STATUS_ERROR):
                problems.append(
                    "event %d: span close status %r is not %r or %r"
                    % (index, status, STATUS_OK, STATUS_ERROR))
            if key not in open_spans:
                problems.append(
                    "event %d: span (trace %s, span %s) closed but "
                    "not open" % (index, trace, span))
                continue
            del open_spans[key]
    for (shard, trace, span), name in sorted(
            open_spans.items(), key=lambda item: str(item[0])):
        problems.append(
            "span (trace %s, span %s, name %r) opened but never closed"
            % (trace, span, name))
    return problems


def span_close_counts(events: Sequence[Mapping[str, object]]
                      ) -> Dict[Tuple[str, str], int]:
    """``{(span name, close status): count}`` over an event stream.

    Close events carry no name (the open event owns it), so closes are
    joined back to their opens by ``(shard, trace, span)``; a close
    with no matching open counts under the name ``"?"`` — and will
    separately fail :func:`validate_spans`.
    """
    names: Dict[_SpanKey, str] = {}
    counts: Dict[Tuple[str, str], int] = {}
    for record in events:
        event_type = record.get("type")
        key: _SpanKey = (record.get("shard"), record.get("trace"),
                         record.get("span"))
        if event_type == EVENT_SPAN_OPEN:
            names[key] = str(record.get("name"))
        elif event_type == EVENT_SPAN_CLOSE:
            pair = (names.get(key, "?"), str(record.get("status")))
            counts[pair] = counts.get(pair, 0) + 1
    return counts
