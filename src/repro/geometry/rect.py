"""Axis-aligned rectangles.

Rectangles are the workhorse geometry of the whole system: spatial alarm
regions, R*-tree bounding boxes, grid cells and rectangular safe regions
are all :class:`Rect` instances.  A rectangle is closed on all sides, i.e.
it contains its boundary; "interior" variants of the predicates are
provided where the distinction matters (a safe region may share an edge
with an alarm region without triggering it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from .eps import fzero_exact
from .point import Point


@dataclass(frozen=True)
class Rect:
    """An immutable axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Degenerate rectangles (zero width and/or height) are permitted: they
    arise naturally as the safe region of a subscriber pinned against
    alarm regions, and as bounding boxes of point data in the R*-tree.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "malformed rectangle: (%r, %r, %r, %r)"
                % (self.min_x, self.min_y, self.max_x, self.max_y))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_corners(cls, p1: Point, p2: Point) -> "Rect":
        """Build a rectangle from two opposite corners in any order."""
        return cls(min(p1.x, p2.x), min(p1.y, p2.y),
                   max(p1.x, p2.x), max(p1.y, p2.y))

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """Build a rectangle centered at ``center``."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        half_w = width / 2.0
        half_h = height / 2.0
        return cls(center.x - half_w, center.y - half_h,
                   center.x + half_w, center.y + half_h)

    @classmethod
    def bounding(cls, rects: Iterable["Rect"]) -> "Rect":
        """Minimum bounding rectangle of a non-empty collection."""
        rects = list(rects)
        if not rects:
            raise ValueError("cannot bound an empty collection")
        return cls(min(r.min_x for r in rects), min(r.min_y for r in rects),
                   max(r.max_x for r in rects), max(r.max_y for r in rects))

    @classmethod
    def point_rect(cls, p: Point) -> "Rect":
        """The degenerate rectangle covering exactly one point."""
        return cls(p.x, p.y, p.x, p.y)

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def margin(self) -> float:
        """Half-perimeter; the R*-tree split criterion calls this margin."""
        return self.width + self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0,
                     (self.min_y + self.max_y) / 2.0)

    @property
    def bottom_left(self) -> Point:
        return Point(self.min_x, self.min_y)

    @property
    def top_right(self) -> Point:
        return Point(self.max_x, self.max_y)

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from bottom-left."""
        return (Point(self.min_x, self.min_y), Point(self.max_x, self.min_y),
                Point(self.max_x, self.max_y), Point(self.min_x, self.max_y))

    def is_degenerate(self) -> bool:
        """True when the rectangle has *exactly* zero area.

        Exact-zero is intended: degenerate rectangles are constructed
        from bit-identical coordinates (:meth:`point_rect`, zero-extent
        ``from_center``), never approximated into existence.
        """
        return fzero_exact(self.width) or fzero_exact(self.height)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        """Closed containment: boundary points are inside."""
        return (self.min_x <= p.x <= self.max_x
                and self.min_y <= p.y <= self.max_y)

    def interior_contains_point(self, p: Point) -> bool:
        """Open containment: boundary points are outside."""
        return (self.min_x < p.x < self.max_x
                and self.min_y < p.y < self.max_y)

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely within this rectangle."""
        return (self.min_x <= other.min_x and other.max_x <= self.max_x
                and self.min_y <= other.min_y and other.max_y <= self.max_y)

    def intersects(self, other: "Rect") -> bool:
        """Closed intersection test (shared edges count as intersecting)."""
        return (self.min_x <= other.max_x and other.min_x <= self.max_x
                and self.min_y <= other.max_y and other.min_y <= self.max_y)

    def interior_intersects(self, other: "Rect") -> bool:
        """Open intersection test: touching along an edge does not count.

        Safe-region correctness is stated in terms of interiors — a safe
        region may legitimately abut an alarm region, since the alarm only
        fires when the subscriber *enters* the alarm region.
        """
        return (self.min_x < other.max_x and other.min_x < self.max_x
                and self.min_y < other.max_y and other.min_y < self.max_y)

    # ------------------------------------------------------------------
    # Combinations
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or ``None`` when disjoint."""
        min_x = max(self.min_x, other.min_x)
        min_y = max(self.min_y, other.min_y)
        max_x = min(self.max_x, other.max_x)
        max_y = min(self.max_y, other.max_y)
        if min_x > max_x or min_y > max_y:
            return None
        return Rect(min_x, min_y, max_x, max_y)

    def intersection_area(self, other: "Rect") -> float:
        """Area of overlap; zero when disjoint (no allocation)."""
        dx = min(self.max_x, other.max_x) - max(self.min_x, other.min_x)
        if dx <= 0.0:
            return 0.0
        dy = min(self.max_y, other.max_y) - max(self.min_y, other.min_y)
        if dy <= 0.0:
            return 0.0
        return dx * dy

    def union(self, other: "Rect") -> "Rect":
        """Minimum bounding rectangle of the two rectangles."""
        return Rect(min(self.min_x, other.min_x), min(self.min_y, other.min_y),
                    max(self.max_x, other.max_x), max(self.max_y, other.max_y))

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed for this rectangle to cover ``other``.

        This is the R*-tree ChooseSubtree cost; kept allocation-free
        because it sits on the index hot path.
        """
        union_w = max(self.max_x, other.max_x) - min(self.min_x, other.min_x)
        union_h = max(self.max_y, other.max_y) - min(self.min_y, other.min_y)
        return union_w * union_h - self.area

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side.

        A negative margin shrinks the rectangle; shrinking past the center
        raises ``ValueError`` via the constructor validation.
        """
        return Rect(self.min_x - margin, self.min_y - margin,
                    self.max_x + margin, self.max_y + margin)

    def translated(self, dx: float, dy: float) -> "Rect":
        """Rectangle shifted by ``(dx, dy)``."""
        return Rect(self.min_x + dx, self.min_y + dy,
                    self.max_x + dx, self.max_y + dy)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from ``p`` to the rectangle (0 inside).

        This is the pessimistic reach bound used by the safe-period
        baseline: a subscriber at ``p`` moving at speed ``v`` cannot enter
        the rectangle before ``distance_to_point(p) / v`` seconds.
        """
        dx = max(self.min_x - p.x, 0.0, p.x - self.max_x)
        dy = max(self.min_y - p.y, 0.0, p.y - self.max_y)
        return math.hypot(dx, dy)

    def distance_to_rect(self, other: "Rect") -> float:
        """Minimum distance between two rectangles (0 when intersecting)."""
        dx = max(self.min_x - other.max_x, 0.0, other.min_x - self.max_x)
        dy = max(self.min_y - other.max_y, 0.0, other.min_y - self.max_y)
        return math.hypot(dx, dy)

    def boundary_distance(self, p: Point) -> float:
        """Distance from an interior point ``p`` to the nearest edge.

        Used by clients to decide how soon they could possibly exit their
        rectangular safe region; returns 0 for points on or outside the
        boundary.
        """
        if not self.contains_point(p):
            return 0.0
        return min(p.x - self.min_x, self.max_x - p.x,
                   p.y - self.min_y, self.max_y - p.y)

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------
    def subtract(self, other: "Rect") -> List["Rect"]:
        """This rectangle minus ``other``'s *interior*, as disjoint rects.

        The decomposition is the standard guillotine split: a full-width
        band below and above the hole, plus left and right side pieces at
        the hole's vertical extent.  Returns ``[self]`` when ``other``'s
        interior does not reach into this rectangle.

        Subtracting the open interior (not the closed hole) means a hole
        edge that coincides exactly with an edge of this rectangle leaves
        a zero-area sliver behind: points on a hole's boundary are not
        inside the hole, so the seam between two abutting holes — or
        between a hole and the container edge — stays covered.  The
        intersection test below answers "does ``other``'s open interior
        meet this closed rectangle?" even when this rectangle is itself
        degenerate, so slivers produced here are cut correctly by later
        subtractions.
        """
        if not self.interior_intersects(other):
            return [self]
        hole = self.intersection(other)
        assert hole is not None  # interiors overlap, so closed overlap too
        pieces: List[Rect] = []
        if self.min_y <= other.min_y:
            pieces.append(Rect(self.min_x, self.min_y, self.max_x, hole.min_y))
        if other.max_y <= self.max_y:
            pieces.append(Rect(self.min_x, hole.max_y, self.max_x, self.max_y))
        if self.min_x <= other.min_x:
            pieces.append(Rect(self.min_x, hole.min_y, hole.min_x, hole.max_y))
        if other.max_x <= self.max_x:
            pieces.append(Rect(hole.max_x, hole.min_y, self.max_x, hole.max_y))
        return pieces

    def grid_split(self, columns: int, rows: int) -> Iterator["Rect"]:
        """Yield ``columns x rows`` equi-sized sub-rectangles.

        Cells are yielded in raster-scan order — top row first, left to
        right — matching the bitmap bit ordering in Fig. 3 of the paper.
        """
        if columns < 1 or rows < 1:
            raise ValueError("grid_split requires positive factors")
        # Ratio-form edges: adjacent (and nested) cells share boundaries
        # as bit-identical floats.  The outermost edges are taken from
        # the parent directly — ``min + width * k / k`` can round past
        # ``max``, which would let a border cell poke outside.
        for row in range(rows - 1, -1, -1):
            for col in range(columns):
                yield Rect(self.min_x + self.width * col / columns,
                           self.min_y + self.height * row / rows,
                           self.max_x if col + 1 == columns
                           else self.min_x + self.width * (col + 1) / columns,
                           self.max_y if row + 1 == rows
                           else self.min_y + self.height * (row + 1) / rows)


def total_disjoint_area(rects: Iterable[Rect]) -> float:
    """Sum of areas of rectangles assumed pairwise interior-disjoint."""
    return sum(r.area for r in rects)
