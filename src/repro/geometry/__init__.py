"""Planar geometry substrate: points, rectangles, rectilinear regions."""

from .eps import EPS, feq, feq_exact, fzero, fzero_exact
from .point import ORIGIN, Point, normalize_angle
from .polygon import RectilinearRegion, region_from_rect_minus_holes
from .rect import Rect, total_disjoint_area

__all__ = [
    "EPS",
    "ORIGIN",
    "Point",
    "Rect",
    "RectilinearRegion",
    "feq",
    "feq_exact",
    "fzero",
    "fzero_exact",
    "normalize_angle",
    "region_from_rect_minus_holes",
    "total_disjoint_area",
]
