"""Planar geometry substrate: points, rectangles, rectilinear regions.

The vectorized kernels live in :mod:`repro.geometry.batch` and are
imported explicitly (``from repro.geometry.batch import ...``) rather
than re-exported here: ``batch`` needs numpy at import time, while the
scalar substrate stays importable without it.
"""

from .eps import (EPS, feq, feq_array, feq_exact, fzero, fzero_array,
                  fzero_exact)
from .point import ORIGIN, Point, normalize_angle
from .polygon import RectilinearRegion, region_from_rect_minus_holes
from .rect import Rect, total_disjoint_area

__all__ = [
    "EPS",
    "ORIGIN",
    "Point",
    "Rect",
    "RectilinearRegion",
    "feq",
    "feq_array",
    "feq_exact",
    "fzero",
    "fzero_array",
    "fzero_exact",
    "normalize_angle",
    "region_from_rect_minus_holes",
    "total_disjoint_area",
]
