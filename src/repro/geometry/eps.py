"""Tolerance-aware float comparison helpers.

Geometry code must not compare floats with ``==``/``!=`` (enforced by
lint rule RL002, see ``docs/STATIC_ANALYSIS.md``): coordinates are
reconstructed through chains of additions and ratio splits, so two
values that are *semantically* equal can differ in their last bits.
Every tolerant comparison in the library goes through this module so the
tolerance lives in exactly one place.

``EPS`` is absolute, in meters (the unit of every coordinate in the
system).  The Universe of Discourse is tens of kilometers across, where
float64 has sub-micrometer resolution; one nanometer of slack absorbs
round-off without ever being mistaken for real geometry.

Where *exact* zero is semantically intended — e.g. the degenerate-rect
check, where a point rectangle is built from bit-identical coordinates —
the comparison keeps ``==`` under a ``# lint: allow=RL002`` pragma
instead of using these helpers.
"""

from __future__ import annotations

#: Absolute comparison tolerance in meters.
EPS: float = 1e-9


def feq(a: float, b: float, eps: float = EPS) -> bool:
    """True when ``a`` and ``b`` differ by at most ``eps`` (absolute)."""
    return abs(a - b) <= eps


def fzero(value: float, eps: float = EPS) -> bool:
    """True when ``value`` is within ``eps`` of zero."""
    return abs(value) <= eps
