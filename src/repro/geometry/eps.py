"""Tolerance-aware float comparison helpers.

Geometry code must not compare floats with ``==``/``!=`` (enforced by
lint rule RL002, see ``docs/STATIC_ANALYSIS.md``): coordinates are
reconstructed through chains of additions and ratio splits, so two
values that are *semantically* equal can differ in their last bits.
Every tolerant comparison in the library goes through this module so the
tolerance lives in exactly one place.

``EPS`` is absolute, in meters (the unit of every coordinate in the
system).  The Universe of Discourse is tens of kilometers across, where
float64 has sub-micrometer resolution; one nanometer of slack absorbs
round-off without ever being mistaken for real geometry.

Where *exact* comparison is semantically intended — e.g. the
degenerate-rect check, where a point rectangle is built from
bit-identical coordinates, or the motion models' sector conventions,
where equal endpoints mean an empty sector but an infinitesimally
smaller ``end`` means a full wrap — use :func:`feq_exact` /
:func:`fzero_exact`.  They compile to the same ``==`` but name the
intent, and keeping them here (the one RL002-exempt module) means the
linter's debt ledger stays at zero instead of tracking pragma sites.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # numpy is an accelerator dependency; keep this
    import numpy as np  # module importable without it.
    from numpy.typing import NDArray

    FloatArray = NDArray[np.float64]
    BoolArray = NDArray[np.bool_]

#: Absolute comparison tolerance in meters.
EPS: float = 1e-9


def feq(a: float, b: float, eps: float = EPS) -> bool:
    """True when ``a`` and ``b`` differ by at most ``eps`` (absolute)."""
    return abs(a - b) <= eps


def fzero(value: float, eps: float = EPS) -> bool:
    """True when ``value`` is within ``eps`` of zero."""
    return abs(value) <= eps


def feq_array(a: "FloatArray", b: "Union[float, FloatArray]",
              eps: float = EPS) -> "BoolArray":
    """Element-wise :func:`feq` over float64 arrays.

    The vectorized kernels (``geometry.batch``, ``saferegion.packed``)
    must not re-derive the tolerance: every tolerant array comparison
    routes through here so scalar and batch paths cannot drift.  The
    expression is the literal array form of :func:`feq` — ``abs(a - b)
    <= eps`` on IEEE doubles — so each element agrees bit-for-bit with
    the scalar helper.
    """
    import numpy

    result: "BoolArray" = numpy.abs(a - b) <= eps
    return result


def fzero_array(values: "FloatArray", eps: float = EPS) -> "BoolArray":
    """Element-wise :func:`fzero` over a float64 array."""
    import numpy

    result: "BoolArray" = numpy.abs(values) <= eps
    return result


def feq_exact(a: float, b: float) -> bool:
    """True when ``a`` and ``b`` are equal bit-for-bit.

    The sanctioned spelling of *intentional* exact float comparison:
    use it only where bit-identity is the semantic contract (values
    copied, never recomputed) and an epsilon would change behaviour —
    the call site should say why in a comment.
    """
    return a == b


def fzero_exact(value: float) -> bool:
    """True when ``value`` is exactly zero (``0.0`` or ``-0.0``).

    See :func:`feq_exact`; exact-zero checks guard degenerate inputs
    constructed from identical coordinates, where a tolerant test
    would misclassify genuinely tiny-but-real geometry.
    """
    return value == 0.0
