"""Vectorized geometry kernels over structure-of-arrays batches.

The scalar :class:`~repro.geometry.rect.Rect` predicates are the
semantic oracle; every kernel here is the literal array transcription
of one scalar predicate, comparison for comparison, so a batch verdict
is bit-identical to looping the scalar code (asserted by the
differential test suite).  Three rules keep that true:

* **Same comparisons.**  Closed predicates use ``<=``, interior
  predicates use ``<`` — exactly the operators in ``rect.py``.  IEEE
  float64 comparisons are identical in numpy and CPython, so there is
  no tolerance to re-derive.
* **Same arithmetic, same order.**  Where a kernel recomputes derived
  coordinates (e.g. pyramid cell edges in ``saferegion.packed``), it
  mirrors the scalar expression's operation order so rounding matches.
* **Tolerant comparisons route through eps.py.**  The array forms
  :func:`~repro.geometry.eps.feq_array` / ``fzero_array`` carry the
  single EPS; nothing here spells its own epsilon.

Layout: a batch is a structure of arrays (one contiguous float64 array
per coordinate), the population-level representation that lets one
interpreter dispatch test thousands of subscribers.  Batches do not
copy their input arrays; treat them as frozen after construction.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from .eps import EPS, feq_array
from .point import Point
from .rect import Rect

FloatArray = NDArray[np.float64]
BoolArray = NDArray[np.bool_]
IntArray = NDArray[np.int64]

#: Initial block length for the run-scan helpers; doubles per block up
#: to :data:`MAX_SCAN_BLOCK` so short runs stay cheap and long runs
#: amortize to one vector op per ~4k samples.
INITIAL_SCAN_BLOCK = 64
MAX_SCAN_BLOCK = 4096


def as_float_array(values: Sequence[float]) -> FloatArray:
    """A float64 array view/copy of ``values``."""
    return np.asarray(values, dtype=np.float64)


class PointBatch:
    """A population of points as parallel coordinate arrays."""

    __slots__ = ("xs", "ys")

    def __init__(self, xs: FloatArray, ys: FloatArray) -> None:
        if xs.shape != ys.shape or xs.ndim != 1:
            raise ValueError("coordinate arrays must be equal-length 1-D")
        self.xs = xs
        self.ys = ys

    @classmethod
    def from_points(cls, points: Sequence[Point]) -> "PointBatch":
        xs = np.empty(len(points), dtype=np.float64)
        ys = np.empty(len(points), dtype=np.float64)
        for index, point in enumerate(points):
            xs[index] = point.x
            ys[index] = point.y
        return cls(xs, ys)

    def __len__(self) -> int:
        return int(self.xs.shape[0])

    def point(self, index: int) -> Point:
        """The scalar :class:`Point` at ``index``."""
        return Point(float(self.xs[index]), float(self.ys[index]))

    def slice(self, start: int, stop: int) -> "PointBatch":
        """A zero-copy view of rows ``[start, stop)``."""
        return PointBatch(self.xs[start:stop], self.ys[start:stop])


class RectBatch:
    """A population of axis-aligned rectangles as four edge arrays."""

    __slots__ = ("min_xs", "min_ys", "max_xs", "max_ys")

    def __init__(self, min_xs: FloatArray, min_ys: FloatArray,
                 max_xs: FloatArray, max_ys: FloatArray) -> None:
        if not (min_xs.shape == min_ys.shape == max_xs.shape
                == max_ys.shape) or min_xs.ndim != 1:
            raise ValueError("edge arrays must be equal-length 1-D")
        self.min_xs = min_xs
        self.min_ys = min_ys
        self.max_xs = max_xs
        self.max_ys = max_ys

    @classmethod
    def from_rects(cls, rects: Sequence[Rect]) -> "RectBatch":
        count = len(rects)
        min_xs = np.empty(count, dtype=np.float64)
        min_ys = np.empty(count, dtype=np.float64)
        max_xs = np.empty(count, dtype=np.float64)
        max_ys = np.empty(count, dtype=np.float64)
        for index, rect in enumerate(rects):
            min_xs[index] = rect.min_x
            min_ys[index] = rect.min_y
            max_xs[index] = rect.max_x
            max_ys[index] = rect.max_y
        return cls(min_xs, min_ys, max_xs, max_ys)

    def __len__(self) -> int:
        return int(self.min_xs.shape[0])

    def rect(self, index: int) -> Rect:
        """The scalar :class:`Rect` at ``index``."""
        return Rect(float(self.min_xs[index]), float(self.min_ys[index]),
                    float(self.max_xs[index]), float(self.max_ys[index]))

    def rects(self) -> List[Rect]:
        return [self.rect(index) for index in range(len(self))]


# ----------------------------------------------------------------------
# Point-in-rect kernels
# ----------------------------------------------------------------------
def contains(rect: Rect, points: PointBatch) -> BoolArray:
    """Closed containment per point; mirrors ``Rect.contains_point``."""
    result: BoolArray = ((rect.min_x <= points.xs)
                         & (points.xs <= rect.max_x)
                         & (rect.min_y <= points.ys)
                         & (points.ys <= rect.max_y))
    return result


def interior_contains(rect: Rect, points: PointBatch) -> BoolArray:
    """Open containment per point; ``Rect.interior_contains_point``."""
    result: BoolArray = ((rect.min_x < points.xs)
                         & (points.xs < rect.max_x)
                         & (rect.min_y < points.ys)
                         & (points.ys < rect.max_y))
    return result


def any_interior_contains(rects: RectBatch,
                          points: PointBatch) -> BoolArray:
    """Per point: does *any* rectangle strictly contain it?

    The optimal strategy's "entered an alarm region" test over a whole
    run of samples.  Broadcasts ``len(rects) x len(points)``; callers
    bound the point count per call (the run scanners pass blocks of at
    most :data:`MAX_SCAN_BLOCK`).
    """
    if len(rects) == 0:
        return np.zeros(len(points), dtype=np.bool_)
    inside = ((rects.min_xs[:, None] < points.xs[None, :])
              & (points.xs[None, :] < rects.max_xs[:, None])
              & (rects.min_ys[:, None] < points.ys[None, :])
              & (points.ys[None, :] < rects.max_ys[:, None]))
    result: BoolArray = inside.any(axis=0)
    return result


# ----------------------------------------------------------------------
# Rect-vs-rect kernels
# ----------------------------------------------------------------------
def intersects(rects: RectBatch, other: Rect) -> BoolArray:
    """Closed intersection per rect; mirrors ``Rect.intersects``."""
    result: BoolArray = ((rects.min_xs <= other.max_x)
                         & (other.min_x <= rects.max_xs)
                         & (rects.min_ys <= other.max_y)
                         & (other.min_y <= rects.max_ys))
    return result


def interior_intersects(rects: RectBatch, other: Rect) -> BoolArray:
    """Open intersection per rect; ``Rect.interior_intersects``."""
    result: BoolArray = ((rects.min_xs < other.max_x)
                         & (other.min_x < rects.max_xs)
                         & (rects.min_ys < other.max_y)
                         & (other.min_y < rects.max_ys))
    return result


def interior_intersects_matrix(a: RectBatch, b: RectBatch) -> BoolArray:
    """Pairwise open intersection: result ``[i, j]`` tests a[i] vs b[j].

    The lazy-bitmap batch probe's work matrix: rows are per-sample
    located cells, columns are the region's obstacles.
    """
    result: BoolArray = ((a.min_xs[:, None] < b.max_xs[None, :])
                         & (b.min_xs[None, :] < a.max_xs[:, None])
                         & (a.min_ys[:, None] < b.max_ys[None, :])
                         & (b.min_ys[None, :] < a.max_ys[:, None]))
    return result


def clip(rects: RectBatch, bounds: Rect) -> Tuple[RectBatch, BoolArray]:
    """Clamp every rectangle to ``bounds``; mirrors ``Rect.intersection``.

    Returns the clipped batch plus a validity mask: where the mask is
    False the pair was disjoint (the scalar method returns ``None``)
    and the clipped edges are meaningless.
    """
    min_xs = np.maximum(rects.min_xs, bounds.min_x)
    min_ys = np.maximum(rects.min_ys, bounds.min_y)
    max_xs = np.minimum(rects.max_xs, bounds.max_x)
    max_ys = np.minimum(rects.max_ys, bounds.max_y)
    valid: BoolArray = (min_xs <= max_xs) & (min_ys <= max_ys)
    return RectBatch(min_xs, min_ys, max_xs, max_ys), valid


def rects_feq(rects: RectBatch, other: Rect,
              eps: float = EPS) -> BoolArray:
    """Tolerant per-rect equality via the shared EPS.

    The batch form of the server's four-way :func:`feq` rectangle
    match; every tolerant comparison routes through
    :func:`~repro.geometry.eps.feq_array` so the tolerance cannot
    drift from the scalar path.
    """
    result: BoolArray = (feq_array(rects.min_xs, other.min_x, eps)
                         & feq_array(rects.min_ys, other.min_y, eps)
                         & feq_array(rects.max_xs, other.max_x, eps)
                         & feq_array(rects.max_ys, other.max_y, eps))
    return result


# ----------------------------------------------------------------------
# Run scanning
# ----------------------------------------------------------------------
def first_violation(silent: Callable[[int, int], BoolArray],
                    length: int, start: int) -> int:
    """First index in ``[start, length)`` where ``silent`` turns False.

    ``silent(i, j)`` returns per-sample flags for the slice ``[i, j)``;
    the scan evaluates geometrically growing blocks so a run that ends
    immediately costs one small kernel call while a run spanning the
    whole trace costs one call per :data:`MAX_SCAN_BLOCK` samples.
    Returns ``length`` when every remaining sample is silent.
    """
    index = start
    block = INITIAL_SCAN_BLOCK
    while index < length:
        stop = min(index + block, length)
        flags = silent(index, stop)
        if not bool(flags.all()):
            return index + int(np.argmin(flags))
        index = stop
        block = min(block * 2, MAX_SCAN_BLOCK)
    return length


def first_outside(rect: Rect, points: PointBatch, start: int) -> int:
    """First index at/after ``start`` whose point leaves ``rect``.

    The rectangular strategies' silent-run scanner: closed containment,
    exactly ``Rect.contains_point``.  Returns ``len(points)`` when the
    whole remaining trace stays inside.
    """
    return first_violation(
        lambda i, j: contains(rect, points.slice(i, j)),
        len(points), start)
