"""Planar points and small vector helpers.

All coordinates throughout the library are metric (meters) in a local
tangent plane over the Universe of Discourse.  The simulation world is on
the order of tens of kilometers across, so float64 precision is far more
than sufficient.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class Point:
    """An immutable 2-D point (or vector) in meters.

    ``Point`` supports the handful of vector operations the safe-region
    algorithms need: addition/subtraction, scaling, Euclidean distance,
    heading computation and rotation.  It is hashable so it can be used
    in sets (e.g. candidate-point deduplication in the MWPSR algorithm).
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scale: float) -> "Point":
        return Point(self.x * scale, self.y * scale)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance; avoids the sqrt for comparisons."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def norm(self) -> float:
        """Euclidean length when the point is interpreted as a vector."""
        return math.hypot(self.x, self.y)

    def heading_to(self, other: "Point") -> float:
        """Heading angle from this point to ``other`` in ``(-pi, pi]``.

        The angle is measured counter-clockwise from the positive x-axis,
        matching :mod:`math.atan2` conventions.  Used by the steady-motion
        model to derive the current direction of travel from two
        consecutive trace samples (``l_s(t')`` to ``l_s(t)`` in Fig. 1(a)
        of the paper).
        """
        return math.atan2(other.y - self.y, other.x - self.x)

    def rotated(self, angle: float) -> "Point":
        """Return this vector rotated counter-clockwise by ``angle`` rad."""
        cos_a = math.cos(angle)
        sin_a = math.sin(angle)
        return Point(self.x * cos_a - self.y * sin_a,
                     self.x * sin_a + self.y * cos_a)

    def midpoint(self, other: "Point") -> "Point":
        """Midpoint of the segment between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def is_finite(self) -> bool:
        """True when both coordinates are finite numbers."""
        return math.isfinite(self.x) and math.isfinite(self.y)


ORIGIN = Point(0.0, 0.0)


def normalize_angle(angle: float) -> float:
    """Normalize an angle to the interval ``(-pi, pi]``.

    The steady-motion pdf of the paper is defined over the deviation
    ``phi`` from the current heading in ``[-pi, pi]``; every angular
    quantity is pushed through this helper before evaluation so wrap-around
    at the +/- pi boundary is handled in exactly one place.
    """
    wrapped = math.fmod(angle, 2.0 * math.pi)
    if wrapped > math.pi:
        wrapped -= 2.0 * math.pi
    elif wrapped <= -math.pi:
        wrapped += 2.0 * math.pi
    return wrapped
