"""Rectilinear polygons represented as unions of axis-aligned rectangles.

The bitmap-encoded safe regions of the paper (GBSR/PBSR, Section 4) are
rectilinear polygons: unions of grid/pyramid cells fully outside every
relevant alarm region.  For our purposes a sorted-rectangle union with a
small lookup index is the right representation — cells arriving from the
pyramid decomposition are already pairwise interior-disjoint, so area and
containment are exact without any sweep-line machinery.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Sequence

from .eps import fzero
from .point import Point
from .rect import Rect


class RectilinearRegion:
    """A union of pairwise interior-disjoint axis-aligned rectangles.

    The class does *not* verify disjointness on construction (the
    producers — grid and pyramid decompositions — guarantee it, and the
    check is quadratic); :meth:`validate_disjoint` performs the check
    explicitly and is exercised by the test suite.

    Containment queries are served from a simple x-sorted index: pieces
    are sorted by ``min_x`` and a binary search bounds the candidate
    range.  For bitmap safe regions the number of pieces is modest
    (hundreds at pyramid height 7) and this is entirely sufficient;
    clients in the actual protocol use the O(h) pyramid bit-probe path in
    :mod:`repro.saferegion.pbsr` instead of this generic geometry.
    """

    __slots__ = ("_pieces", "_min_xs", "_bounds")

    def __init__(self, pieces: Iterable[Rect]) -> None:
        ordered = sorted(pieces, key=lambda r: (r.min_x, r.min_y))
        self._pieces: List[Rect] = ordered
        self._min_xs: List[float] = [r.min_x for r in ordered]
        self._bounds: Optional[Rect] = (
            Rect.bounding(ordered) if ordered else None)

    # ------------------------------------------------------------------
    @property
    def pieces(self) -> Sequence[Rect]:
        """The disjoint rectangles composing the region (x-sorted)."""
        return tuple(self._pieces)

    @property
    def bounds(self) -> Optional[Rect]:
        """Minimum bounding rectangle, or ``None`` for the empty region."""
        return self._bounds

    @property
    def area(self) -> float:
        """Exact area (pieces are interior-disjoint by contract)."""
        return sum(r.area for r in self._pieces)

    def is_empty(self) -> bool:
        return not self._pieces

    def __len__(self) -> int:
        return len(self._pieces)

    # ------------------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        """Closed containment: True when any piece contains ``p``.

        Pieces with ``min_x`` beyond ``p.x`` cannot contain the point, so
        the x-sorted order lets us cut the scan with a binary search.
        """
        if self._bounds is None or not self._bounds.contains_point(p):
            return False
        hi = bisect.bisect_right(self._min_xs, p.x)
        for index in range(hi - 1, -1, -1):
            piece = self._pieces[index]
            if piece.contains_point(p):
                return True
        return False

    def interior_intersects_rect(self, rect: Rect) -> bool:
        """True when any piece's interior overlaps ``rect``'s interior."""
        if self._bounds is None or not self._bounds.interior_intersects(rect):
            return False
        return any(piece.interior_intersects(rect) for piece in self._pieces)

    def coverage_of(self, container: Rect) -> float:
        """Fraction of ``container`` covered by this region.

        This is the paper's coverage metric ``eta(Psi_s)`` (Section 4.2):
        the ratio of safe-region area to grid-cell area.  Pieces are
        clipped to the container so a region extending past it (which the
        safe-region producers never generate) is not over-counted.
        """
        if fzero(container.area):
            # Sub-tolerance containers have no meaningful coverage ratio
            # (and exact zero would divide by zero below).
            return 0.0
        covered = sum(piece.intersection_area(container)
                      for piece in self._pieces)
        return covered / container.area

    def validate_disjoint(self) -> None:
        """Raise ``ValueError`` if any two pieces overlap in their interiors.

        Quadratic; intended for tests and debugging, not the hot path.
        """
        for i, first in enumerate(self._pieces):
            for second in self._pieces[i + 1:]:
                if second.min_x >= first.max_x and second.min_x > first.min_x:
                    # pieces are x-sorted; once min_x clears first.max_x the
                    # remaining pieces cannot overlap first
                    break
                if first.interior_intersects(second):
                    raise ValueError(
                        "overlapping pieces: %r and %r" % (first, second))


def region_from_rect_minus_holes(container: Rect,
                                 holes: Iterable[Rect]) -> RectilinearRegion:
    """Decompose ``container`` minus the union of ``holes`` into rectangles.

    This computes the *exact* safe region of a grid cell — the cell minus
    every intersecting alarm region — which is what the optimal (OPT)
    strategy conceptually ships to the client and what bitmap encodings
    approximate from below.  Works by iterated guillotine subtraction;
    the result pieces are pairwise interior-disjoint.
    """
    pieces: List[Rect] = [container]
    for hole in holes:
        if not container.interior_intersects(hole):
            continue
        next_pieces: List[Rect] = []
        for piece in pieces:
            next_pieces.extend(piece.subtract(hole))
        pieces = next_pieces
        if not pieces:
            break
    return RectilinearRegion(pieces)
