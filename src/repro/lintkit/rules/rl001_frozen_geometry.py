"""RL001: geometry values are immutable.

``Point``, ``Rect`` and ``RectilinearRegion`` instances are shared
freely — between alarms, safe regions, index nodes, worker shards —
precisely because nothing ever mutates them.  ``Point`` and ``Rect``
are frozen dataclasses (mutation raises at runtime); this rule catches
the attempt statically, including on ``RectilinearRegion``, whose
``__slots__`` would happily accept a reassignment.

Detection is name-based: a local name counts as geometry-typed when it
is annotated with a geometry type, bound to a geometry constructor call
(``Rect(...)``, ``Rect.from_corners(...)``), or is ``self`` inside a
geometry class body.  Attribute assignment (plain or augmented) to such
a name is a violation anywhere except ``__init__``/``__post_init__``,
where the dataclass machinery itself runs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from ..base import LintRule, RuleContext, rule
from ..diagnostics import Diagnostic

GEOMETRY_TYPES = frozenset({"Point", "Rect", "RectilinearRegion",
                            "Polygon"})
_CONSTRUCTOR_EXEMPT = frozenset({"__init__", "__post_init__"})


def _annotation_geometry_type(annotation: Optional[ast.expr]
                              ) -> Optional[str]:
    """The geometry type named by ``annotation``, if any.

    Handles plain names, ``Optional[Rect]``-style subscripts and string
    annotations by scanning every identifier in the expression.
    """
    if annotation is None:
        return None
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in GEOMETRY_TYPES:
            return node.id
        if (isinstance(node, ast.Attribute)
                and node.attr in GEOMETRY_TYPES):
            return node.attr
        if (isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in GEOMETRY_TYPES):
            return node.value
    return None


def _call_geometry_type(value: ast.expr) -> Optional[str]:
    """Geometry type produced by ``value`` when it is a constructor call."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name) and func.id in GEOMETRY_TYPES:
        return func.id
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in GEOMETRY_TYPES):
        return func.value.id  # classmethod constructor: Rect.from_center
    return None


@rule
class FrozenGeometryRule(LintRule):
    """No attribute assignment to geometry instances outside ``__init__``."""

    rule_id = "RL001"
    title = "frozen-geometry: geometry instances are never mutated"
    scopes = None  # geometry flows through every package

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        yield from self._scan(ctx, ctx.tree.body, {}, in_exempt=False)

    def _scan(self, ctx: RuleContext, body: list, bindings: Dict[str, str],
              in_exempt: bool) -> Iterator[Diagnostic]:
        """Walk one scope's statements, tracking geometry-typed names.

        ``bindings`` maps names to geometry type names; child scopes
        inherit a copy of the parent's bindings (close enough to real
        scoping for a linter: rebinding in the child shadows locally).
        """
        for stmt in body:
            for diag in self._scan_statement(ctx, stmt, bindings,
                                             in_exempt):
                yield diag

    def _scan_statement(self, ctx: RuleContext, stmt: ast.stmt,
                        bindings: Dict[str, str],
                        in_exempt: bool) -> Iterator[Diagnostic]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child = dict(bindings)
            for arg in (stmt.args.posonlyargs + stmt.args.args
                        + stmt.args.kwonlyargs):
                geom = _annotation_geometry_type(arg.annotation)
                if geom is not None:
                    child[arg.arg] = geom
                elif arg.arg in child and arg.arg not in ("self",):
                    del child[arg.arg]  # parameter shadows outer binding
            exempt = in_exempt or stmt.name in _CONSTRUCTOR_EXEMPT
            yield from self._scan(ctx, stmt.body, child, exempt)
            return
        if isinstance(stmt, ast.ClassDef):
            child = dict(bindings)
            if stmt.name in GEOMETRY_TYPES:
                child["self"] = stmt.name
            else:
                child.pop("self", None)
            yield from self._scan(ctx, stmt.body, child, in_exempt)
            return

        # Record geometry bindings from assignments before flagging, so
        # `p = Point(...)` on one line arms `p.x = ...` on the next.
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                          ast.Name):
            geom = _annotation_geometry_type(stmt.annotation)
            if geom is not None:
                bindings[stmt.target.id] = geom
        elif isinstance(stmt, ast.Assign):
            geom = _call_geometry_type(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if geom is not None:
                        bindings[target.id] = geom
                    else:
                        bindings.pop(target.id, None)  # rebound elsewhere

        if not in_exempt:
            yield from self._flag_mutations(ctx, stmt, bindings)

        for child_node in ast.iter_child_nodes(stmt):
            if isinstance(child_node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef,
                                       ast.ClassDef)):
                continue  # handled above via statement recursion
            if isinstance(child_node, ast.stmt):
                yield from self._scan_statement(ctx, child_node, bindings,
                                                in_exempt)

    def _flag_mutations(self, ctx: RuleContext, stmt: ast.stmt,
                        bindings: Dict[str, str]) -> Iterator[Diagnostic]:
        targets: list = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in bindings):
                yield self.diagnostic(
                    ctx, target,
                    "attribute assignment to frozen geometry value "
                    "%r (a %s); construct a new instance instead"
                    % (target.value.id, bindings[target.value.id]))
