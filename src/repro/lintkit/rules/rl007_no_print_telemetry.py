"""RL007: library code reports through telemetry, not ``print``.

The telemetry layer (:mod:`repro.telemetry`) gives every subsystem a
structured channel — typed trace events, metrics instruments, and the
``repro report`` exporters — so a bare ``print()`` in library code is
always a design smell: it bypasses the trace sink (the output is
invisible to ``repro trace``/``repro report``), it corrupts machine
consumed stdout (the JSON/prom exporters and the benchmark harness all
parse it), and under the sharded engine it interleaves arbitrarily
across worker processes.

Any call to the ``print`` builtin is flagged.  Two locations are
sanctioned and excluded by scope: ``cli.py`` (the one place whose job
*is* writing to stdout) and the ``lintkit`` package itself (diagnostic
rendering).  Code with a genuine reason to print — a doctest, a debug
helper — should either live behind the CLI or carry a same-line
``# lint: allow=RL007`` pragma explaining itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import LintRule, RuleContext, rule
from ..diagnostics import Diagnostic


@rule
class NoPrintTelemetryRule(LintRule):
    """No ``print()`` in library code; emit telemetry instead."""

    rule_id = "RL007"
    title = "no-print-telemetry: library code emits events, not stdout"

    def applies_to(self, rel_path: str) -> bool:
        # The CLI owns stdout; lintkit and the whole-program analyzer
        # render their own diagnostics.
        if rel_path == "cli.py" or rel_path.startswith("lintkit/") \
                or rel_path.startswith("analysis/"):
            return False
        return True

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                yield self.diagnostic(
                    ctx, node,
                    "print() in library code; emit a telemetry event or "
                    "metric (repro.telemetry) so the output reaches the "
                    "trace sink and the exporters")
