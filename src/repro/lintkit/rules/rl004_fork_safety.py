"""RL004: worker-reachable code must not write module-level state.

The sharded engine (:mod:`repro.engine.parallel`) forks workers that
share the parent's heap copy-on-write and assumes shard replays are
independent: results are merged by the ``Metrics.merged`` contract, and
the differential suite asserts bit-equality with the serial engine.  A
function that writes a module-level global breaks both properties —
state written in the parent between submits leaks into later-forked
children, state written in a child silently diverges from its siblings,
and under the spawn start method it simply disappears.

Two shapes are flagged in every worker-reachable package:

* rebinding a module global from inside a function (``global NAME`` +
  assignment), except the documented ``_INHERITED`` fork handshake in
  ``engine/parallel.py`` itself, which is set and cleared only in the
  parent around pool creation;
* in-place mutation of a module-level mutable container (append/update/
  subscript-assignment on a module-level list/dict/set).

Per-instance state (attributes of servers, strategies, metrics) is the
sanctioned alternative: every worker builds its own instances.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from ..base import LintRule, RuleContext, rule
from ..diagnostics import Diagnostic

_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
    "appendleft", "extendleft",
})
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "defaultdict", "OrderedDict", "Counter",
    "deque",
})
#: (rel_path, global name) pairs exempt from the rebind check.
_WHITELIST: Tuple[Tuple[str, str], ...] = (
    ("engine/parallel.py", "_INHERITED"),
)


def _module_level_mutables(tree: ast.Module) -> Set[str]:
    """Module-level names bound to mutable containers."""
    mutables: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: ast.expr
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            mutable = True
        elif (isinstance(value, ast.Call)
              and isinstance(value.func, ast.Name)
              and value.func.id in _MUTABLE_FACTORIES):
            mutable = True
        else:
            mutable = False
        if mutable:
            mutables.update(t.id for t in targets
                            if isinstance(t, ast.Name))
    return mutables


class _FunctionScanner:
    """Collects violations inside one function body."""

    def __init__(self, rule_obj: "ForkSafetyRule", ctx: RuleContext,
                 mutables: Set[str]) -> None:
        self.rule = rule_obj
        self.ctx = ctx
        self.mutables = mutables

    def scan(self, func: ast.AST) -> Iterator[Diagnostic]:
        """Scan one function body, excluding nested defs (scanned on
        their own with their own local-binding sets)."""
        local_names = self._local_bindings(func)
        assigned = self._assigned_names(func)
        for node in self._walk_shallow(func):
            if isinstance(node, ast.Global):
                for name in node.names:
                    if self._whitelisted(name) or name not in assigned:
                        continue
                    yield self.rule.diagnostic(
                        self.ctx, node,
                        "function rebinds module global %r; fork workers "
                        "each see a divergent copy — keep run state on "
                        "instances" % name)
            elif isinstance(node, ast.Call):
                yield from self._check_mutation_call(node, local_names)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                yield from self._check_subscript_write(node, local_names)

    @staticmethod
    def _walk_shallow(func: ast.AST) -> Iterator[ast.AST]:
        """Walk ``func``'s tree without entering nested def/class."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _assigned_names(func: ast.AST) -> Set[str]:
        """Plain names the function assigns anywhere in its body."""
        assigned: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigned.add(target.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    assigned.add(node.target.id)
        return assigned

    def _whitelisted(self, name: str) -> bool:
        return (self.ctx.rel_path, name) in _WHITELIST

    @staticmethod
    def _local_bindings(func: ast.AST) -> Set[str]:
        """Names bound locally (params, assignments) — these shadow
        module globals, so writes to them are not global writes."""
        local: Set[str] = set()
        globals_declared: Set[str] = set()
        args = getattr(func, "args", None)
        if args is not None:
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                local.add(arg.arg)
            if args.vararg is not None:
                local.add(args.vararg.arg)
            if args.kwarg is not None:
                local.add(args.kwarg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local.add(target.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    local.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(node.target):
                    if isinstance(name_node, ast.Name):
                        local.add(name_node.id)
            elif isinstance(node, (ast.withitem,)):
                if node.optional_vars is not None:
                    for name_node in ast.walk(node.optional_vars):
                        if isinstance(name_node, ast.Name):
                            local.add(name_node.id)
            elif isinstance(node, ast.comprehension):
                for name_node in ast.walk(node.target):
                    if isinstance(name_node, ast.Name):
                        local.add(name_node.id)
        return local - globals_declared

    def _check_mutation_call(self, node: ast.Call, local_names: Set[str]
                             ) -> Iterator[Diagnostic]:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.attr in _MUTATOR_METHODS):
            name = func.value.id
            if (name in self.mutables and name not in local_names
                    and not self._whitelisted(name)):
                yield self.rule.diagnostic(
                    self.ctx, node,
                    "in-place mutation of module-level container %r "
                    "(.%s()); shard workers must not share writable "
                    "module state" % (name, func.attr))

    def _check_subscript_write(self, node: ast.stmt,
                               local_names: Set[str]
                               ) -> Iterator[Diagnostic]:
        targets = (list(node.targets) if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)):
                name = target.value.id
                if (name in self.mutables and name not in local_names
                        and not self._whitelisted(name)):
                    yield self.rule.diagnostic(
                        self.ctx, target,
                        "subscript write to module-level container %r; "
                        "shard workers must not share writable module "
                        "state" % name)


@rule
class ForkSafetyRule(LintRule):
    """No writes to module-level state in worker-reachable packages."""

    rule_id = "RL004"
    title = "fork-safety: no module-global writes in worker-reachable code"
    # Everything a parallel-engine worker can reach: the engine itself,
    # strategies it constructs, and the packages those call into.  The
    # protocol and net packages ride along: the daemon multiplexes
    # connections over one event loop, where module-global serving
    # state would alias across connections exactly as it would across
    # forked shards.
    scopes = ("engine", "strategies", "saferegion", "index", "alarms",
              "geometry", "mobility", "telemetry", "protocol", "net",
              "bench")

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        mutables = _module_level_mutables(ctx.tree)
        scanner = _FunctionScanner(self, ctx, mutables)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from scanner.scan(node)
