"""RL005: SafeRegion subclasses implement the probe contract, pure.

A client-monitorable safe region (paper Section 2.1) must answer two
questions: *is this position inside?* (``probe``, which also reports the
comparison count the energy model charges) and *how many bits does it
cost to ship?* (``size_bits``, the unit of the bandwidth model).  A
subclass missing either silently inherits ``NotImplementedError`` and
dies mid-replay — or worse, inherits a wrong default added later.

The second half of the contract is purity: safe-region code computes
*from* alarms, it never writes *to* them.  Alarm regions are shared
between the registry, the R*-tree and every concurrent shard, so a
method of a ``SafeRegion`` subclass or a ``*Computer`` in this package
mutating one of its (non-``self``) arguments — attribute assignment,
``.append()``-style calls, subscript writes — corrupts state far from
the call site.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..base import LintRule, RuleContext, rule
from ..diagnostics import Diagnostic

_REQUIRED_METHODS = ("probe", "size_bits")
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
})


def _base_names(node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


@rule
class SafeRegionContractRule(LintRule):
    """SafeRegion subclasses define probe/size_bits and stay pure."""

    rule_id = "RL005"
    title = "saferegion-contract: probe/size_bits defined, arguments pure"
    scopes = ("saferegion",)

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = _base_names(node)
            is_region = "SafeRegion" in bases
            is_computer = node.name.endswith("Computer")
            if is_region:
                yield from self._check_required_methods(ctx, node)
            if is_region or is_computer:
                yield from self._check_argument_purity(ctx, node)

    def _check_required_methods(self, ctx: RuleContext,
                                node: ast.ClassDef) -> Iterator[Diagnostic]:
        defined = {stmt.name for stmt in node.body
                   if isinstance(stmt, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))}
        for required in _REQUIRED_METHODS:
            if required not in defined:
                yield self.diagnostic(
                    ctx, node,
                    "SafeRegion subclass %r does not define %r; clients "
                    "monitor through probe() and the bandwidth model "
                    "charges size_bits()" % (node.name, required))

    def _check_argument_purity(self, ctx: RuleContext,
                               node: ast.ClassDef) -> Iterator[Diagnostic]:
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            args = stmt.args
            params = {arg.arg
                      for arg in (args.posonlyargs + args.args
                                  + args.kwonlyargs)} - {"self", "cls"}
            if not params:
                continue
            yield from self._flag_param_mutations(ctx, node.name, stmt,
                                                  params)

    def _flag_param_mutations(self, ctx: RuleContext, class_name: str,
                              func: ast.AST,
                              params: Set[str]) -> Iterator[Diagnostic]:
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (list(node.targets)
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, (ast.Attribute, ast.Subscript))
                            and isinstance(target.value, ast.Name)
                            and target.value.id in params):
                        yield self.diagnostic(
                            ctx, target,
                            "%s.%s mutates its argument %r; safe-region "
                            "code must treat alarm inputs as read-only"
                            % (class_name, getattr(func, "name", "?"),
                               target.value.id))
            elif isinstance(node, ast.Call):
                func_expr = node.func
                if (isinstance(func_expr, ast.Attribute)
                        and isinstance(func_expr.value, ast.Name)
                        and func_expr.value.id in params
                        and func_expr.attr in _MUTATOR_METHODS):
                    yield self.diagnostic(
                        ctx, node,
                        "%s.%s calls %s.%s(); safe-region code must "
                        "treat alarm inputs as read-only"
                        % (class_name, getattr(func, "name", "?"),
                           func_expr.value.id, func_expr.attr))
