"""RL002: no exact float equality in numeric geometry code.

Safe regions, motion models and geometry predicates reconstruct
coordinates through arithmetic (ratio splits, modular angle wrapping,
distance sums), so two semantically equal floats routinely differ in
their last bits.  ``==``/``!=`` between float expressions silently
encodes "bit-identical", which is almost never the intended predicate.
Use :func:`repro.geometry.eps.feq` / :func:`~repro.geometry.eps.fzero`
instead, or — where exact comparison is semantically intended, e.g.
the degenerate-rect check — :func:`~repro.geometry.eps.feq_exact` /
:func:`~repro.geometry.eps.fzero_exact`, which name the intent and
live in the one exempt module.  The ``# lint: allow=RL002`` pragma
remains the last resort, tracked by the PA004 debt ratchet (currently
at zero).

Detection is conservative (no false positives on int comparisons): a
comparison is flagged only when one operand is a float *literal*, or
when both operands are names annotated ``float`` in the enclosing
function, or one such name is compared against any numeric literal.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..base import LintRule, RuleContext, rule
from ..diagnostics import Diagnostic


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.UAdd, ast.USub)):
        node = node.operand
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, float))


def _is_numeric_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.UAdd, ast.USub)):
        node = node.operand
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool))


def _annotates_float(annotation: ast.expr) -> bool:
    return ((isinstance(annotation, ast.Name)
             and annotation.id == "float")
            or (isinstance(annotation, ast.Constant)
                and annotation.value == "float"))


class _FloatNames(ast.NodeVisitor):
    """Names annotated ``float`` anywhere in the file.

    Collected per-file rather than per-scope: annotated names are
    overwhelmingly parameters, and a name annotated float in one scope
    and reused as non-float elsewhere would be its own code smell.
    """

    def __init__(self) -> None:
        self.names: Set[str] = set()

    def visit_arg(self, node: ast.arg) -> None:
        if node.annotation is not None and _annotates_float(node.annotation):
            self.names.add(node.arg)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (isinstance(node.target, ast.Name)
                and _annotates_float(node.annotation)):
            self.names.add(node.target.id)
        self.generic_visit(node)


@rule
class FloatEqualityRule(LintRule):
    """No ``==``/``!=`` between float expressions in numeric packages."""

    rule_id = "RL002"
    title = "float-equality: use geometry.eps.feq/fzero, not ==/!="
    scopes = ("geometry", "saferegion", "mobility")
    # eps.py is the sanctioned home of tolerant comparison itself.
    exempt_files = ("geometry/eps.py",)

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        collector = _FloatNames()
        collector.visit(ctx.tree)
        float_names = collector.names
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if self._is_float_comparison(left, right, float_names):
                    yield self.diagnostic(
                        ctx, node,
                        "exact float %s comparison; use feq/fzero from "
                        "repro.geometry.eps (or feq_exact/fzero_exact "
                        "where bit-identity is the contract)"
                        % ("==" if isinstance(op, ast.Eq) else "!="))

    @staticmethod
    def _is_float_comparison(left: ast.expr, right: ast.expr,
                             float_names: Set[str]) -> bool:
        if _is_float_literal(left) or _is_float_literal(right):
            return True
        left_float = (isinstance(left, ast.Name)
                      and left.id in float_names)
        right_float = (isinstance(right, ast.Name)
                       and right.id in float_names)
        if left_float and right_float:
            return True
        if left_float and _is_numeric_literal(right):
            return True
        if right_float and _is_numeric_literal(left):
            return True
        return False
