"""Rule modules; importing this package populates the registry."""

from . import (rl001_frozen_geometry, rl002_float_equality,  # noqa: F401
               rl003_unseeded_randomness, rl004_fork_safety,
               rl005_saferegion_contract, rl006_no_wallclock,
               rl007_no_print_telemetry, rl008_protocol_boundary)
