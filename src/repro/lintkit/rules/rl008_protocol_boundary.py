"""RL008: strategies speak protocol messages, not server internals.

The client/server split puts every strategy behind a typed wire
protocol: the client half talks to ``ClientSession.send``/``push`` and
the server half answers through ``ServerPolicy`` hooks.  The entire
accounting model rests on that boundary — uplink/downlink traffic is
charged exactly once, by the transport, and probe energy flows through
the one sanctioned helper (``ProcessingStrategy._charge_probe``).

A strategy that reaches around the boundary breaks the books silently:

* touching a ``metrics`` attribute (``server.metrics``,
  ``session._metrics``, …) double-counts or hides traffic the golden
  suite pins byte-for-byte;
* touching a private attribute of a collaborator
  (``server._state``, ``client.session._metrics``) couples the
  strategy to server internals the protocol deliberately hides, and
  bypasses the invalidation hooks the shared safe-region cache relies
  on.

``self._*`` access is fine — that is the strategy's own (inherited)
surface, including the sanctioned ``_send_report``/``_charge_probe``
helpers.  Private access on anything *other than* ``self``/``cls`` is
flagged, as is any ``metrics`` attribute access regardless of receiver.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import LintRule, RuleContext, rule
from ..diagnostics import Diagnostic


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _receiver_repr(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return "%s.%s" % (_receiver_repr(node.value), node.attr)
    return "<expr>"


@rule
class ProtocolBoundaryRule(LintRule):
    """Strategies must not touch Metrics or collaborator privates."""

    rule_id = "RL008"
    title = ("protocol-boundary: strategies use the session/policy "
             "surface, never Metrics or collaborator privates")
    scopes = ("strategies",)

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr == "metrics" or node.attr == "_metrics":
                yield self.diagnostic(
                    ctx, node,
                    "strategy touches %r on %r; traffic and energy are "
                    "charged at the transport boundary — send through "
                    "ClientSession and charge probes via "
                    "self._charge_probe()"
                    % (node.attr, _receiver_repr(node.value)))
            elif (node.attr.startswith("_")
                    and not _is_dunder(node.attr)
                    and not (isinstance(node.value, ast.Name)
                             and node.value.id in ("self", "cls"))):
                yield self.diagnostic(
                    ctx, node,
                    "strategy reaches private attribute %r of %r; the "
                    "protocol boundary exposes ClientSession.send/push "
                    "and the ServerPolicy hooks — collaborator internals "
                    "are off limits"
                    % (node.attr, _receiver_repr(node.value)))
