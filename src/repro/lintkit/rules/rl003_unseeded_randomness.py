"""RL003: randomness flows through seeded generators only.

The differential serial-vs-sharded test suite, the golden figure tables
and the property-based tests all assume strategies and safe-region
computations are *deterministic functions of their inputs*.  A call to
the module-level ``random.*`` API (or ``numpy.random.*`` legacy global
state) injects hidden process-global state that breaks replay equality
across shards and runs.  Code that needs randomness takes a seeded
``random.Random`` (or ``numpy.random.Generator``) as a parameter —
exactly how :mod:`repro.mobility.simulator` derives one RNG per vehicle
from the workload seed.

Constructing a generator remains legal: ``random.Random(seed)``,
``random.SystemRandom()`` and ``numpy.random.default_rng(seed)`` are
the sanctioned entry points (``default_rng()`` with *no* seed is
flagged — it seeds from the OS and is unreproducible).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..base import LintRule, RuleContext, rule
from ..diagnostics import Diagnostic

_ALLOWED_RANDOM_ATTRS = frozenset({"Random", "SystemRandom"})


def _numpy_module_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the numpy module (``numpy``, ``np``, ...)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return aliases


@rule
class UnseededRandomnessRule(LintRule):
    """No module-level RNG state in deterministic packages."""

    rule_id = "RL003"
    title = "unseeded-randomness: take a seeded Random/Generator parameter"
    scopes = ("strategies", "saferegion", "mobility")

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        numpy_aliases = _numpy_module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, numpy_aliases)

    def _check_import_from(self, ctx: RuleContext,
                           node: ast.ImportFrom) -> Iterator[Diagnostic]:
        if node.module == "random":
            for item in node.names:
                if item.name not in _ALLOWED_RANDOM_ATTRS:
                    yield self.diagnostic(
                        ctx, node,
                        "'from random import %s' pulls in module-level "
                        "RNG state; take a seeded random.Random "
                        "parameter instead" % item.name)
        elif node.module == "numpy.random":
            for item in node.names:
                if item.name not in ("Generator", "default_rng",
                                     "SeedSequence"):
                    yield self.diagnostic(
                        ctx, node,
                        "'from numpy.random import %s' uses numpy's "
                        "global RNG; take a seeded Generator parameter "
                        "instead" % item.name)

    def _check_call(self, ctx: RuleContext, node: ast.Call,
                    numpy_aliases: Set[str]) -> Iterator[Diagnostic]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        # random.<fn>(...) on the random *module* (not a Random instance:
        # instances are parameters/locals, which are plain names too, so
        # we require the name to literally be the imported module).
        if (isinstance(func.value, ast.Name) and func.value.id == "random"
                and func.attr not in _ALLOWED_RANDOM_ATTRS):
            yield self.diagnostic(
                ctx, node,
                "module-level random.%s() call; route randomness "
                "through a seeded random.Random parameter" % func.attr)
            return
        # np.random.<fn>(...) — the legacy global-state numpy API.
        if (isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in numpy_aliases):
            if func.attr == "default_rng":
                if node.args or node.keywords:
                    return  # seeded construction is the sanctioned path
                yield self.diagnostic(
                    ctx, node,
                    "default_rng() without a seed is unreproducible; "
                    "pass an explicit seed")
                return
            yield self.diagnostic(
                ctx, node,
                "numpy global-state RNG call %s.%s(); use a seeded "
                "numpy.random.Generator parameter"
                % (func.value.value.id + ".random", func.attr))
