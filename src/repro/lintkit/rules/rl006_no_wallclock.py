"""RL006: no wall-clock reads inside simulation hot paths.

Simulation time is the trace's sample clock; engine timing buckets use
``time.perf_counter`` deltas (a monotonic *duration*, never an absolute
date).  A ``time.time()`` or ``datetime.now()`` call in a strategy,
safe-region computation or index operation couples results to the host
clock — replays stop being reproducible, the differential serial-vs-
sharded suite can no longer assert bit-equality, and golden figure
tables drift.  The profiling module is the one sanctioned home for
wall-time accounting and is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..base import LintRule, RuleContext, rule
from ..diagnostics import Diagnostic

#: Banned <module>.<attr> call pairs.  ``perf_counter``/``monotonic``
#: are deliberately absent: duration measurement is sanctioned.
_BANNED_TIME_ATTRS = frozenset({"time", "time_ns", "localtime", "ctime",
                                "gmtime", "asctime"})
_BANNED_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _dotted_root(node: ast.expr) -> Optional[str]:
    """The leftmost name of an attribute chain, or ``None``."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@rule
class NoWallclockRule(LintRule):
    """No ``time.time``/``datetime.now`` in simulation hot paths."""

    rule_id = "RL006"
    title = "no-wallclock: hot paths read the sample clock, not the host's"
    # protocol and net are in scope too: the framed path carries the
    # *simulation* clock on its envelope, so the serving side must stay
    # wallclock-free outside sanctioned perf_counter latency probes.
    scopes = ("engine", "strategies", "saferegion", "index", "geometry",
              "mobility", "alarms", "telemetry", "protocol", "net",
              "bench")
    exempt_files = ("engine/profiling.py",)

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if (isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                    and func.attr in _BANNED_TIME_ATTRS):
                yield self.diagnostic(
                    ctx, node,
                    "wall-clock read time.%s() in a simulation hot path; "
                    "use the trace's sample clock (or perf_counter "
                    "deltas for duration buckets)" % func.attr)
            elif (func.attr in _BANNED_DATETIME_ATTRS
                  and _dotted_root(func.value) in ("datetime", "date")):
                yield self.diagnostic(
                    ctx, node,
                    "wall-clock read %s.%s() in a simulation hot path; "
                    "simulation results must not depend on the host "
                    "clock" % (ast.unparse(func.value)
                               if hasattr(ast, "unparse")
                               else "datetime", func.attr))
