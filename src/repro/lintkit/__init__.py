"""Domain-invariant static analysis for the repro codebase.

The safe-region contract (paper Section 2.1) and the sharded engine's
determinism guarantee rest on invariants ordinary tooling cannot see:
geometry values are immutable, strategies are deterministic, worker code
must not write shared module state.  This package encodes each invariant
as a named AST-based lint rule (RL001-RL007) with a stable diagnostic
format, runnable as ``python -m repro lint``.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue, the
``# lint: allow=RLxxx`` pragma syntax and the guide to adding rules.
"""

from .base import ALL_RULES, LintRule, RuleContext, get_rule, rule
from .diagnostics import Diagnostic
from .runner import LintReport, lint_file, run_lint

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "LintReport",
    "LintRule",
    "RuleContext",
    "get_rule",
    "lint_file",
    "rule",
    "run_lint",
]
