"""File discovery, rule dispatch and report assembly.

The runner walks a file set (default: the ``repro`` package source
tree), parses each file once, computes its package-relative path for
rule scoping, applies every selected rule, filters diagnostics through
the line pragmas and returns a :class:`LintReport`.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Type

from .base import ALL_RULES, LintRule, RuleContext
from .diagnostics import Diagnostic
from .pragmas import collect_pragmas, is_allowed

#: JSON report schema version; bump on breaking field changes.
SCHEMA_VERSION = 1


class LintError(Exception):
    """Unrecoverable lint failure (unreadable or unparsable input)."""


class LintReport:
    """Outcome of one lint run."""

    def __init__(self, diagnostics: Sequence[Diagnostic],
                 files_checked: int,
                 rule_ids: Sequence[str]) -> None:
        self.diagnostics: List[Diagnostic] = sorted(diagnostics)
        self.files_checked = files_checked
        self.rule_ids: List[str] = list(rule_ids)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def render_text(self) -> str:
        """Human-readable report, one diagnostic per line."""
        lines = [diag.render() for diag in self.diagnostics]
        lines.append("%d file(s) checked, %d problem(s) found"
                     % (self.files_checked, len(self.diagnostics)))
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable report (schema asserted by the test suite)."""
        counts = {rule_id: 0 for rule_id in self.rule_ids}
        for diag in self.diagnostics:
            counts[diag.rule_id] = counts.get(diag.rule_id, 0) + 1
        payload = {
            "version": SCHEMA_VERSION,
            "files_checked": self.files_checked,
            "diagnostics": [diag.to_dict() for diag in self.diagnostics],
            "counts": counts,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def package_root() -> Path:
    """Directory of the ``repro`` package (the default lint target)."""
    return Path(__file__).resolve().parent.parent


def discover_files(paths: Optional[Iterable[Path]] = None) -> List[Path]:
    """Expand the given paths (default: the package tree) to .py files."""
    roots = [Path(p) for p in paths] if paths else [package_root()]
    files: List[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        elif root.is_file():
            files.append(root)
        else:
            raise LintError("no such file or directory: %s" % root)
    if not files:
        # "0 files checked, 0 problems" on a typo'd path is a silent
        # false green in CI; an empty file set is an input error.
        raise LintError("no Python files to lint under: %s"
                        % ", ".join(str(root) for root in roots))
    return files


def _relative_path(path: Path, root: Path) -> str:
    """Package-relative POSIX path, or the bare name outside the root."""
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.name


def lint_file(path: Path, rules: Sequence[LintRule],
              respect_scopes: bool = True,
              root: Optional[Path] = None) -> List[Diagnostic]:
    """Run ``rules`` over one file; pragma-suppressed findings removed."""
    root = root if root is not None else package_root()
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError("cannot read %s: %s" % (path, exc)) from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintError("cannot parse %s: %s" % (path, exc)) from exc
    ctx = RuleContext(display_path=str(path),
                      rel_path=_relative_path(path, root),
                      source=source, tree=tree,
                      allowed=collect_pragmas(source))
    found: List[Diagnostic] = []
    for rule_obj in rules:
        if respect_scopes and not rule_obj.applies_to(ctx.rel_path):
            continue
        for diag in rule_obj.check(ctx):
            if not is_allowed(ctx.allowed, diag.line, diag.rule_id):
                found.append(diag)
    return found


def run_lint(paths: Optional[Iterable[Path]] = None,
             rule_classes: Optional[Sequence[Type[LintRule]]] = None,
             respect_scopes: bool = True,
             root: Optional[Path] = None) -> LintReport:
    """Lint a file set and return the aggregated report.

    ``rule_classes`` defaults to every registered rule;
    ``respect_scopes=False`` applies every rule to every file (used by
    the fixture tests, whose files live outside the package tree).
    """
    classes = list(rule_classes) if rule_classes is not None else ALL_RULES()
    rules = [cls() for cls in classes]
    files = discover_files(paths)
    diagnostics: List[Diagnostic] = []
    for path in files:
        diagnostics.extend(lint_file(path, rules,
                                     respect_scopes=respect_scopes,
                                     root=root))
    return LintReport(diagnostics, files_checked=len(files),
                      rule_ids=[r.rule_id for r in rules])
