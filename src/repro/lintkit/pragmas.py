"""Suppression pragmas: ``# lint: allow=RL002`` / ``allow=RL002,RL004``.

A pragma suppresses the named rules on its own physical line — the line
the diagnostic anchors to, which for multi-line statements is the line
of the offending AST node.  There is deliberately no file-wide or
block-wide form: every suppression sits next to the code it excuses,
with the justification in the surrounding comment or docstring.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet

#: The pragma syntax.  Public: the analysis layer's pragma-debt ledger
#: (PA004) counts occurrences with the same pattern, over comment
#: tokens, so the two layers can never disagree on what a pragma is.
PRAGMA_PATTERN = re.compile(
    r"#\s*lint:\s*allow=([A-Z]{2}[0-9]{3}(?:\s*,\s*[A-Z]{2}[0-9]{3})*)")

_PRAGMA = PRAGMA_PATTERN


def collect_pragmas(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule ids allowed on that line."""
    allowed: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is not None:
            ids = frozenset(part.strip()
                            for part in match.group(1).split(","))
            allowed[lineno] = ids
    return allowed


def is_allowed(allowed: Dict[int, FrozenSet[str]],
               line: int, rule_id: str) -> bool:
    """True when ``rule_id`` is suppressed on ``line``."""
    return rule_id in allowed.get(line, frozenset())
