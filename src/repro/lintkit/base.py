"""Rule plumbing: context object, base class and the rule registry.

A rule is a small class with a stable id, a docstring stating the
invariant it enforces (rendered by ``--explain`` and the docs), an
optional path scope, and a ``check`` method yielding diagnostics.
Registration happens at import time through the :func:`rule` decorator;
``rules/__init__`` imports every rule module so importing
:mod:`repro.lintkit` is enough to populate the registry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple, Type

from .diagnostics import Diagnostic


@dataclass(frozen=True)
class RuleContext:
    """Everything a rule may inspect about one source file.

    ``rel_path`` is the path relative to the ``repro`` package root in
    POSIX form (``"geometry/rect.py"``) and is what rule scopes match
    against; for files outside the package it degrades to the file name.
    ``display_path`` is what diagnostics show — the path as the caller
    supplied it.
    """

    display_path: str
    rel_path: str
    source: str
    tree: ast.Module
    allowed: Dict[int, FrozenSet[str]] = field(default_factory=dict)


class LintRule:
    """Base class for one named invariant check."""

    #: Stable identifier, ``RLnnn``.  Diagnostics, pragmas and the
    #: ``--rule`` selector all refer to rules by this id.
    rule_id: str = "RL000"
    #: One-line human title shown in listings.
    title: str = ""
    #: Package-relative directory prefixes (POSIX) this rule applies
    #: to; ``None`` applies everywhere.  A file matches when its
    #: ``rel_path`` starts with ``prefix + "/"`` or equals the prefix.
    scopes: Optional[Tuple[str, ...]] = None
    #: Package-relative file paths exempt from the rule even in scope.
    exempt_files: Tuple[str, ...] = ()

    def applies_to(self, rel_path: str) -> bool:
        """Scope filter: does this rule run over ``rel_path`` at all?"""
        if rel_path in self.exempt_files:
            return False
        if self.scopes is None:
            return True
        return any(rel_path == scope or rel_path.startswith(scope + "/")
                   for scope in self.scopes)

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        """Yield every violation of this rule in ``ctx``'s file."""
        raise NotImplementedError

    def diagnostic(self, ctx: RuleContext, node: ast.AST,
                   message: str) -> Diagnostic:
        """Build a diagnostic anchored at ``node``."""
        return Diagnostic(path=ctx.display_path,
                          line=getattr(node, "lineno", 1),
                          col=getattr(node, "col_offset", 0),
                          rule_id=self.rule_id, message=message)


#: Registry of rule classes keyed by rule id, populated by @rule.
_REGISTRY: Dict[str, Type[LintRule]] = {}


def rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator registering a rule under its ``rule_id``."""
    if not cls.rule_id or cls.rule_id == "RL000":
        raise ValueError("rule %r needs a non-default rule_id" % (cls,))
    if cls.rule_id in _REGISTRY:
        raise ValueError("duplicate rule id %s" % cls.rule_id)
    _REGISTRY[cls.rule_id] = cls
    return cls


def get_rule(rule_id: str) -> Type[LintRule]:
    """Look up a registered rule class; ``KeyError`` when unknown."""
    _ensure_rules_loaded()
    return _REGISTRY[rule_id]


def ALL_RULES() -> List[Type[LintRule]]:
    """All registered rule classes, ordered by rule id."""
    _ensure_rules_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def _ensure_rules_loaded() -> None:
    # Importing the subpackage runs every rule module's @rule decorator.
    from . import rules  # noqa: F401  (import-for-side-effect)
