"""Lint diagnostics: the unit of linter output.

A diagnostic pins one rule violation to one source location.  The text
rendering (``file:line:col: RULE message``) and the JSON field set are
part of the tool's stable interface — tests assert on both, and CI
parses neither beyond the exit code, so changes here are breaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at one source location.

    Ordering is by location then rule id, which makes reports stable
    across runs and dict orderings.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The one-line text form: ``path:line:col: RULE message``."""
        return "%s:%d:%d: %s %s" % (self.path, self.line, self.col,
                                    self.rule_id, self.message)

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready mapping (schema: see ``LintReport.to_json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
