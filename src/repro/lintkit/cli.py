"""The ``repro lint`` subcommand.

Exit codes are part of the stable interface (CI keys off them):

* ``0`` — every selected rule passed on every checked file;
* ``1`` — one or more diagnostics (printed as
  ``file:line:col: RULxxx message`` or as the JSON report);
* ``2`` — usage or input error (unknown rule id, missing path,
  syntax error in a target file).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from .base import ALL_RULES, get_rule
from .runner import LintError, run_lint
from .sarif import RuleMetadata, to_sarif

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: the repro package tree)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="output_format",
                        help="report format (default: text)")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="ID", dest="rule_ids",
                        help="run only this rule id (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--sarif-base-uri", default=None,
                        metavar="URL", dest="sarif_base_uri",
                        help="prefix rule helpUris with this URL in "
                             "SARIF output (e.g. a repository blob "
                             "URL)")


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    if args.list_rules:
        for cls in ALL_RULES():
            print("%s  %s" % (cls.rule_id, cls.title))
        return EXIT_CLEAN
    rule_classes = None
    if args.rule_ids:
        try:
            rule_classes = [get_rule(rule_id.upper())
                            for rule_id in args.rule_ids]
        except KeyError as exc:
            print("error: unknown rule id %s (try --list-rules)" % exc)
            return EXIT_ERROR
    try:
        report = run_lint(paths=args.paths or None,
                          rule_classes=rule_classes)
    except LintError as exc:
        print("error: %s" % exc)
        return EXIT_ERROR
    if args.output_format == "json":
        print(report.to_json())
    elif args.output_format == "sarif":
        print(to_sarif(report, "repro-lint",
                       [RuleMetadata.of(cls.rule_id, cls.title, cls)
                        for cls in ALL_RULES()],
                       base_uri=args.sarif_base_uri))
    else:
        print(report.render_text())
    return EXIT_CLEAN if report.ok else EXIT_FINDINGS


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lintkit.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based domain-invariant linter for the repro "
                    "codebase (see docs/STATIC_ANALYSIS.md)")
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via `repro lint`
    import sys
    sys.exit(main())
