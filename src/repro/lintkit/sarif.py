"""SARIF 2.1.0 serialization of lint/analysis reports.

SARIF (Static Analysis Results Interchange Format) is the exchange
format CI forges understand natively — uploading a SARIF file turns
diagnostics into inline review annotations.  One serializer is shared
by ``repro lint`` and ``repro analyze``: both produce the same
:class:`~repro.lintkit.runner.LintReport`, so a finding's provenance
(which tool, which rule catalogue) is the only thing that differs.

Every rule ships its full metadata: the one-line title as
``shortDescription``, the first paragraph of the rule class's
docstring as ``fullDescription``, and a ``helpUri`` pointing at the
rule's section of ``docs/STATIC_ANALYSIS.md`` — so a code-scanning
upload renders a description and a "learn more" link instead of a bare
rule id.  The anchor scheme mirrors GitHub's heading slugging of
``### RL001 — frozen-geometry`` style headings; the docs test pins
that every generated anchor resolves to a real heading.

The output is otherwise deliberately minimal — one run, one driver,
one result per diagnostic with a single physical location — which is
the subset every SARIF consumer supports.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from .runner import LintReport

#: The SARIF version and schema this serializer emits.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Where the rule catalogue is documented, relative to the repo root.
RULE_DOC_PATH = "docs/STATIC_ANALYSIS.md"


@dataclass(frozen=True)
class RuleMetadata:
    """Everything SARIF wants to say about one rule."""

    rule_id: str
    #: ``"slug: one-line description"`` — the rule/checker title.
    title: str
    #: Full prose description (first docstring paragraph).
    description: str

    @property
    def slug(self) -> str:
        """The short rule name (the part of the title before ``:``)."""
        return self.title.split(":", 1)[0].strip()

    @property
    def help_uri(self) -> str:
        """Anchor into the rule's docs section.

        Matches GitHub's slugging of the documented heading
        ``### RL001 — frozen-geometry`` (lowercase, the em-dash
        dropped, spaces to hyphens): ``rl001--frozen-geometry``.
        """
        return "%s#%s--%s" % (RULE_DOC_PATH, self.rule_id.lower(),
                              self.slug)

    @classmethod
    def of(cls, rule_id: str, title: str,
           rule_class: type) -> "RuleMetadata":
        """Metadata for a rule/checker class, docstring included."""
        doc = inspect.getdoc(rule_class) or title
        first_paragraph = doc.split("\n\n", 1)[0].replace("\n", " ")
        return cls(rule_id=rule_id, title=title,
                   description=first_paragraph)


def to_sarif(report: LintReport, tool_name: str,
             rules: Sequence[RuleMetadata],
             base_uri: Optional[str] = None) -> str:
    """Serialize a report as a SARIF 2.1.0 JSON document.

    ``rules`` lists the tool's full catalogue — the catalogue, not
    just the rules that fired, so consumers can render "0 of N rules
    failing" dashboards.
    """
    driver: Dict[str, object] = {
        "name": tool_name,
        "informationUri": (base_uri or "") + RULE_DOC_PATH,
        "rules": [{
            "id": meta.rule_id,
            "name": meta.slug,
            "shortDescription": {"text": meta.title},
            "fullDescription": {"text": meta.description},
            "helpUri": (base_uri or "") + meta.help_uri,
            "defaultConfiguration": {"level": "error"},
        } for meta in rules],
    }
    results: List[Mapping[str, object]] = []
    for diag in report.diagnostics:
        results.append({
            "ruleId": diag.rule_id,
            "level": "error",
            "message": {"text": diag.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.path},
                    "region": {"startLine": diag.line,
                               "startColumn": diag.col + 1},
                },
            }],
        })
    payload: Dict[str, object] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
