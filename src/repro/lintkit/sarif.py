"""SARIF 2.1.0 serialization of lint/analysis reports.

SARIF (Static Analysis Results Interchange Format) is the exchange
format CI forges understand natively — uploading a SARIF file turns
diagnostics into inline review annotations.  One serializer is shared
by ``repro lint`` and ``repro analyze``: both produce the same
:class:`~repro.lintkit.runner.LintReport`, so a finding's provenance
(which tool, which rule catalogue) is the only thing that differs.

The output is deliberately minimal — one run, one driver, one result
per diagnostic with a single physical location — which is the subset
every SARIF consumer supports.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Sequence, Tuple

from .runner import LintReport

#: The SARIF version and schema this serializer emits.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def to_sarif(report: LintReport, tool_name: str,
             rules: Sequence[Tuple[str, str]]) -> str:
    """Serialize a report as a SARIF 2.1.0 JSON document.

    ``rules`` lists the tool's full catalogue as ``(id, title)`` pairs
    — the catalogue, not just the rules that fired, so consumers can
    render "0 of N rules failing" dashboards.
    """
    driver: Dict[str, object] = {
        "name": tool_name,
        "rules": [{"id": rule_id,
                   "shortDescription": {"text": title}}
                  for rule_id, title in rules],
    }
    results: List[Mapping[str, object]] = []
    for diag in report.diagnostics:
        results.append({
            "ruleId": diag.rule_id,
            "level": "error",
            "message": {"text": diag.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.path},
                    "region": {"startLine": diag.line,
                               "startColumn": diag.col + 1},
                },
            }],
        })
    payload: Dict[str, object] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
